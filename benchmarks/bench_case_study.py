"""Section 6.2 case study: 2-core GemsFDTD + libquantum.

Expected shape (paper): DAWB improves over the Baseline, plain DBI beats
DAWB (its entry evictions batch row writebacks without DAWB's lookup
storm), and adding CLB helps further by cutting libquantum's useless
lookups; AWB adds little on top of plain DBI for this pair.
"""

from benchmarks.conftest import show
from repro.analysis.experiments import run_case_study


def test_case_study(benchmark, scale, runner):
    result = benchmark.pedantic(
        lambda: run_case_study(scale, runner=runner),
        rounds=1, iterations=1,
    )
    show(result.to_text())

    ws = result.raw
    assert ws["dbi+awb+clb"] > ws["baseline"]
