"""Table 3: performance and fairness of DBI+AWB+CLB vs the Baseline.

Expected shape (paper): weighted speedup, instruction throughput and
harmonic speedup all improve, and maximum slowdown is reduced, at every
core count (paper: +22-32% WS, 18-29% max-slowdown reduction).
"""

from benchmarks.conftest import show
from repro.analysis.experiments import run_table3


def test_table3(benchmark, scale, runner):
    result = benchmark.pedantic(
        lambda: run_table3(scale, core_counts=(2, 4), mixes_per_system=3,
                           runner=runner),
        rounds=1, iterations=1,
    )
    show(result.to_text())

    for cores, improvements in result.raw.items():
        mean_ws = sum(improvements["weighted_speedup"]) / len(
            improvements["weighted_speedup"]
        )
        # The full mechanism must not lose system throughput on average.
        assert mean_ws > -0.02, f"{cores}-core WS regressed: {mean_ws:.1%}"
