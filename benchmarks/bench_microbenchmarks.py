"""Micro-benchmarks of the hot structures (true pytest-benchmark timing).

These don't reproduce a paper artifact; they keep the simulator honest —
the DBI and cache fast paths are what every experiment's wall-clock hangs
on, and regressions here make the paper harness unusable.
"""

from fractions import Fraction

from repro.cache.cache import Cache
from repro.cache.config import CacheConfig
from repro.core.config import DbiConfig
from repro.core.dbi import DirtyBlockIndex
from repro.utils.events import EventQueue
from repro.utils.rng import DeterministicRng


def test_dbi_mark_dirty_throughput(benchmark):
    config = DbiConfig(cache_blocks=32768, alpha=Fraction(1, 4),
                       granularity=64, associativity=16)
    rng = DeterministicRng(1)
    addresses = [rng.randint(0, 1 << 20) for _ in range(4096)]

    def workload():
        dbi = DirtyBlockIndex(config)
        for addr in addresses:
            dbi.mark_dirty(addr)
        return dbi.entry_count

    assert benchmark(workload) > 0


def test_dbi_query_throughput(benchmark):
    config = DbiConfig(cache_blocks=32768, alpha=Fraction(1, 4),
                       granularity=64, associativity=16)
    dbi = DirtyBlockIndex(config)
    rng = DeterministicRng(2)
    for _ in range(2048):
        dbi.mark_dirty(rng.randint(0, 1 << 18))
    queries = [rng.randint(0, 1 << 18) for _ in range(8192)]

    def workload():
        return sum(dbi.is_dirty(addr) for addr in queries)

    benchmark(workload)


def test_cache_insert_evict_throughput(benchmark):
    config = CacheConfig(name="llc", num_blocks=4096, associativity=16,
                         tag_latency=10, data_latency=24)
    rng = DeterministicRng(3)
    addresses = [rng.randint(0, 1 << 16) for _ in range(8192)]

    def workload():
        cache = Cache(config)
        evictions = 0
        for addr in addresses:
            if cache.insert(addr) is not None:
                evictions += 1
        return evictions

    assert benchmark(workload) > 0


def test_event_queue_throughput(benchmark):
    def workload():
        queue = EventQueue()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                queue.schedule_after(1, tick)

        queue.schedule(0, tick)
        queue.run()
        return count[0]

    assert benchmark(workload) == 10_000
