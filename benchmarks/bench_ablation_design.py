"""Ablations of design choices DESIGN.md calls out.

Not paper artifacts, but sanity anchors for the modelling decisions:

* the tag-port contention model (the cost DAWB pays and DBI avoids),
* the write-drain watermark ("drain when full" per [27] vs partial drains).
"""

import dataclasses

from benchmarks.conftest import show
from repro.analysis.report import format_table
from repro.sim.system import run_system


def test_port_occupancy_sensitivity(benchmark, scale):
    """DAWB's deficit vs DBI+AWB grows with tag-port cost."""

    def sweep():
        trace = scale.benchmark_trace("lbm", refs=12_000)
        rows = []
        for occupancy in (1, 4):
            ipcs = []
            for mech in ("dawb", "dbi+awb"):
                config = scale.system_config(mech)
                llc = dataclasses.replace(
                    config.resolve_llc(), port_occupancy=occupancy
                )
                config = dataclasses.replace(config, llc=llc)
                ipcs.append(run_system(config, [trace]).ipc[0])
            rows.append([f"occupancy={occupancy}", *ipcs,
                         ipcs[1] / ipcs[0] - 1.0])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(format_table(
        ["port", "dawb IPC", "dbi+awb IPC", "dbi advantage"],
        rows, title="Ablation: LLC tag-port occupancy",
    ))
    # A slower port must not *shrink* DBI's relative advantage.
    assert rows[1][3] >= rows[0][3] - 0.02


def test_drain_watermark_ablation(benchmark, scale):
    """Partial drains (stop early) vs the paper's drain-to-empty."""

    def sweep():
        trace = scale.benchmark_trace("GemsFDTD", refs=12_000)
        rows = []
        for low_watermark in (0, 32):
            config = scale.system_config("dbi+awb")
            dram = dataclasses.replace(
                config.dram, drain_low_watermark=low_watermark
            )
            config = dataclasses.replace(config, dram=dram)
            result = run_system(config, [trace])
            rows.append([
                f"drain to {low_watermark}",
                result.ipc[0],
                result.write_row_hit_rate,
                result.stats.get("dram.write_drain_phases", 0),
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(format_table(
        ["policy", "IPC", "write RHR", "drain phases"],
        rows, title="Ablation: write-buffer drain watermark",
    ))
    # Partial drains mean more, shorter drain phases.
    assert rows[1][3] >= rows[0][3]
