"""Table 5: DBI power as a fraction of total cache power.

Expected shape (paper): static overhead well under 1% (0.12-0.22%),
dynamic overhead a few percent (1-4%), across 2-16 MB caches.
"""

from benchmarks.conftest import show
from repro.analysis.report import format_table
from repro.area.ecc_model import compute_table5


def test_table5(benchmark):
    results = benchmark(compute_table5)
    show(format_table(
        ["cache", "DBI static", "DBI dynamic"],
        [
            [f"{size}MB", f"{vals['static_fraction']:.2%}",
             f"{vals['dynamic_fraction']:.1%}"]
            for size, vals in results.items()
        ],
        title="Table 5: DBI power (paper: 0.12-0.22% static, 1-4% dynamic)",
    ))
    for vals in results.values():
        assert vals["static_fraction"] < 0.01
        assert 0.005 < vals["dynamic_fraction"] < 0.06
