"""Section 4.3/6.4 ablation: DBI replacement policies.

Expected shape (paper): LRW performs comparably to or better than the
other four practical policies (LRW-BIP, RWIP, Max-Dirty, Min-Dirty).
"""

from benchmarks.conftest import show
from repro.analysis.experiments import run_dbi_replacement_study


def test_dbi_replacement(benchmark, scale, runner):
    result = benchmark.pedantic(
        lambda: run_dbi_replacement_study(scale, benchmarks=("lbm", "mcf"),
                                          runner=runner),
        rounds=1, iterations=1,
    )
    show(result.to_text())

    by_policy = {row[0]: row[1] for row in result.rows}
    best = max(by_policy.values())
    # LRW within a few percent of the best policy (paper: comparable-or-best).
    assert by_policy["lrw"] >= best * 0.95
