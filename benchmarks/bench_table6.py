"""Table 6: AWB sensitivity to DBI size (α) and granularity.

Expected shape (paper): the AWB IPC gain grows (weakly) with granularity
and with α — larger entries batch more of a row; a larger DBI holds the
write working set longer.
"""

from fractions import Fraction

from benchmarks.conftest import show
from repro.analysis.experiments import run_table6


def test_table6(benchmark, scale, runner):
    result = benchmark.pedantic(
        lambda: run_table6(scale, benchmarks=("lbm", "GemsFDTD"),
                           runner=runner),
        rounds=1, iterations=1,
    )
    show(result.to_text())

    # Largest (alpha, granularity) must not do worse than the smallest.
    gains = {
        key: sum(values) / len(values) for key, values in result.raw.items()
    }
    alphas = sorted({a for a, _g in gains}, key=float)
    grans = sorted({g for _a, g in gains})
    small = gains[(alphas[0], grans[0])]
    large = gains[(alphas[-1], grans[-1])]
    assert large >= small - 0.03


def test_table6_quarter_vs_half(benchmark, scale):
    """α=1/2 tracks twice the blocks of α=1/4 at identical granularity."""
    from repro.core.config import DbiConfig

    def build():
        quarter = DbiConfig(cache_blocks=32768, alpha=Fraction(1, 4),
                            granularity=64, associativity=16)
        half = DbiConfig(cache_blocks=32768, alpha=Fraction(1, 2),
                         granularity=64, associativity=16)
        return quarter, half

    quarter, half = benchmark(build)
    assert half.tracked_blocks == 2 * quarter.tracked_blocks
    assert half.num_entries == 2 * quarter.num_entries
