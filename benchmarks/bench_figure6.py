"""Figure 6 (a-e): single-core comparison of all Table 2 mechanisms.

Regenerates IPC, write row-hit rate, tag lookups PKI, memory WPKI and read
row-hit rate per benchmark. Expected shape (paper Section 6.1): DAWB/VWQ
roughly double-or-more tag lookups while DBI variants stay near baseline;
DAWB/VWQ/DBI+AWB lift write row-hit rate far above TA-DIP; CLB cuts lookups;
WPKI stays roughly flat except for rewrite-heavy pointer workloads.
"""

from benchmarks.conftest import show
from repro.analysis.experiments import run_figure6

#: A representative subset spanning the paper's regimes, to keep the
#: harness quick. examples/full_paper_run.py covers all 14.
BENCHMARKS = ("mcf", "lbm", "GemsFDTD", "cactusADM", "libquantum", "bzip2")


def test_figure6(benchmark, scale, runner):
    results = benchmark.pedantic(
        lambda: run_figure6(scale, benchmarks=BENCHMARKS, runner=runner),
        rounds=1, iterations=1,
    )
    for exp_id in sorted(results):
        show(results[exp_id].to_text())

    raw = results["fig6c"].raw["results"]
    # Shape assertions (paper Section 6.1).
    for bench in ("lbm", "GemsFDTD", "cactusADM"):
        runs = raw[bench]
        # DAWB massively amplifies tag lookups; DBI+AWB does not.
        assert runs["dawb"].tag_lookups_pki > 1.5 * runs["tadip"].tag_lookups_pki
        assert runs["dbi+awb"].tag_lookups_pki < 1.4 * runs["tadip"].tag_lookups_pki
        # Proactive row writeback lifts the write row-hit rate.
        assert runs["dawb"].write_row_hit_rate > runs["tadip"].write_row_hit_rate
        assert runs["dbi+awb"].write_row_hit_rate > runs["tadip"].write_row_hit_rate
