"""Figure 7: multi-core weighted speedup.

Expected shape (paper Section 6.2): DBI+AWB+CLB yields the best average
weighted speedup at every core count, ahead of DAWB and far ahead of the
Baseline; the margin grows with core count as tag-port and memory
contention intensify.
"""

from benchmarks.conftest import show
from repro.analysis.experiments import run_figure7

MECHANISMS = ("baseline", "tadip", "dawb", "dbi+awb", "dbi+awb+clb")


def test_figure7(benchmark, scale, runner):
    result = benchmark.pedantic(
        lambda: run_figure7(
            scale, core_counts=(2, 4), mechanisms=MECHANISMS, mixes_per_system=3,
            runner=runner,
        ),
        rounds=1, iterations=1,
    )
    show(result.to_text())

    by_mech = {
        mech: [row[1 + i] for row in result.rows]
        for i, mech in enumerate(MECHANISMS)
    }
    for cores_idx in range(len(result.rows)):
        # The full DBI mechanism beats the baseline on average.
        assert by_mech["dbi+awb+clb"][cores_idx] > by_mech["baseline"][cores_idx]
