"""Section 6.5 ablation: DBI under a better replacement policy (DRRIP).

Expected shape (paper): because the DBI only changes the writeback
sequence, its benefit is complementary to replacement improvements —
DBI+AWB+CLB still beats DAWB when the LLC uses DRRIP (+7% at 8-core in
the paper).
"""

from benchmarks.conftest import show
from repro.analysis.experiments import run_drrip_study


def test_drrip_interaction(benchmark, scale, runner):
    result = benchmark.pedantic(
        lambda: run_drrip_study(scale, core_count=2, mixes_per_system=3,
                                runner=runner),
        rounds=1, iterations=1,
    )
    show(result.to_text())

    by_mech = {row[0]: row[1] for row in result.rows}
    dbi = by_mech["dbi+awb+clb (DRRIP LLC)"]
    dawb = by_mech["dawb (DRRIP LLC)"]
    # Paper: +7% at 8-core; measured at this scale: roughly comparable
    # (+1% at 4-core) — see EXPERIMENTS.md. Assert the weaker, reproducible
    # claim: DBI stays within 10% of DAWB under a better replacement policy.
    assert dbi >= dawb * 0.90
