"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures at the ``quick``
scale (see ``repro.analysis.scaling``) and prints the resulting rows, so
``pytest benchmarks/ --benchmark-only`` both times the harness and emits the
paper-shaped output. Longer, closer-to-paper runs: ``examples/full_paper_run.py
--scale default``.

Simulations go through a session-wide :class:`SweepRunner`. The default is
serial and uncached so the timings stay honest; set ``REPRO_BENCH_WORKERS``
to fan the sweeps out (what tools/ci.sh's smoke run does) and
``REPRO_BENCH_CACHE_DIR`` to reuse results across harness invocations.
"""

import os

import pytest

from repro.analysis.runner import SweepRunner
from repro.analysis.scaling import QUICK_SCALE


@pytest.fixture(scope="session")
def scale():
    return QUICK_SCALE


@pytest.fixture(scope="session")
def runner():
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR")
    sweep = SweepRunner(
        workers=int(os.environ.get("REPRO_BENCH_WORKERS", "0")),
        cache_dir=cache_dir,
        use_cache=cache_dir is not None,
    )
    yield sweep
    sweep.close()


def show(result_text: str) -> None:
    """Print a regenerated artifact under the benchmark output."""
    print()
    print(result_text)
