"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures at the ``quick``
scale (see ``repro.analysis.scaling``) and prints the resulting rows, so
``pytest benchmarks/ --benchmark-only`` both times the harness and emits the
paper-shaped output. Longer, closer-to-paper runs: ``examples/full_paper_run.py
--scale default``.
"""

import pytest

from repro.analysis.scaling import QUICK_SCALE


@pytest.fixture(scope="session")
def scale():
    return QUICK_SCALE


def show(result_text: str) -> None:
    """Print a regenerated artifact under the benchmark output."""
    print()
    print(result_text)
