"""Table 4 + Section 6.3: storage and area arithmetic.

These are closed-form computations, so the assertions pin them to the
paper's published numbers (within a rounding point): α=1/4 with ECC cuts
tag-store bits ~44% and whole-cache bits ~7%; the 16 MB ECC cache shrinks
~8% (α=1/4) and ~5% (α=1/2) in area.
"""

from fractions import Fraction

from benchmarks.conftest import show
from repro.analysis.report import format_table
from repro.area.ecc_model import area_reduction_with_ecc, compute_table4


def test_table4(benchmark):
    rows = benchmark(compute_table4)
    show(format_table(
        ["DBI size", "tag (no ECC)", "cache (no ECC)", "tag (ECC)",
         "cache (ECC)"],
        [
            [f"alpha={r.alpha}", f"{r.tag_reduction_no_ecc:.1%}",
             f"{r.cache_reduction_no_ecc:.2%}",
             f"{r.tag_reduction_with_ecc:.1%}",
             f"{r.cache_reduction_with_ecc:.1%}"]
            for r in rows
        ],
        title="Table 4: bit storage cost reduction (paper: 2%/0.1%/44%/7%; "
              "1%/0.0%/26%/4%)",
    ))
    quarter, half = rows
    assert 0.38 <= quarter.tag_reduction_with_ecc <= 0.48
    assert 0.05 <= quarter.cache_reduction_with_ecc <= 0.09
    assert 0.22 <= half.tag_reduction_with_ecc <= 0.30
    assert 0.03 <= half.cache_reduction_with_ecc <= 0.05


def test_area_reduction(benchmark):
    quarter = benchmark(lambda: area_reduction_with_ecc(alpha=Fraction(1, 4)))
    half = area_reduction_with_ecc(alpha=Fraction(1, 2))
    show(f"16MB ECC cache area reduction: alpha=1/4 {quarter:.1%} "
         f"(paper 8%), alpha=1/2 {half:.1%} (paper 5%)")
    assert 0.06 <= quarter <= 0.11
    assert 0.03 <= half <= 0.07
