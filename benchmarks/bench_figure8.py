"""Figure 8: per-workload 4-core S-curve (normalized weighted speedup).

Expected shape (paper Section 6.2): DBI+AWB+CLB consistently at-or-above
DAWB across the workload population, with only a small minority of
workloads degrading below the Baseline (7 of 259 in the paper).
"""

from benchmarks.conftest import show
from repro.analysis.experiments import run_figure8


def test_figure8(benchmark, scale, runner):
    result = benchmark.pedantic(
        lambda: run_figure8(scale, num_mixes=6, runner=runner),
        rounds=1, iterations=1,
    )
    show(result.to_text())

    dbi_norm = result.raw["dbi+awb+clb"]
    # The majority of workloads must not degrade under the full mechanism.
    degrading = sum(1 for value in dbi_norm if value < 0.98)
    assert degrading <= len(dbi_norm) // 2
