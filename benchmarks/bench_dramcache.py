"""Die-stacked DRAM-cache dirty-tracking trade-off (TicToc/Banshee).

Regenerates the ``repro dramcache`` study: each benchmark runs behind the
same LLC mechanism with the stacked level's two dirty backends — per-line
tag dirty bits vs a row-granularity DBI feeding aggressive whole-row
writeback. Expected shape: the DBI side batches the off-chip write stream
by DRAM row (strictly higher writeback row-hit rate, strictly lower
write-stream cost in DRAM cycles) without giving up hit latency (IPC stays
within noise of the tag side).
"""

from benchmarks.conftest import show
from repro.analysis.experiments import (
    DRAMCACHE_TRADEOFF_BENCHMARKS,
    _dramcache_level_config,
    run_dramcache,
)


def test_dramcache_tradeoff(benchmark, scale, runner):
    result = benchmark.pedantic(
        lambda: run_dramcache(scale, runner=runner), rounds=1, iterations=1
    )
    show(result.to_text())
    for bench in DRAMCACHE_TRADEOFF_BENCHMARKS:
        tag, dbi = result.raw[bench]["tag"], result.raw[bench]["dbi"]
        # The bandwidth half of the trade-off: strictly better on both axes.
        assert dbi["write_row_hit_rate"] > tag["write_row_hit_rate"], bench
        assert dbi["write_cost_cycles"] < tag["write_cost_cycles"], bench
        # The latency half: aggressive writeback must not cost hit rate.
        assert dbi["ipc"] >= 0.9 * tag["ipc"], bench


def test_checked_level_run_is_byte_identical(benchmark, scale):
    """``--check full`` with the level attached is purely observational."""
    from repro.sim.system import run_system

    config = scale.system_config(
        "dbi+awb", dram_cache=_dramcache_level_config(scale, "dbi")
    )
    trace = scale.benchmark_trace("lbm", refs=8_000)

    def both():
        unchecked = run_system(config, [trace])
        checked = run_system(config, [trace], check="full")
        return unchecked, checked

    unchecked, checked = benchmark.pedantic(both, rounds=1, iterations=1)
    assert checked.to_dict() == unchecked.to_dict()
