"""Table 7: sensitivity to LLC capacity (2 vs 4 MB/core).

Expected shape (paper): DBI+AWB+CLB improves weighted speedup at both
capacities, with smaller gains at 4 MB/core (memory bandwidth matters
less when the cache absorbs more of the working set).
"""

from benchmarks.conftest import show
from repro.analysis.experiments import run_table7


def test_table7(benchmark, scale, runner):
    result = benchmark.pedantic(
        lambda: run_table7(
            scale, core_counts=(2,), mb_per_core_options=(2, 4),
            mixes_per_system=3, runner=runner,
        ),
        rounds=1, iterations=1,
    )
    show(result.to_text())

    gains_2mb = result.raw[(2, 2)]
    mean = sum(gains_2mb) / len(gains_2mb)
    assert mean > -0.02  # no average regression at the paper's default size
