#!/usr/bin/env python
"""Single-core mechanism study (paper Figure 6, condensed).

Runs a subset of the Figure 6 benchmarks under every Table 2 mechanism and
prints the five sub-figures as tables: IPC, write row-hit rate, tag lookups
per kilo-instruction, memory writes per kilo-instruction, read row-hit rate.

Run:  python examples/single_core_study.py [--scale quick|default|full]
      python examples/single_core_study.py --benchmarks lbm,mcf,bzip2
"""

import argparse

from repro.analysis.experiments import run_figure6
from repro.analysis.scaling import SCALES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="quick", choices=sorted(SCALES))
    parser.add_argument(
        "--benchmarks",
        default="lbm,GemsFDTD,mcf,cactusADM,libquantum,bzip2",
        help="comma-separated benchmark names (Figure 6 set)",
    )
    args = parser.parse_args()

    benchmarks = [b.strip() for b in args.benchmarks.split(",") if b.strip()]
    results = run_figure6(SCALES[args.scale], benchmarks=benchmarks)
    for exp_id in sorted(results):
        print(results[exp_id].to_text())
        print()


if __name__ == "__main__":
    main()
