#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation.

Runs all experiment harnesses at the chosen scale and writes a combined
report (the source material for EXPERIMENTS.md). Simulations fan out over
``--workers`` processes and memoize into the sweep cache, so an interrupted
run resumes where it stopped and a repeated run skips every simulation.

Run:  python examples/full_paper_run.py --scale quick --workers 4 --out report.txt
"""

import argparse
import sys
import time

from repro.analysis import experiments
from repro.analysis.report import format_table
from repro.analysis.runner import DEFAULT_CACHE_DIR, SweepRunner, stderr_progress
from repro.analysis.scaling import SCALES
from repro.area.ecc_model import (
    area_reduction_with_ecc,
    compute_table4,
    compute_table5,
)


def analytic_sections() -> str:
    """Tables 4/5 and the area claim (scale-independent arithmetic)."""
    parts = []
    rows = [
        [f"alpha={r.alpha}", f"{r.tag_reduction_no_ecc:.1%}",
         f"{r.cache_reduction_no_ecc:.2%}", f"{r.tag_reduction_with_ecc:.1%}",
         f"{r.cache_reduction_with_ecc:.1%}"]
        for r in compute_table4()
    ]
    parts.append(format_table(
        ["DBI size", "tag (no ECC)", "cache (no ECC)", "tag (ECC)",
         "cache (ECC)"],
        rows, title="Table 4: bit storage reduction",
    ))
    from fractions import Fraction

    parts.append(
        "Section 6.3 area reduction (16MB, ECC): "
        f"alpha=1/4 {area_reduction_with_ecc(alpha=Fraction(1, 4)):.1%}, "
        f"alpha=1/2 {area_reduction_with_ecc(alpha=Fraction(1, 2)):.1%}"
    )
    rows = [
        [f"{size}MB", f"{v['static_fraction']:.2%}", f"{v['dynamic_fraction']:.1%}"]
        for size, v in compute_table5().items()
    ]
    parts.append(format_table(
        ["cache", "DBI static", "DBI dynamic"], rows,
        title="Table 5: DBI power fraction",
    ))
    return "\n\n".join(parts)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="quick", choices=sorted(SCALES))
    parser.add_argument("--out", default=None, help="write the report here")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="simulation worker processes (default: cpu_count - 1; "
             "0/1 runs jobs inline)",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help="sweep result cache directory",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the on-disk sweep cache",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-job progress lines on stderr",
    )
    args = parser.parse_args()
    scale = SCALES[args.scale]
    sweep = SweepRunner(
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        progress=None if args.quiet else stderr_progress,
    )

    sections = [analytic_sections()]
    runners = [
        ("Figure 6", lambda: "\n\n".join(
            r.to_text() for _k, r in sorted(
                experiments.run_figure6(scale, runner=sweep).items()
            )
        )),
        ("Figure 7", lambda: experiments.run_figure7(scale, runner=sweep).to_text()),
        ("Figure 8", lambda: experiments.run_figure8(scale, runner=sweep).to_text()),
        ("Table 3", lambda: experiments.run_table3(scale, runner=sweep).to_text()),
        ("Table 6", lambda: experiments.run_table6(scale, runner=sweep).to_text()),
        ("Table 7", lambda: experiments.run_table7(scale, runner=sweep).to_text()),
        ("DBI replacement study",
         lambda: experiments.run_dbi_replacement_study(
             scale, runner=sweep).to_text()),
        ("DRRIP study",
         lambda: experiments.run_drrip_study(scale, runner=sweep).to_text()),
        ("Case study",
         lambda: experiments.run_case_study(scale, runner=sweep).to_text()),
    ]
    try:
        for label, runner in runners:
            start = time.time()
            print(f"running {label}...", file=sys.stderr)
            sections.append(runner())
            print(f"  done in {time.time() - start:.0f}s", file=sys.stderr)
    finally:
        sweep.close()
    print(sweep.summary(), file=sys.stderr)

    report = "\n\n\n".join(sections) + "\n"
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"report written to {args.out}", file=sys.stderr)
    else:
        print(report)


if __name__ == "__main__":
    main()
