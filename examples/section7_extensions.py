#!/usr/bin/env python
"""The paper's Section 7 extensions, running.

Two of the "other optimizations enabled by DBI" as working subsystems:

1. **Self-balancing DRAM-cache dispatch** [49] — clean reads balance across
   the die-stacked cache and off-chip memory; the DBI is the cheap oracle
   for "could this be dirty?". We contrast a write-heavy phase (everything
   pinned to the DRAM cache) against a read-mostly phase (a third of the
   traffic offloaded).
2. **Coherent bulk DMA** — one ranged DBI query per DRAM row replaces
   per-block tag lookups when a device reads a large buffer.

Run:  python examples/section7_extensions.py
"""

from fractions import Fraction

from repro.core.config import DbiConfig
from repro.core.dbi import DirtyBlockIndex
from repro.extensions.bulk_dma import BulkDmaEngine
from repro.extensions.dram_cache import DramCacheDispatcher, DramCacheModel
from repro.utils.rng import DeterministicRng


def dram_cache_study() -> None:
    print("1. Self-balancing DRAM-cache dispatch")
    print("-" * 38)
    for phase, write_prob in (("write-heavy", 0.6), ("read-mostly", 0.05)):
        rng = DeterministicRng(11)
        dbi = DirtyBlockIndex(
            DbiConfig(cache_blocks=65536, alpha=Fraction(1, 4), granularity=64,
                      associativity=16)
        )
        cache = DramCacheModel(dbi=dbi, capacity_blocks=16384)
        dispatcher = DramCacheDispatcher(cache, queue_penalty_threshold=1)
        footprint = 8192
        in_flight = []
        for _ in range(20000):
            addr = rng.randint(0, footprint - 1)
            if rng.chance(write_prob):
                cache.write(addr)
            else:
                in_flight.append(dispatcher.dispatch_read(addr))
                # Requests drain in bursts of 8, so queue imbalance is
                # visible to the balancer (as in a real controller).
                if len(in_flight) >= 8:
                    for decision in in_flight:
                        dispatcher.complete(decision)
                    in_flight.clear()
        flat = dispatcher.stats.as_dict()
        print(f"  {phase:12s}: {flat['dispatch.reads']:>6.0f} reads, "
              f"{flat.get('dispatch.forced_to_cache', 0):>6.0f} forced dirty, "
              f"{dispatcher.off_chip_share:.0%} offloaded to off-chip")
    print()


def bulk_dma_study() -> None:
    print("2. Coherent bulk DMA")
    print("-" * 38)
    rng = DeterministicRng(12)
    dbi = DirtyBlockIndex(
        DbiConfig(cache_blocks=65536, alpha=Fraction(1, 4), granularity=64,
                  associativity=16)
    )
    # Dirty a sparse working set.
    for _ in range(2000):
        dbi.mark_dirty(rng.randint(0, 1 << 16))
    engine = BulkDmaEngine(dbi)
    report = engine.prepare_read(start_block=4096, num_blocks=4096)  # 256 KB
    print(f"  transfer: {report.num_blocks} blocks "
          f"({report.num_blocks * 64 // 1024} KB)")
    print(f"  dirty blocks flushed     : {len(report.dirty_blocks_flushed)}")
    print(f"  conventional tag lookups : {report.conventional_tag_lookups}")
    print(f"  DBI queries              : {report.dbi_queries}")
    print(f"  lookup reduction         : {report.lookup_reduction:.0f}x")


def main() -> None:
    dram_cache_study()
    bulk_dma_study()


if __name__ == "__main__":
    main()
