#!/usr/bin/env python
"""Multi-core write-interference study (paper Figures 7/8, condensed).

Builds multi-programmed mixes spanning the paper's read/write intensity
categories, runs them under the baseline, DAWB and the full DBI mechanism,
and reports weighted speedup plus fairness metrics — the paper's headline
multi-core result is that DBI+AWB+CLB beats DAWB because its proactive
writebacks cost no wasted tag lookups.

Run:  python examples/multicore_interference.py [--cores 4] [--mixes 3]
"""

import argparse

from repro.analysis.experiments import AloneIpcCache, _mix_speedups
from repro.analysis.report import format_table
from repro.analysis.scaling import SCALES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="quick", choices=sorted(SCALES))
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--mixes", type=int, default=3)
    parser.add_argument(
        "--mechanisms", default="baseline,dawb,dbi+awb+clb",
        help="comma-separated mechanism names",
    )
    args = parser.parse_args()

    scale = SCALES[args.scale]
    mechanisms = [m.strip() for m in args.mechanisms.split(",")]
    mixes = scale.mixes(args.cores, count=args.mixes)
    alone = AloneIpcCache(scale)

    rows = []
    for mix in mixes:
        print(f"running {mix.name}: {', '.join(mix.benchmark_names)}")
        cells = [mix.name]
        for mechanism in mechanisms:
            metrics = _mix_speedups(scale, mechanism, mix, alone)
            cells.append(metrics["weighted_speedup"])
        rows.append(cells)

    averages = ["average"] + [
        sum(row[i] for row in rows) / len(rows)
        for i in range(1, len(mechanisms) + 1)
    ]
    rows.append(averages)
    print()
    print(format_table(
        ["workload"] + mechanisms, rows,
        title=f"{args.cores}-core weighted speedup ({scale.name} scale)",
    ))
    best, base = averages[-1], averages[1]
    print(f"\n{mechanisms[-1]} vs {mechanisms[0]}: {best / base - 1:+.1%}")


if __name__ == "__main__":
    main()
