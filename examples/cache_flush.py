#!/usr/bin/env python
"""Fast cache flushing with a DBI (paper Section 7, "Cache Flushing").

Powering down a cache bank or committing a persistence epoch requires
writing back every dirty block. A conventional cache must walk the whole
tag store (one lookup per block) to find them; the DBI's compact dirty-bit
organization names them directly.

This example fills a cache with a realistic mixed working set two ways —
tag-store dirty bits vs a DBI — and compares the *lookup cost* of a full
flush, plus shows the row-batched order the DBI yields (row-batched flush
writes drain as DRAM row hits).

Run:  python examples/cache_flush.py
"""

from fractions import Fraction

from repro.cache.cache import Cache
from repro.cache.config import CacheConfig
from repro.core.config import DbiConfig
from repro.core.dbi import DirtyBlockIndex
from repro.utils.rng import DeterministicRng


def build_conventional(num_blocks, traffic):
    cache = Cache(CacheConfig(
        name="llc", num_blocks=num_blocks, associativity=16,
        tag_latency=10, data_latency=24,
    ))
    for addr, dirty in traffic:
        cache.insert(addr, dirty=dirty)
    return cache


def build_dbi_cache(num_blocks, traffic):
    cache = Cache(CacheConfig(
        name="llc", num_blocks=num_blocks, associativity=16,
        tag_latency=10, data_latency=24,
    ))
    dbi = DirtyBlockIndex(DbiConfig(
        cache_blocks=num_blocks, alpha=Fraction(1, 4),
        granularity=64, associativity=16,
    ))
    for addr, dirty in traffic:
        evicted = cache.insert(addr, dirty=False)
        if evicted is not None and dbi.is_dirty(evicted.addr):
            dbi.mark_clean(evicted.addr)
        if dirty:
            eviction = dbi.mark_dirty(addr)
            if eviction is not None:
                pass  # dirty blocks written back early; stay clean in cache
    return cache, dbi


def main() -> None:
    num_blocks = 32768  # 2 MB
    rng = DeterministicRng(7)
    traffic = [
        (rng.randint(0, 4 * num_blocks), rng.chance(0.3))
        for _ in range(3 * num_blocks)
    ]

    conventional = build_conventional(num_blocks, traffic)
    dirty_blocks = [b.addr for b in conventional.iter_valid_blocks() if b.dirty]
    tag_walk_lookups = num_blocks  # must inspect every tag entry

    cache, dbi = build_dbi_cache(num_blocks, traffic)
    dbi_dirty = dbi.all_dirty_blocks()
    dbi_lookups = len(dbi_dirty)  # one data-read lookup per dirty block only

    print("Full-cache flush cost (tag lookups):")
    print(f"  conventional tag walk : {tag_walk_lookups:>7d} lookups "
          f"to find {len(dirty_blocks)} dirty blocks")
    print(f"  DBI flush             : {dbi_lookups:>7d} lookups "
          f"(exactly the dirty blocks)")
    print(f"  lookup reduction      : {tag_walk_lookups / max(1, dbi_lookups):.1f}x")

    # The DBI also yields dirty blocks row-batched: consecutive flush writes
    # hit open DRAM rows.
    rows = [addr // 128 for addr in dbi_dirty]
    batched = sum(1 for a, b in zip(rows, rows[1:]) if a == b)
    print(f"\nDBI flush order row locality: {batched / max(1, len(rows) - 1):.0%} "
          f"of consecutive writebacks share a DRAM row")
    print(f"(DBI tracks {dbi.tracked_dirty_blocks} dirty blocks; the rest "
          f"were proactively written back when their entries were displaced)")


if __name__ == "__main__":
    main()
