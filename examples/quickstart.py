#!/usr/bin/env python
"""Quickstart: the Dirty-Block Index in 60 seconds.

Builds the paper's system twice — once with the conventional TA-DIP LLC and
once with the full DBI mechanism (AWB + CLB) — runs the same write-heavy
workload on both, and prints the headline effects:

* write row-hit rate jumps (DRAM-aware writeback),
* LLC tag lookups stay flat (no DAWB-style probe storm),
* IPC improves.

Run:  python examples/quickstart.py
"""

from repro.analysis.scaling import QUICK_SCALE
from repro.sim.system import run_system


def main() -> None:
    scale = QUICK_SCALE
    trace = scale.benchmark_trace("lbm")
    print(f"workload: {trace.name} — {trace.total_instructions} instructions, "
          f"{trace.memory_references} memory references, "
          f"{trace.write_fraction:.0%} writes\n")

    results = {}
    for mechanism in ("tadip", "dbi+awb+clb"):
        results[mechanism] = run_system(
            scale.system_config(mechanism), [trace]
        )

    header = f"{'metric':34s}{'tadip':>12s}{'dbi+awb+clb':>14s}"
    print(header)
    print("-" * len(header))
    metrics = [
        ("IPC", lambda r: f"{r.ipc[0]:.3f}"),
        ("write row hit rate", lambda r: f"{r.write_row_hit_rate:.1%}"),
        ("read row hit rate", lambda r: f"{r.read_row_hit_rate:.1%}"),
        ("LLC tag lookups / kilo-instr", lambda r: f"{r.tag_lookups_pki:.1f}"),
        ("memory writes / kilo-instr", lambda r: f"{r.memory_wpki:.1f}"),
    ]
    for label, fmt in metrics:
        print(f"{label:34s}{fmt(results['tadip']):>12s}"
              f"{fmt(results['dbi+awb+clb']):>14s}")

    speedup = results["dbi+awb+clb"].ipc[0] / results["tadip"].ipc[0] - 1
    print(f"\nDBI+AWB+CLB vs TA-DIP: {speedup:+.1%} IPC")


if __name__ == "__main__":
    main()
