#!/usr/bin/env python
"""Heterogeneous ECC study (paper Section 3.3, Table 4, Table 5).

Clean blocks only need error *detection* (a bad clean block can be re-read
from memory); dirty blocks hold the only copy and need *correction*. Since
the DBI is the authority on dirtiness, full SECDED ECC is needed only for
the α·N blocks the DBI can track. This example prints:

1. Table 4 — bit-storage reduction of the tag store / whole cache,
2. the Section 6.3 overall-area reduction (16 MB cache),
3. Table 5 — DBI power as a fraction of cache power,
4. a fault-injection demo over a live DBI showing the protection invariant.

Run:  python examples/ecc_overhead.py
"""

from fractions import Fraction

from repro.analysis.report import format_table
from repro.area.ecc_model import (
    area_reduction_with_ecc,
    compute_table4,
    compute_table5,
)
from repro.core.config import DbiConfig
from repro.core.dbi import DirtyBlockIndex
from repro.core.ecc import EccDomain


def show_table4() -> None:
    rows = []
    for row in compute_table4():
        rows.append([
            f"alpha={row.alpha}",
            f"{row.tag_reduction_no_ecc:.1%}",
            f"{row.cache_reduction_no_ecc:.2%}",
            f"{row.tag_reduction_with_ecc:.1%}",
            f"{row.cache_reduction_with_ecc:.1%}",
        ])
    print(format_table(
        ["DBI size", "tag (no ECC)", "cache (no ECC)",
         "tag (with ECC)", "cache (with ECC)"],
        rows,
        title="Table 4: bit-storage reduction (paper: 2%/0.1%/44%/7% and "
              "1%/0.0%/26%/4%)",
    ))


def show_area() -> None:
    print("\nSection 6.3 — total area reduction, 16 MB ECC-protected cache:")
    for alpha in (Fraction(1, 4), Fraction(1, 2)):
        reduction = area_reduction_with_ecc(alpha=alpha)
        print(f"  alpha={alpha}: {reduction:.1%}  "
              f"(paper: {'8%' if alpha == Fraction(1, 4) else '5%'})")


def show_table5() -> None:
    rows = [
        [f"{size}MB", f"{vals['static_fraction']:.2%}",
         f"{vals['dynamic_fraction']:.1%}"]
        for size, vals in compute_table5().items()
    ]
    print()
    print(format_table(
        ["cache", "DBI static", "DBI dynamic"],
        rows,
        title="Table 5: DBI power as fraction of cache power "
              "(paper: 0.12-0.22% static, 1-4% dynamic)",
    ))


def fault_injection_demo() -> None:
    print("\nFault-injection demo (live DBI):")
    dbi = DirtyBlockIndex(
        DbiConfig(cache_blocks=4096, granularity=16, associativity=8)
    )
    domain = EccDomain(dbi)
    dbi.mark_dirty(100)

    outcome = domain.inject_single_bit_fault(100)
    print(f"  1-bit fault, dirty block 100: corrected={outcome.corrected}")
    outcome = domain.inject_single_bit_fault(200)
    print(f"  1-bit fault, clean block 200: refetch={outcome.needs_refetch}, "
          f"data loss={outcome.data_loss}")
    assert domain.protection_invariant_holds()
    print("  protection invariant holds: every dirty block is ECC-covered")


def main() -> None:
    show_table4()
    show_area()
    show_table5()
    fault_injection_demo()


if __name__ == "__main__":
    main()
