#!/usr/bin/env python
"""Generate the EXPERIMENTS.md measurement data.

Single-core Figure 6 runs at the requested fig6 scale (default: the
``default`` profile); multi-core artifacts share one run set at the multi
scale (default: ``quick``) via :func:`run_multicore_suite`. Each artifact is
written to its own file under ``--outdir`` as it completes, so a partial run
still yields usable data.

Run:  python examples/generate_report.py --outdir results
"""

import argparse
import pathlib
import sys
import time

from repro.analysis import experiments
from repro.analysis.scaling import SCALES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default="results")
    parser.add_argument("--fig6-scale", default="default", choices=sorted(SCALES))
    parser.add_argument("--multi-scale", default="quick", choices=sorted(SCALES))
    parser.add_argument("--mixes", type=int, default=6)
    args = parser.parse_args()

    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(exist_ok=True)
    fig6_scale = SCALES[args.fig6_scale]
    multi_scale = SCALES[args.multi_scale]

    def emit(name: str, text: str) -> None:
        (outdir / f"{name}.txt").write_text(text + "\n")
        print(f"[{time.strftime('%H:%M:%S')}] wrote {name}", file=sys.stderr)

    # Figure 6 (all benchmarks, all mechanisms).
    results = experiments.run_figure6(fig6_scale)
    for exp_id in sorted(results):
        emit(exp_id, results[exp_id].to_text())

    # Figures 7/8 + Table 3 from one shared multi-core run set.
    suite = experiments.run_multicore_suite(
        multi_scale, mixes_per_system=args.mixes
    )
    for exp_id in ("fig7", "fig8", "table3"):
        emit(exp_id, suite[exp_id].to_text())

    # Sensitivity tables and studies.
    emit("table6", experiments.run_table6(multi_scale).to_text())
    emit("table7", experiments.run_table7(
        multi_scale, core_counts=(2, 4), mixes_per_system=args.mixes
    ).to_text())
    emit("replacement", experiments.run_dbi_replacement_study(
        multi_scale).to_text())
    emit("drrip", experiments.run_drrip_study(
        multi_scale, core_count=4, mixes_per_system=args.mixes).to_text())
    emit("case_study", experiments.run_case_study(multi_scale).to_text())
    print("done", file=sys.stderr)


if __name__ == "__main__":
    main()
