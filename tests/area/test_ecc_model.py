"""Tests for Table 4/5 and the Section 6.3 area computations."""

from fractions import Fraction

from repro.area.ecc_model import (
    area_reduction_with_ecc,
    compute_table4,
    compute_table5,
)


class TestTable4:
    def test_two_rows(self):
        rows = compute_table4()
        assert [row.alpha for row in rows] == [Fraction(1, 4), Fraction(1, 2)]

    def test_paper_bands_with_ecc(self):
        quarter, half = compute_table4()
        assert 0.38 <= quarter.tag_reduction_with_ecc <= 0.48  # paper 44%
        assert 0.05 <= quarter.cache_reduction_with_ecc <= 0.09  # paper 7%
        assert 0.22 <= half.tag_reduction_with_ecc <= 0.30  # paper 26%
        assert 0.03 <= half.cache_reduction_with_ecc <= 0.05  # paper 4%

    def test_paper_bands_without_ecc(self):
        quarter, half = compute_table4()
        assert 0.01 <= quarter.tag_reduction_no_ecc <= 0.03  # paper 2%
        assert quarter.cache_reduction_no_ecc <= 0.005  # paper 0.1%
        assert half.tag_reduction_no_ecc <= quarter.tag_reduction_no_ecc

    def test_smaller_caches_same_shape(self):
        rows = compute_table4(cache_bytes=2 * 1024 * 1024)
        assert 0.3 <= rows[0].tag_reduction_with_ecc <= 0.5


class TestAreaReduction:
    def test_paper_section_6_3(self):
        quarter = area_reduction_with_ecc(alpha=Fraction(1, 4))
        half = area_reduction_with_ecc(alpha=Fraction(1, 2))
        assert 0.06 <= quarter <= 0.11  # paper: 8%
        assert 0.03 <= half <= 0.07  # paper: 5%
        assert quarter > half  # smaller DBI saves more ECC area


class TestTable5:
    def test_all_sizes_reported(self):
        results = compute_table5()
        assert sorted(results) == [2, 4, 8, 16]

    def test_paper_bands(self):
        for vals in compute_table5().values():
            assert vals["static_fraction"] < 0.01  # paper 0.12-0.22%
            assert 0.005 < vals["dynamic_fraction"] < 0.06  # paper 1-4%

    def test_dynamic_scales_with_access_ratio(self):
        low = compute_table5(dbi_accesses_per_cache_access=0.5)
        high = compute_table5(dbi_accesses_per_cache_access=2.0)
        assert high[16]["dynamic_fraction"] > low[16]["dynamic_fraction"]
