"""Unit tests for the bit-count model (paper Table 4 arithmetic)."""

from fractions import Fraction

import pytest

from repro.area.bits import CacheBitModel, DbiBitModel


def cache_16mb(with_ecc=False):
    return CacheBitModel(
        cache_bytes=16 * 1024 * 1024, associativity=16, with_ecc=with_ecc
    )


class TestCacheBitModel:
    def test_block_and_set_counts(self):
        cache = cache_16mb()
        assert cache.num_blocks == 262144
        assert cache.num_sets == 16384

    def test_tag_bits(self):
        cache = cache_16mb()
        # 48 - 6 (block offset) - 14 (set index) = 28.
        assert cache.tag_bits == 28

    def test_ecc_overhead_is_12_5_percent(self):
        cache = cache_16mb(with_ecc=True)
        assert cache.ecc_bits_per_block / (64 * 8) == 0.125

    def test_edc_overhead_about_1_5_percent(self):
        cache = cache_16mb()
        assert abs(cache.edc_bits_per_block / (64 * 8) - 0.015) < 0.002

    def test_ecc_grows_tag_entry(self):
        no_ecc = cache_16mb(with_ecc=False).tag_entry_bits()
        with_ecc = cache_16mb(with_ecc=True).tag_entry_bits()
        assert with_ecc - no_ecc == 64

    def test_dirty_bit_costs_one(self):
        cache = cache_16mb()
        assert cache.tag_entry_bits(True) - cache.tag_entry_bits(False) == 1

    def test_data_store_dominates(self):
        cache = cache_16mb()
        assert cache.data_store_bits > 10 * cache.tag_store_bits


class TestDbiBitModel:
    def test_entry_count_matches_paper(self):
        # Paper Table 1: 2MB cache, alpha 1/4, granularity 64 -> 128 entries.
        cache = CacheBitModel(cache_bytes=2 * 1024 * 1024, associativity=16)
        dbi = DbiBitModel(cache, alpha=Fraction(1, 4), granularity=64)
        assert dbi.tracked_blocks == 8192
        assert dbi.num_entries == 128

    def test_dbi_is_much_smaller_than_tag_store(self):
        cache = cache_16mb()
        dbi = DbiBitModel(cache)
        assert dbi.dbi_bits < cache.tag_store_bits / 10

    def test_bigger_alpha_bigger_dbi(self):
        cache = cache_16mb()
        quarter = DbiBitModel(cache, alpha=Fraction(1, 4))
        half = DbiBitModel(cache, alpha=Fraction(1, 2))
        assert half.dbi_bits > quarter.dbi_bits

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            DbiBitModel(cache_16mb(), alpha=Fraction(0))


class TestTable4Numbers:
    """The paper's Table 4, within a point of rounding."""

    def test_without_ecc(self):
        cache = cache_16mb(with_ecc=False)
        quarter = DbiBitModel(cache, alpha=Fraction(1, 4))
        half = DbiBitModel(cache, alpha=Fraction(1, 2))
        assert 0.01 <= quarter.tag_store_reduction <= 0.03  # paper: 2%
        assert 0.005 <= half.tag_store_reduction <= 0.02  # paper: 1%
        assert 0.0 <= quarter.cache_reduction <= 0.003  # paper: 0.1%

    def test_with_ecc(self):
        cache = cache_16mb(with_ecc=True)
        quarter = DbiBitModel(cache, alpha=Fraction(1, 4))
        half = DbiBitModel(cache, alpha=Fraction(1, 2))
        assert 0.38 <= quarter.tag_store_reduction <= 0.48  # paper: 44%
        assert 0.22 <= half.tag_store_reduction <= 0.30  # paper: 26%
        assert 0.05 <= quarter.cache_reduction <= 0.09  # paper: 7%
        assert 0.03 <= half.cache_reduction <= 0.05  # paper: 4%

    def test_reduction_roughly_size_independent(self):
        """Paper: savings ratio roughly independent of cache size."""
        reductions = []
        for mb in (2, 4, 8, 16):
            cache = CacheBitModel(cache_bytes=mb * 1024 * 1024,
                                  associativity=16, with_ecc=True)
            reductions.append(DbiBitModel(cache).tag_store_reduction)
        assert max(reductions) - min(reductions) < 0.05
