"""Unit tests for the analytical area/latency/power model."""

import pytest

from repro.area.cacti_lite import ArrayModel, CactiLite


class TestArrayModel:
    def test_area_scales_superlinearly_below_linear(self):
        small = ArrayModel("a", bits=1024 * 1024)
        large = ArrayModel("b", bits=4 * 1024 * 1024)
        assert large.area_mm2 > small.area_mm2
        # Peripheral overhead shrinks with size: 4x bits < 4x area overheads.
        assert large.area_mm2 < 4 * small.area_mm2 * 1.01

    def test_small_arrays_pay_peripheral_overhead(self):
        tiny = ArrayModel("t", bits=8 * 1024)
        big = ArrayModel("b", bits=8 * 1024 * 1024)
        assert tiny.peripheral_overhead > big.peripheral_overhead

    def test_tag_arrays_less_dense(self):
        data = ArrayModel("d", bits=1024 * 1024, is_tag=False)
        tag = ArrayModel("t", bits=1024 * 1024, is_tag=True)
        assert tag.area_mm2 > data.area_mm2

    def test_latency_grows_with_size(self):
        small = ArrayModel("s", bits=16 * 1024)
        large = ArrayModel("l", bits=16 * 1024 * 1024)
        assert large.access_latency_cycles > small.access_latency_cycles

    def test_latency_calibration_dbi_vs_llc_tag(self):
        # Paper Table 1: DBI ~4 cycles; a 2MB LLC tag store ~10 cycles.
        dbi = ArrayModel("dbi", bits=128 * 90, is_tag=True)
        llc_tag = ArrayModel("tag", bits=32768 * 40, is_tag=True)
        assert dbi.access_latency_cycles <= 5
        assert 8 <= llc_tag.access_latency_cycles <= 13

    def test_dynamic_energy_grows_sublinearly(self):
        small = ArrayModel("s", bits=64 * 1024)
        large = ArrayModel("l", bits=64 * 64 * 1024)
        ratio = large.dynamic_energy_pj() / small.dynamic_energy_pj()
        assert 1 < ratio < 64

    def test_zero_bits_rejected(self):
        with pytest.raises(ValueError):
            ArrayModel("x", bits=0)


class TestCactiLite:
    def make(self):
        return CactiLite(arrays=(
            ArrayModel("data", bits=16 * 1024 * 1024 * 8),
            ArrayModel("tag", bits=1024 * 1024, is_tag=True),
        ))

    def test_rollup_sums_arrays(self):
        model = self.make()
        assert model.area_mm2 == pytest.approx(
            sum(a.area_mm2 for a in model.arrays)
        )
        assert model.static_power_mw == pytest.approx(
            sum(a.static_power_mw for a in model.arrays)
        )

    def test_dynamic_power_by_access_rate(self):
        model = self.make()
        low = model.dynamic_power_mw({"data": 0.01})
        high = model.dynamic_power_mw({"data": 0.02})
        assert high == pytest.approx(2 * low)

    def test_unknown_array_rejected(self):
        model = self.make()
        with pytest.raises(KeyError):
            model.dynamic_power_mw({"dbi": 0.1})
