"""Sweep-runner telemetry integration: artifacts, keys, failure cleanup."""

import os

import pytest

from repro.analysis.runner import SweepJobError, SweepRunner, job_key
from repro.telemetry.sampler import TelemetryConfig, read_jsonl
from tests.analysis.test_runner import tiny_job

TELEMETRY = TelemetryConfig(epoch_cycles=500)


class TestArtifacts:
    def test_simulated_job_writes_final_artifact(self, tmp_path):
        config, traces = tiny_job()
        runner = SweepRunner(
            workers=0, cache_dir=None, telemetry=TELEMETRY,
            telemetry_dir=str(tmp_path),
        )
        runner.run(config, traces)
        key = job_key(config, traces)
        path = tmp_path / f"{key}.telemetry.jsonl"
        assert path.exists()
        assert not path.with_suffix(".jsonl.partial").exists()
        header, records = read_jsonl(str(path))
        assert header["key"] == key
        assert records and records[-1].final

    def test_results_identical_with_and_without_telemetry(self, tmp_path):
        config, traces = tiny_job()
        plain = SweepRunner(workers=0, cache_dir=None).run(config, traces)
        sampled = SweepRunner(
            workers=0, cache_dir=None, telemetry=TELEMETRY,
            telemetry_dir=str(tmp_path),
        ).run(config, traces)
        assert sampled.to_dict() == plain.to_dict()

    def test_artifacts_default_next_to_cache(self, tmp_path):
        config, traces = tiny_job()
        cache = str(tmp_path / "cache")
        SweepRunner(workers=0, cache_dir=cache, telemetry=TELEMETRY).run(
            config, traces
        )
        key = job_key(config, traces)
        assert os.path.exists(os.path.join(cache, f"{key}.json"))
        assert os.path.exists(os.path.join(cache, f"{key}.telemetry.jsonl"))

    def test_cache_hit_produces_no_artifact(self, tmp_path):
        config, traces = tiny_job()
        cache = str(tmp_path / "cache")
        SweepRunner(workers=0, cache_dir=cache).run(config, traces)
        telemetry_dir = tmp_path / "tel"
        runner = SweepRunner(
            workers=0, cache_dir=cache, telemetry=TELEMETRY,
            telemetry_dir=str(telemetry_dir),
        )
        runner.run(config, traces)
        # Telemetry is excluded from job_key, so the cached result answers
        # the job and nothing is simulated — hence no epoch stream.
        assert runner.cache_hits == 1
        assert not telemetry_dir.exists() or not list(telemetry_dir.iterdir())


class TestKeyExclusion:
    def test_telemetry_does_not_change_job_key(self, tmp_path):
        config, traces = tiny_job()
        # job_key has no telemetry parameter at all; the riders live on the
        # job spec only. Two runners with/without telemetry share keys, so
        # they share cache entries.
        key = job_key(config, traces)
        runner = SweepRunner(
            workers=0, cache_dir=None, telemetry=TELEMETRY,
            telemetry_dir=str(tmp_path),
        )
        future = runner.submit(config, traces)
        assert future.job.key == key
        assert future.job.telemetry is TELEMETRY


class TestFailureCleanup:
    def failing_submit(self, runner):
        # An impossible event budget fails deterministically *mid-run*,
        # after the sampler has already streamed epochs to the .partial.
        config, traces = tiny_job()
        with pytest.raises(SweepJobError):
            runner.submit(config, traces, max_events=2_000).result()

    def test_partial_deleted_by_default(self, tmp_path):
        runner = SweepRunner(
            workers=0, cache_dir=None,
            telemetry=TelemetryConfig(epoch_cycles=100),
            telemetry_dir=str(tmp_path),
        )
        self.failing_submit(runner)
        assert list(tmp_path.iterdir()) == []

    def test_partial_retained_on_request(self, tmp_path):
        runner = SweepRunner(
            workers=0, cache_dir=None,
            telemetry=TelemetryConfig(epoch_cycles=100),
            telemetry_dir=str(tmp_path),
            retain_failed_telemetry=True,
        )
        self.failing_submit(runner)
        partials = [
            p for p in tmp_path.iterdir() if p.name.endswith(".partial")
        ]
        assert len(partials) == 1
        # The forensic trail holds every epoch closed before the death.
        header, records = read_jsonl(str(partials[0]))
        assert header["kind"] == "header"
        assert records
