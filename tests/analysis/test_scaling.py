"""Unit tests for scale profiles."""

from repro.analysis.scaling import (
    DEFAULT_SCALE,
    FULL_SCALE,
    QUICK_SCALE,
    SCALES,
)


class TestScaleProfiles:
    def test_registry(self):
        assert set(SCALES) == {"quick", "default", "full"}

    def test_divisors_ordered(self):
        assert QUICK_SCALE.divisor > DEFAULT_SCALE.divisor > FULL_SCALE.divisor
        assert FULL_SCALE.divisor == 1

    def test_full_scale_matches_paper_machine(self):
        config = FULL_SCALE.system_config("dbi+awb+clb", num_cores=4)
        assert config.llc.num_blocks * 64 == 8 * 1024 * 1024  # 2MB/core
        assert config.l1.num_blocks * 64 == 32 * 1024
        assert config.l2.num_blocks * 64 == 256 * 1024
        assert config.dram.row_buffer_blocks == 128
        assert config.dbi_granularity == 64

    def test_scaled_machine_preserves_ratios(self):
        full = FULL_SCALE.system_config("dbi", num_cores=1)
        scaled = DEFAULT_SCALE.system_config("dbi", num_cores=1)
        assert full.llc.num_blocks // scaled.llc.num_blocks == 8
        assert full.l2.num_blocks // scaled.l2.num_blocks == 8
        # Granularity : row ratio is preserved (half a row).
        assert scaled.dbi_granularity * 2 == scaled.dram.row_buffer_blocks

    def test_dbi_entry_count_preserved(self):
        """The scaled DBI keeps the paper's 128 entries (α=1/4, g=row/2)
        wherever the DRAM row can scale exactly (divisor <= 8); the quick
        profile's 16-block row floor halves that once more."""
        for scale, expected in ((FULL_SCALE, 128), (DEFAULT_SCALE, 128),
                                (QUICK_SCALE, 64)):
            config = scale.system_config("dbi", num_cores=1)
            tracked = int(config.llc.num_blocks * config.dbi_alpha)
            assert tracked // config.dbi_granularity == expected

    def test_traces_scale_with_machine(self):
        full = FULL_SCALE.benchmark_trace("mcf", refs=1000)
        quick = QUICK_SCALE.benchmark_trace("mcf", refs=1000)
        assert quick.footprint_blocks < full.footprint_blocks

    def test_mixes_generate(self):
        mixes = QUICK_SCALE.mixes(2, count=2)
        assert len(mixes) == 2
        assert all(mix.num_cores == 2 for mix in mixes)

    def test_mechanism_replacement_resolution(self):
        baseline = QUICK_SCALE.system_config("baseline")
        dbi = QUICK_SCALE.system_config("dbi")
        assert baseline.resolve_llc().replacement == "lru"
        assert dbi.resolve_llc().replacement == "tadip"
