"""Tests for the parallel, cached sweep engine."""

import dataclasses
import json
import os
import pickle

import pytest

from repro.analysis.runner import (
    SweepJob,
    SweepRunner,
    default_workers,
    job_key,
)
from repro.analysis.scaling import QUICK_SCALE
from repro.sim.system import SimulationResult
from tests.sim.conftest import random_trace, small_config

#: A tiny profile so pool-backed tests stay fast.
TINY = dataclasses.replace(
    QUICK_SCALE,
    name="tiny",
    refs_single_core=3_000,
    refs_per_core_multi=2_000,
    mixes_per_system=2,
)


def tiny_job(mechanism="baseline", refs=300, seed=7):
    config = small_config(mechanism)
    trace = random_trace(refs=refs, seed=seed, write_fraction=0.4)
    return config, [trace]


class TestJobKey:
    def test_stable_across_calls(self):
        config, traces = tiny_job()
        assert job_key(config, traces) == job_key(config, traces)

    def test_sensitive_to_config(self):
        config, traces = tiny_job()
        other = dataclasses.replace(config, mechanism="tadip")
        assert job_key(config, traces) != job_key(other, traces)

    def test_sensitive_to_trace_content(self):
        config, traces = tiny_job(seed=7)
        _, other_traces = tiny_job(seed=8)
        assert job_key(config, traces) != job_key(config, other_traces)

    def test_sensitive_to_event_budget(self):
        config, traces = tiny_job()
        assert job_key(config, traces) != job_key(config, traces, max_events=10)


class TestPicklability:
    def test_job_and_result_round_trip(self):
        """Process-pool dispatch needs job specs and results to pickle."""
        config, traces = tiny_job()
        job = SweepJob(0, job_key(config, traces), config, tuple(traces))
        restored = pickle.loads(pickle.dumps(job))
        assert restored.config == config
        assert restored.traces[0].records == traces[0].records

        runner = SweepRunner(workers=0, cache_dir=None)
        result = runner.run(config, traces)
        assert pickle.loads(pickle.dumps(result)).to_json() == result.to_json()

    def test_result_dict_round_trip(self):
        config, traces = tiny_job()
        result = SweepRunner(workers=0, cache_dir=None).run(config, traces)
        rebuilt = SimulationResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert rebuilt.to_json() == result.to_json()


class TestMemoization:
    def test_repeated_submissions_coalesce(self):
        runner = SweepRunner(workers=0, cache_dir=None)
        config, traces = tiny_job()
        first = runner.submit(config, traces)
        second = runner.submit(config, traces)
        assert first is second
        assert runner.jobs_executed == 1
        assert runner.memo_hits == 1

    def test_disk_cache_resumes_across_runners(self, tmp_path):
        cache = str(tmp_path / "cache")
        config, traces = tiny_job()
        cold = SweepRunner(workers=0, cache_dir=cache)
        cold_result = cold.run(config, traces)
        assert cold.jobs_executed == 1
        assert os.listdir(cache)  # entry written

        warm = SweepRunner(workers=0, cache_dir=cache)
        warm_result = warm.run(config, traces)
        assert warm.jobs_executed == 0
        assert warm.cache_hits == 1
        assert warm_result.to_json() == cold_result.to_json()

    def test_corrupt_cache_entry_is_ignored(self, tmp_path):
        cache = str(tmp_path / "cache")
        config, traces = tiny_job()
        runner = SweepRunner(workers=0, cache_dir=cache)
        runner.run(config, traces)
        (entry,) = os.listdir(cache)
        with open(os.path.join(cache, entry), "w") as handle:
            handle.write("{not json")
        rerun = SweepRunner(workers=0, cache_dir=cache)
        rerun.run(config, traces)
        assert rerun.jobs_executed == 1  # fell back to simulating

    def test_no_cache_mode_writes_nothing(self, tmp_path):
        cache = str(tmp_path / "cache")
        config, traces = tiny_job()
        runner = SweepRunner(workers=0, cache_dir=cache, use_cache=False)
        runner.run(config, traces)
        assert not os.path.exists(cache)


class TestDeterminism:
    """Same seed through any execution mode yields byte-identical results."""

    def test_serial_parallel_and_cached_agree(self, tmp_path):
        cache = str(tmp_path / "cache")
        jobs = [tiny_job("dbi+awb+clb"), tiny_job("tadip"), tiny_job("dawb")]

        serial = SweepRunner(workers=1, cache_dir=None)
        serial_json = [serial.run(c, t).to_json() for c, t in jobs]

        with SweepRunner(workers=4, cache_dir=cache) as parallel:
            futures = [parallel.submit(c, t) for c, t in jobs]
            parallel_json = [f.result().to_json() for f in futures]
        assert parallel.jobs_executed == len(jobs)

        warm = SweepRunner(workers=4, cache_dir=cache)
        warm_json = [warm.run(c, t).to_json() for c, t in jobs]
        warm.close()
        assert warm.jobs_executed == 0
        assert warm.cache_hits == len(jobs)

        assert serial_json == parallel_json == warm_json


class TestExperimentIntegration:
    def test_figure6_identical_with_and_without_runner(self, tmp_path):
        from repro.analysis.experiments import run_figure6

        plain = run_figure6(TINY, benchmarks=("bzip2",), mechanisms=("tadip",))
        with SweepRunner(workers=2, cache_dir=str(tmp_path / "c")) as runner:
            swept = run_figure6(
                TINY, benchmarks=("bzip2",), mechanisms=("tadip",),
                runner=runner,
            )
        for exp_id in plain:
            assert plain[exp_id].rows == swept[exp_id].rows

    def test_shared_baselines_computed_once(self):
        """Artifacts sharing runs (fig7 & table3 baselines) coalesce."""
        from repro.analysis.experiments import run_figure7, run_table3

        runner = SweepRunner(workers=0, cache_dir=None)
        run_figure7(TINY, core_counts=(2,), mechanisms=("baseline", "dbi"),
                    mixes_per_system=2, runner=runner)
        executed_after_fig7 = runner.jobs_executed
        # Table 3 re-requests the same baseline mixes and alone-mode runs;
        # only its dbi+awb+clb shared runs are new simulations.
        run_table3(TINY, core_counts=(2,), mechanism="dbi+awb+clb",
                   mixes_per_system=2, runner=runner)
        assert runner.memo_hits > 0
        assert runner.jobs_executed - executed_after_fig7 == 2
        assert runner.jobs_executed == runner.jobs_submitted

    def test_progress_lines_emitted(self):
        lines = []
        runner = SweepRunner(workers=0, cache_dir=None, progress=lines.append)
        config, traces = tiny_job()
        runner.run(config, traces)
        runner.run(config, traces)  # coalesced: no second line
        assert len(lines) == 1
        assert "baseline" in lines[0] and "miss" in lines[0]


class TestDefaults:
    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_summary_mentions_counts(self):
        runner = SweepRunner(workers=0, cache_dir=None)
        config, traces = tiny_job()
        runner.run(config, traces)
        summary = runner.summary()
        assert "1 jobs" in summary and "1 simulated" in summary
