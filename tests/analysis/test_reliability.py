"""Tests for the Section 3.3 heterogeneous-ECC reliability experiment."""

import dataclasses
from fractions import Fraction

from repro.analysis.experiments import run_reliability
from repro.analysis.scaling import QUICK_SCALE

#: Small but not degenerate: enough references to dirty the LLC, enough
#: faults to hit dirty blocks in the untracked domains.
TINY = dataclasses.replace(QUICK_SCALE, name="tiny-rel", refs_single_core=8_000)


def run_tiny(**kwargs):
    defaults = dict(
        scale=TINY,
        benchmark="lbm",
        mechanisms=("baseline", "dbi", "dbi+awb+clb"),
        alphas=(Fraction(1, 4),),
        faults=150,
        interval=100,
    )
    defaults.update(kwargs)
    return run_reliability(**defaults)


class TestReliabilityExperiment:
    def test_dbi_tracked_rows_have_zero_data_loss(self):
        """Acceptance: every DBI-tracked (mechanism, alpha) row reports zero
        data loss for single-bit upsets — the paper's protection guarantee."""
        result = run_tiny(
            mechanisms=("dbi", "dbi+awb", "dbi+awb+clb"),
            alphas=(Fraction(1, 4), Fraction(1, 2)),
        )
        assert result.rows  # one per mechanism x alpha
        loss_col = result.headers.index("data loss")
        domain_col = result.headers.index("protection domain")
        for row in result.rows:
            assert row[domain_col] == "DBI-tracked"
            assert row[loss_col] == 0
        for counts in result.raw.values():
            assert counts["protection_violations"] == 0
            assert counts["detected"] == counts["injected"]

    def test_untracked_configuration_loses_data(self):
        """Acceptance: at least one ECC-untracked configuration reports
        nonzero data loss. coverage=0 makes every dirty hit a loss, so the
        contrast cannot be washed out by a lucky covered subset."""
        result = run_tiny(
            mechanisms=("baseline",), alphas=(Fraction(0),), faults=300,
            interval=50,
        )
        loss_col = result.headers.index("data loss")
        domain_col = result.headers.index("protection domain")
        (row,) = result.rows
        assert row[domain_col].startswith("untracked")
        assert row[loss_col] > 0

    def test_tracked_vs_untracked_contrast_in_one_table(self):
        result = run_tiny(faults=300, interval=50)
        loss_col = result.headers.index("data loss")
        domain_col = result.headers.index("protection domain")
        tracked = [r for r in result.rows if r[domain_col] == "DBI-tracked"]
        untracked = [r for r in result.rows if r[domain_col] != "DBI-tracked"]
        assert tracked and untracked
        assert all(r[loss_col] == 0 for r in tracked)
        assert sum(r[loss_col] for r in untracked) > 0
        assert "lost 0 blocks" in result.notes

    def test_fault_accounting_is_consistent(self):
        result = run_tiny(faults=100)
        for counts in result.raw.values():
            assert counts["injected"] <= 100
            assert counts["single_bit"] + counts["double_bit"] == counts["injected"]
            # Single-bit campaign: every fault is detected, and each is
            # corrected, refetched, or lost.
            assert (
                counts["corrected"] + counts["refetched"] + counts["data_loss"]
                == counts["injected"]
            )

    def test_double_bit_fraction_reaches_tracked_domains(self):
        """Double-bit upsets defeat SECDED on dirty blocks — the documented
        limit of the paper's single-event-upset argument."""
        result = run_tiny(
            mechanisms=("dbi",), faults=300, interval=50,
            double_bit_fraction=1.0,
        )
        ((_, counts),) = list(result.raw.items())
        assert counts["double_bit"] == counts["injected"]
        # Data loss now tracks dirty targets instead of being zero.
        assert counts["data_loss"] == counts["dirty_targets"]
