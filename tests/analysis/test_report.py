"""Unit tests for report rendering."""

import pytest

from repro.analysis.report import format_table, to_csv


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "x"], [["a", 1], ["long-name", 2]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert all(len(line) >= len("long-name") for line in lines[2:])

    def test_floats_formatted(self):
        text = format_table(["v"], [[1.23456]])
        assert "1.235" in text

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "========"

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestToCsv:
    def test_csv_structure(self):
        csv = to_csv(["x", "y"], [[1, 2.5], ["s", 3]])
        lines = csv.splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,2.500"
        assert lines[2] == "s,3"
