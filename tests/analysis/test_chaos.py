"""Tests for the chaos layer and the sweep runner's fault tolerance.

The headline guarantee: a sweep that survives injected worker crashes,
hangs and cache corruption produces results byte-identical to a fault-free
sweep — fault tolerance repairs execution, never data.

Hang-recovery tests wait out real wall-clock timeouts and are marked
``slow`` (run with ``pytest -m slow``, as tools/ci.sh does).
"""

import dataclasses
import json
import os

import pytest

from repro.analysis.chaos import (
    CRASH_EXIT_CODE,
    ChaosConfig,
    FaultInjector,
    chaos_from_env,
    parse_chaos_spec,
)
from repro.analysis.runner import (
    RetryPolicy,
    SweepJobError,
    SweepRunner,
    job_key,
)
from tests.analysis.test_runner import tiny_job

#: Fast backoff so retry tests don't sleep for real.
FAST = dict(backoff_base=0.01, backoff_factor=1.0, backoff_max=0.02)


def bad_job():
    """A job whose simulation fails deterministically (2 cores, 1 trace)."""
    config, traces = tiny_job()
    return dataclasses.replace(config, num_cores=2), traces


class TestChaosSpec:
    def test_full_spec_round_trip(self):
        chaos = parse_chaos_spec(
            "seed=7,crash=0.25,hang=0.5,corrupt=0.125,hang_seconds=20,"
            "crash_attempts=2,hang_attempts=1"
        )
        assert chaos == ChaosConfig(
            seed=7, crash=0.25, hang=0.5, corrupt=0.125, hang_seconds=20.0,
            crash_attempts=2, hang_attempts=1,
        )

    @pytest.mark.parametrize("spec", ["", "off", "none", "0", "false", None])
    def test_disabled_specs(self, spec):
        assert parse_chaos_spec(spec) is None

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="bad chaos spec"):
            parse_chaos_spec("crash=0.5,typo=1")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            parse_chaos_spec("crash=1.5")

    def test_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "seed=3,crash=0.5")
        assert chaos_from_env() == ChaosConfig(seed=3, crash=0.5)
        monkeypatch.setenv("REPRO_CHAOS", "off")
        assert chaos_from_env() is None
        monkeypatch.delenv("REPRO_CHAOS")
        assert chaos_from_env() is None


class TestFaultInjectorDeterminism:
    def test_decisions_are_pure_functions_of_inputs(self):
        a = FaultInjector(ChaosConfig(seed=11, crash=0.5, hang=0.5, corrupt=0.5))
        b = FaultInjector(ChaosConfig(seed=11, crash=0.5, hang=0.5, corrupt=0.5))
        for key in ("k1", "k2", "k3"):
            for attempt in (1, 2, 3):
                assert a.should_crash(key, attempt) == b.should_crash(key, attempt)
                assert a.should_hang(key, attempt) == b.should_hang(key, attempt)
            assert a.should_corrupt(key) == b.should_corrupt(key)

    def test_decisions_vary_across_keys_and_seeds(self):
        chaos = ChaosConfig(seed=11, crash=0.5)
        injector = FaultInjector(chaos)
        keys = [f"key-{i}" for i in range(64)]
        decisions = [injector.should_crash(k, 1) for k in keys]
        assert any(decisions) and not all(decisions)  # ~50% either way
        other = FaultInjector(dataclasses.replace(chaos, seed=12))
        assert decisions != [other.should_crash(k, 1) for k in keys]

    def test_attempt_limits_gate_faults(self):
        injector = FaultInjector(
            ChaosConfig(crash=1.0, hang=1.0, crash_attempts=2, hang_attempts=1)
        )
        assert injector.should_crash("k", 1) and injector.should_crash("k", 2)
        assert not injector.should_crash("k", 3)
        assert injector.should_hang("k", 1)
        assert not injector.should_hang("k", 2)

    def test_crash_exit_code_is_distinctive(self):
        assert CRASH_EXIT_CODE == 13

    def test_corrupt_file_tears_the_tail(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text(json.dumps({"format": 1, "result": {"x": 1}}))
        FaultInjector(ChaosConfig(corrupt=1.0)).corrupt_file(str(path))
        with pytest.raises(ValueError):
            json.loads(path.read_text())


class TestCrashRecovery:
    def test_recovered_sweep_is_byte_identical(self, tmp_path):
        """Acceptance: fault rate >= 0.3 with --keep-going; recovered
        results match a fault-free sweep byte for byte and nothing is
        reported failed."""
        jobs = [tiny_job("baseline"), tiny_job("dbi"), tiny_job("dbi+awb")]
        with SweepRunner(workers=0, cache_dir=None) as clean:
            reference = [clean.run(c, t).to_json() for c, t in jobs]

        chaos = ChaosConfig(seed=7, crash=0.5, crash_attempts=2)
        with SweepRunner(
            workers=3, cache_dir=str(tmp_path / "cache"), chaos=chaos,
            keep_going=True,
            retry=RetryPolicy(max_attempts=5, **FAST),
        ) as runner:
            futures = [runner.submit(c, t) for c, t in jobs]
            recovered = [f.result().to_json() for f in futures]

        assert recovered == reference
        assert runner.jobs_failed == 0 and not runner.failures
        assert runner.jobs_retried > 0  # chaos actually fired
        assert runner.pool_deaths > 0

    def test_worker_crash_retries_and_succeeds(self):
        """The same job: a crash on attempt 1 retries with backoff and
        completes on attempt 2."""
        config, traces = tiny_job()
        chaos = ChaosConfig(seed=1, crash=1.0, crash_attempts=1)
        with SweepRunner(
            workers=2, cache_dir=None, chaos=chaos,
            retry=RetryPolicy(max_attempts=3, **FAST),
        ) as runner:
            future = runner.submit(config, traces)
            result = future.result()
        assert result.ipc  # completed
        assert future.attempts == 2
        assert runner.jobs_retried == 1 and runner.jobs_failed == 0

    def test_exhausted_job_fails_with_crash_kind(self, tmp_path):
        config, traces = tiny_job()
        chaos = ChaosConfig(seed=1, crash=1.0)  # every attempt dies
        with SweepRunner(
            workers=2, cache_dir=None, chaos=chaos, keep_going=True,
            retry=RetryPolicy(max_attempts=2, **FAST),
        ) as runner:
            future = runner.submit(config, traces)
            with pytest.raises(SweepJobError) as excinfo:
                future.result()
        failure = excinfo.value.failure
        assert failure.kind == "crash"
        assert failure.attempts == 2
        assert runner.jobs_failed == 1

    def test_degrades_to_inline_after_pool_death_limit(self):
        """Past max_pool_deaths the runner stops trusting process isolation;
        inline execution never applies crash chaos, so the job completes."""
        config, traces = tiny_job()
        chaos = ChaosConfig(seed=1, crash=1.0)
        with SweepRunner(
            workers=2, cache_dir=None, chaos=chaos,
            retry=RetryPolicy(max_attempts=4, max_pool_deaths=1, **FAST),
        ) as runner:
            result = runner.submit(config, traces).result()
        assert result.ipc
        assert runner.degraded_inline
        assert "degraded to inline" in runner.summary()


class TestFatalErrors:
    def test_deterministic_error_surfaces_after_one_attempt(self):
        """A deterministic simulation exception must not be retried: the
        acceptance criterion is exactly one attempt, even though the retry
        policy would allow three."""
        config, traces = bad_job()
        with SweepRunner(
            workers=2, cache_dir=None,
            retry=RetryPolicy(max_attempts=3, **FAST),
        ) as runner:
            future = runner.submit(config, traces)
            with pytest.raises(SweepJobError) as excinfo:
                future.result()
        failure = excinfo.value.failure
        assert failure.kind == "fatal"
        assert failure.attempts == 1
        assert "ValueError" in failure.error
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert runner.jobs_retried == 0

    def test_fatal_inline_matches_pool_classification(self):
        config, traces = bad_job()
        runner = SweepRunner(workers=0, cache_dir=None)
        future = runner.submit(config, traces)
        with pytest.raises(SweepJobError) as excinfo:
            future.result()
        assert excinfo.value.failure.kind == "fatal"
        assert excinfo.value.failure.attempts == 1

    def test_failed_jobs_are_not_memoized(self):
        """Satellite: a failed future must be evicted so a resubmission
        schedules fresh work instead of returning the poisoned future."""
        config, traces = bad_job()
        runner = SweepRunner(workers=0, cache_dir=None)
        first = runner.submit(config, traces)
        with pytest.raises(SweepJobError):
            first.result()
        second = runner.submit(config, traces)
        assert second is not first
        assert runner.memo_hits == 0
        assert runner.jobs_failed == 2  # both attempts failed independently
        assert "2 failed" in runner.summary()


class TestFailureManifest:
    def test_manifest_lists_exactly_the_exhausted_jobs(self, tmp_path):
        good_config, good_traces = tiny_job("baseline")
        bad_config, bad_traces = bad_job()
        with SweepRunner(
            workers=2, cache_dir=None, keep_going=True,
            retry=RetryPolicy(max_attempts=2, **FAST),
        ) as runner:
            good = runner.submit(good_config, good_traces)
            bad = runner.submit(bad_config, bad_traces)
            assert good.result().ipc
            with pytest.raises(SweepJobError):
                bad.result()
            path = runner.write_failure_manifest(
                str(tmp_path / "failures.json")
            )
        with open(path) as handle:
            manifest = json.load(handle)
        assert manifest["jobs_submitted"] == 2
        assert manifest["jobs_failed"] == 1
        (entry,) = manifest["failures"]
        assert entry["key"] == job_key(bad_config, tuple(bad_traces))
        assert entry["kind"] == "fatal"
        assert entry["attempts"] == 1
        assert "ValueError" in entry["traceback"]
        assert bad_config.mechanism in entry["label"]

    def test_empty_manifest_is_explicit(self, tmp_path):
        config, traces = tiny_job()
        runner = SweepRunner(workers=0, cache_dir=None)
        runner.run(config, traces)
        path = runner.write_failure_manifest(str(tmp_path / "failures.json"))
        with open(path) as handle:
            manifest = json.load(handle)
        assert manifest["jobs_failed"] == 0 and manifest["failures"] == []


class TestCacheCorruption:
    def test_chaos_corruption_is_quarantined_and_resimulated(self, tmp_path):
        """Corruption chaos tears cache entries after they are written; a
        later fault-free sweep must quarantine the torn file, resimulate,
        and still produce the identical result."""
        cache = str(tmp_path / "cache")
        config, traces = tiny_job()
        with SweepRunner(workers=0, cache_dir=None) as clean:
            reference = clean.run(config, traces).to_json()

        chaos = ChaosConfig(seed=1, corrupt=1.0)
        with SweepRunner(workers=0, cache_dir=cache, chaos=chaos) as writer:
            assert writer.run(config, traces).to_json() == reference

        with SweepRunner(workers=0, cache_dir=cache) as reader:
            assert reader.run(config, traces).to_json() == reference
        assert reader.cache_corrupt == 1
        assert reader.cache_hits == 0 and reader.jobs_executed == 1
        assert any(
            name.endswith(".corrupt") for name in os.listdir(cache)
        )
        assert "1 corrupt cache entries quarantined" in reader.summary()

    def test_key_mismatch_is_quarantined(self, tmp_path):
        """Satellite: an entry whose embedded key disagrees with its
        filename (e.g. a mis-copied cache) is quarantined, not trusted."""
        cache = str(tmp_path / "cache")
        config, traces = tiny_job()
        runner = SweepRunner(workers=0, cache_dir=cache)
        runner.run(config, traces)
        (entry,) = os.listdir(cache)
        path = os.path.join(cache, entry)
        with open(path) as handle:
            payload = json.load(handle)
        payload["key"] = "0" * 64
        with open(path, "w") as handle:
            json.dump(payload, handle)
        rerun = SweepRunner(workers=0, cache_dir=cache)
        rerun.run(config, traces)
        assert rerun.cache_corrupt == 1
        assert rerun.jobs_executed == 1
        assert os.path.exists(f"{path}.corrupt")


class TestShutdown:
    def test_exit_on_exception_cancels_pending_work(self):
        """Satellite: __exit__ under an exception must not block on queued
        jobs — it cancels them and returns."""
        calls = {}

        class RecordingPool:
            def shutdown(self, wait=True, cancel_futures=False):
                calls["wait"] = wait
                calls["cancel_futures"] = cancel_futures

        runner = SweepRunner(workers=4, cache_dir=None)
        runner._pool = RecordingPool()
        with pytest.raises(RuntimeError):
            with runner:
                raise RuntimeError("interrupted sweep")
        assert calls == {"wait": False, "cancel_futures": True}

    def test_clean_exit_waits_for_workers(self):
        calls = {}

        class RecordingPool:
            def shutdown(self, wait=True, cancel_futures=False):
                calls["wait"] = wait
                calls["cancel_futures"] = cancel_futures

        runner = SweepRunner(workers=4, cache_dir=None)
        runner._pool = RecordingPool()
        with runner:
            pass
        assert calls == {"wait": True, "cancel_futures": False}


class TestKeepGoingArtifacts:
    def test_partial_figure6_renders_na_cells_and_note(self, tmp_path):
        """--keep-going: exhausted jobs become n/a cells plus an explicit
        "N/M jobs failed" annotation instead of aborting the artifact."""
        from repro.analysis.experiments import run_figure6
        from tests.analysis.test_runner import TINY

        chaos = ChaosConfig(seed=1, crash=1.0)  # every attempt dies
        with SweepRunner(
            workers=2, cache_dir=None, chaos=chaos, keep_going=True,
            retry=RetryPolicy(max_attempts=2, max_pool_deaths=100, **FAST),
        ) as runner:
            out = run_figure6(
                TINY, benchmarks=("bzip2",), mechanisms=("tadip", "dbi"),
                runner=runner,
            )
            path = runner.write_failure_manifest(
                str(tmp_path / "failures.json")
            )
        text = out["fig6a"].to_text()
        assert "n/a" in text
        assert "2/2 jobs failed" in text
        assert out["fig6a"].rows[0][1] is None
        with open(path) as handle:
            manifest = json.load(handle)
        assert {f["kind"] for f in manifest["failures"]} == {"crash"}
        assert len(manifest["failures"]) == runner.jobs_failed == 2

    def test_strict_mode_still_aborts(self):
        """Without --keep-going the first exhausted job propagates."""
        from repro.analysis.experiments import run_figure6
        from tests.analysis.test_runner import TINY

        chaos = ChaosConfig(seed=1, crash=1.0)
        with SweepRunner(
            workers=2, cache_dir=None, chaos=chaos, keep_going=False,
            retry=RetryPolicy(max_attempts=2, max_pool_deaths=100, **FAST),
        ) as runner:
            with pytest.raises(SweepJobError):
                run_figure6(
                    TINY, benchmarks=("bzip2",), mechanisms=("tadip",),
                    runner=runner,
                )

    def test_none_cells_render_as_na(self):
        from repro.analysis.report import format_table

        text = format_table(["benchmark", "ipc"], [["lbm", None]])
        assert "n/a" in text


@pytest.mark.slow
class TestHangRecovery:
    """Real wall-clock timeouts: a wedged worker is killed and retried."""

    def test_hung_worker_is_killed_and_job_retried(self):
        config, traces = tiny_job()
        chaos = ChaosConfig(
            seed=1, hang=1.0, hang_attempts=1, hang_seconds=30.0
        )
        with SweepRunner(
            workers=2, cache_dir=None, chaos=chaos,
            retry=RetryPolicy(max_attempts=3, timeout=1.5, **FAST),
        ) as runner:
            future = runner.submit(config, traces)
            result = future.result()
        assert result.ipc
        assert future.attempts == 2
        assert runner.pool_deaths >= 1
        assert runner.jobs_retried >= 1

    def test_exhausted_hang_reports_hang_kind(self, tmp_path):
        config, traces = tiny_job()
        chaos = ChaosConfig(seed=1, hang=1.0, hang_seconds=30.0)
        with SweepRunner(
            workers=2, cache_dir=None, chaos=chaos, keep_going=True,
            retry=RetryPolicy(
                max_attempts=2, timeout=1.0, max_pool_deaths=10, **FAST
            ),
        ) as runner:
            future = runner.submit(config, traces)
            with pytest.raises(SweepJobError) as excinfo:
                future.result()
            path = runner.write_failure_manifest(
                str(tmp_path / "failures.json")
            )
        assert excinfo.value.failure.kind == "hang"
        assert excinfo.value.failure.attempts == 2
        with open(path) as handle:
            assert json.load(handle)["failures"][0]["kind"] == "hang"
