"""Tests for JSON serialization of results."""

import json

from repro.analysis.experiments import ExperimentResult
from repro.sim.system import run_system
from tests.sim.conftest import small_config, streaming_trace


class TestExperimentResultJson:
    def test_round_trip_fields(self):
        result = ExperimentResult(
            experiment_id="fig0", title="T", headers=["a", "b"],
            rows=[["x", 1.5]], notes="n", raw={"not": "serialized"},
        )
        data = json.loads(result.to_json())
        assert data["experiment_id"] == "fig0"
        assert data["rows"] == [["x", 1.5]]
        assert "raw" not in data


class TestSimulationResultJson:
    def test_serializes_full_run(self):
        result = run_system(small_config(), [streaming_trace(refs=150)])
        data = json.loads(result.to_json())
        assert data["mechanism"] == "baseline"
        assert data["ipc"][0] > 0
        assert "tag_lookups_pki" in data["derived"]
        assert isinstance(data["stats"], dict)
        assert data["events_processed"] == result.events_processed
