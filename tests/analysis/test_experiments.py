"""Tests for the experiment runners (tiny scale, structure-focused)."""

import dataclasses

import pytest

from repro.analysis.experiments import (
    AloneIpcCache,
    ExperimentResult,
    run_case_study,
    run_dbi_replacement_study,
    run_figure6,
    run_figure7,
    run_table6,
)
from repro.analysis.scaling import QUICK_SCALE

#: An even-smaller profile so these tests stay fast.
TINY = dataclasses.replace(
    QUICK_SCALE,
    name="tiny",
    refs_single_core=4_000,
    refs_per_core_multi=2_500,
    mixes_per_system=2,
)


class TestExperimentResult:
    def test_to_text_renders(self):
        result = ExperimentResult(
            experiment_id="x", title="T", headers=["a"], rows=[[1]],
            notes="note",
        )
        text = result.to_text()
        assert "T" in text and "note" in text


class TestFigure6:
    def test_produces_five_subfigures(self):
        results = run_figure6(TINY, benchmarks=("bzip2",),
                              mechanisms=("tadip", "dbi"))
        assert sorted(results) == ["fig6a", "fig6b", "fig6c", "fig6d", "fig6e"]

    def test_rows_cover_benchmarks_plus_gmean(self):
        results = run_figure6(TINY, benchmarks=("bzip2", "astar"),
                              mechanisms=("tadip",))
        fig6a = results["fig6a"]
        names = [row[0] for row in fig6a.rows]
        assert names == ["bzip2", "astar", "gmean"]
        # Other subfigures omit the gmean row.
        assert [row[0] for row in results["fig6b"].rows] == ["bzip2", "astar"]

    def test_values_are_numeric(self):
        results = run_figure6(TINY, benchmarks=("bzip2",), mechanisms=("tadip",))
        for result in results.values():
            for row in result.rows:
                assert all(isinstance(v, (int, float)) for v in row[1:])


class TestAloneCache:
    def test_caches_by_trace_and_shape(self):
        alone = AloneIpcCache(TINY)
        trace = TINY.benchmark_trace("bzip2", refs=2000)
        first = alone.ipc(trace, num_cores=2)
        second = alone.ipc(trace, num_cores=2)
        assert first == second
        assert len(alone._cache) == 1
        alone.ipc(trace, num_cores=4)
        assert len(alone._cache) == 2


class TestFigure7:
    def test_structure(self):
        result = run_figure7(TINY, core_counts=(2,), mechanisms=("baseline", "dbi"),
                             mixes_per_system=2)
        assert result.headers == ["system", "baseline", "dbi"]
        assert result.rows[0][0] == "2-core"
        assert all(isinstance(v, float) for v in result.rows[0][1:])
        assert (2, "baseline") in result.raw


class TestTable6:
    def test_granularity_scaling_labels(self):
        result = run_table6(TINY, benchmarks=("lbm",))
        # Scaled equivalents of 16/32/64/128 with divisor 16: {2, 4, 8}
        # (deduplicated after the floor of 2).
        assert result.headers[0] == "DBI size"
        assert len(result.rows) == 2  # two alphas


class TestStudies:
    def test_replacement_study_covers_policies(self):
        result = run_dbi_replacement_study(TINY, benchmarks=("lbm",),
                                           policies=("lrw", "max-dirty"))
        assert [row[0] for row in result.rows] == ["lrw", "max-dirty"]
        assert all(row[1] > 0 for row in result.rows)

    def test_case_study_runs(self):
        result = run_case_study(TINY, mechanisms=("baseline", "dbi"))
        assert len(result.rows) == 2
        assert result.raw["baseline"] > 0
