"""Surface assembly: deterministic Figure 6/7/8 tables with Student-t CIs."""

import json
import os
from dataclasses import dataclass, field
from typing import Optional, Tuple

import pytest

from repro.analysis.surfaces import (
    assemble_surfaces,
    write_surfaces,
)
from repro.sim.metrics import weighted_speedup


@dataclass
class FakeConfig:
    scale: str = "quick"
    mechanisms: Tuple[str, ...] = ("baseline", "dbi")
    sensitivity_benchmarks: Tuple[str, ...] = ()


@dataclass
class FakeCell:
    cell_id: str
    mechanism: str
    num_cores: int
    category: str
    workload: str
    benchmark: Optional[str] = None
    mix_name: Optional[str] = None
    backend: Optional[str] = None
    bandwidth: Optional[int] = None


def _result(mechanism, trace_names, ipcs, stats=None):
    cycles = [1000] * len(ipcs)
    instructions = [int(ipc * 1000) for ipc in ipcs]
    return {
        "mechanism": mechanism,
        "trace_names": list(trace_names),
        "ipc": list(ipcs),
        "cycles": cycles,
        "instructions": instructions,
        "total_instructions_issued": max(1, sum(instructions)),
        "stats": dict(stats or {}),
        "events_processed": 1,
    }


def _payload(cells_with_results):
    return {
        cell.cell_id: {"key": f"k-{cell.cell_id}", "result": result}
        for cell, result in cells_with_results
    }


def _bench_grid():
    """Two benchmarks x two mechanisms, plus alone/mix cells at 2 cores."""
    config = FakeConfig()
    pairs = []
    for bench, base_ipc in (("lbm", 0.5), ("mcf", 0.3)):
        for mech, boost in (("baseline", 1.0), ("dbi", 1.2)):
            cell = FakeCell(
                cell_id=f"1c/{bench}/{mech}", mechanism=mech, num_cores=1,
                category="bench", workload=bench, benchmark=bench,
            )
            stats = {
                "dram.write_row_hit_rate": 0.4 * boost,
                "dram.read_row_hit_rate": 0.6,
                "mech.tag_lookups": 900,
                "dram.dram_writes_performed": 50,
            }
            pairs.append((cell, _result(mech, [bench], [base_ipc * boost],
                                        stats)))
    for bench, alone_ipc in (("lbm", 0.6), ("mcf", 0.4)):
        cell = FakeCell(
            cell_id=f"alone/2c/{bench}", mechanism="baseline", num_cores=2,
            category="alone", workload=bench, benchmark=bench,
        )
        pairs.append((cell, _result("baseline", [bench], [alone_ipc])))
    for mech, boost in (("baseline", 1.0), ("dbi", 1.25)):
        cell = FakeCell(
            cell_id=f"2c/mix0/{mech}", mechanism=mech, num_cores=2,
            category="mix", workload="mix0", mix_name="mix0",
        )
        pairs.append(
            (cell, _result(mech, ["lbm", "mcf"], [0.45 * boost, 0.25 * boost]))
        )
    cells = [cell for cell, _ in pairs]
    return config, cells, _payload(pairs)


class TestFigure6:
    def test_values_and_summary_rows(self):
        config, cells, payload = _bench_grid()
        surfaces = assemble_surfaces(config, cells, payload)
        fig6a = surfaces["fig6a"]
        assert fig6a.headers == ["workload", "baseline", "dbi"]
        by_label = {row[0]: row[1:] for row in fig6a.rows}
        assert by_label["lbm"] == [0.5, pytest.approx(0.6)]
        assert by_label["mcf"] == [0.3, pytest.approx(0.36)]
        assert "gmean" in by_label
        ci_cell = by_label["mean ±95% CI"][0]
        assert "±" in ci_cell and "(n=2)" in ci_cell
        assert surfaces["fig6b"].rows[0][1] == pytest.approx(0.4)

    def test_missing_cells_render_as_none(self):
        config, cells, payload = _bench_grid()
        del payload["1c/mcf/dbi"]
        fig6a = assemble_surfaces(config, cells, payload)["fig6a"]
        by_label = {row[0]: row[1:] for row in fig6a.rows}
        assert by_label["mcf"][1] is None


class TestFigure7:
    def test_weighted_speedup_from_alone_cells(self):
        config, cells, payload = _bench_grid()
        fig7 = assemble_surfaces(config, cells, payload)["fig7"]
        assert fig7.headers == ["system", "baseline", "dbi"]
        row = fig7.rows[0]
        assert row[0] == "2-core"
        expected = weighted_speedup([0.45, 0.25], [0.6, 0.4])
        assert row[1].startswith(f"{expected:.4f}")
        assert "(n=1)" in row[1]

    def test_notes_when_alone_cells_absent(self):
        config, cells, payload = _bench_grid()
        cells = [c for c in cells if c.category != "alone"]
        fig7 = assemble_surfaces(config, cells, payload)["fig7"]
        assert "alone-IPC" in fig7.notes
        assert fig7.rows[0][1] is None


class TestFigure8:
    def test_normalized_s_curve(self):
        config, cells, payload = _bench_grid()
        fig8 = assemble_surfaces(config, cells, payload)["fig8"]
        assert fig8.headers == ["workload", "dbi/baseline"]
        base = weighted_speedup([0.45, 0.25], [0.6, 0.4])
        dbi = weighted_speedup([0.45 * 1.25, 0.25 * 1.25], [0.6, 0.4])
        assert fig8.rows == [["mix0", pytest.approx(dbi / base)]]
        assert "0/1 workloads degrade" in fig8.notes

    def test_skips_without_baseline(self):
        config, cells, payload = _bench_grid()
        config.mechanisms = ("dbi",)
        fig8 = assemble_surfaces(config, cells, payload)["fig8"]
        assert fig8.rows == []
        assert "baseline" in fig8.notes


class TestSensitivity:
    def test_rows_per_bandwidth_backend(self):
        config = FakeConfig(sensitivity_benchmarks=("lbm",))
        pairs = []
        for backend in ("tag", "dbi"):
            for bw in (1, 2):
                cell = FakeCell(
                    cell_id=f"sens/lbm/{backend}/bw{bw}",
                    mechanism="baseline", num_cores=1, category="sens",
                    workload="lbm", benchmark="lbm",
                    backend=backend, bandwidth=bw,
                )
                stats = {
                    "dramcache.reads": 100,
                    "dramcache.read_hits": 60 // bw,
                    "dramcache.offchip_writes": 10 * bw,
                }
                pairs.append((cell, _result("baseline", ["lbm"],
                                            [0.5 / bw], stats)))
        cells = [cell for cell, _ in pairs]
        table = assemble_surfaces(config, cells, _payload(pairs))[
            "sensitivity"
        ]
        rows = {(row[0], row[1]): row for row in table.rows}
        assert ("1/1x", "tag") in rows and ("1/2x", "dbi") in rows
        # Halved bandwidth doubles t_burst and worsens every mean.
        assert rows[("1/2x", "tag")][2] == 2 * rows[("1/1x", "tag")][2]
        assert rows[("1/2x", "tag")][4] < rows[("1/1x", "tag")][4]
        assert rows[("1/2x", "tag")][5] < rows[("1/1x", "tag")][5]

    def test_absent_without_sens_cells(self):
        config, cells, payload = _bench_grid()
        assert "sensitivity" not in assemble_surfaces(config, cells, payload)


class TestWriteSurfaces:
    def test_deterministic_files(self, tmp_path):
        config, cells, payload = _bench_grid()
        surfaces = assemble_surfaces(config, cells, payload)
        out = write_surfaces(str(tmp_path), surfaces)
        names = sorted(os.listdir(out))
        assert names == [
            "fig6a.txt", "fig6b.txt", "fig6c.txt", "fig6d.txt",
            "fig6e.txt", "fig7.txt", "fig8.txt", "surfaces.json",
        ]
        first = {n: open(os.path.join(out, n)).read() for n in names}
        write_surfaces(
            str(tmp_path), assemble_surfaces(config, cells, payload)
        )
        second = {n: open(os.path.join(out, n)).read() for n in names}
        assert first == second
        doc = json.loads(first["surfaces.json"])
        assert doc["format"] == 1
        assert set(doc["surfaces"]) == {
            "fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig7", "fig8",
        }
