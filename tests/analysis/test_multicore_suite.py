"""Tests for the shared multi-core suite runner."""

import dataclasses

from repro.analysis.experiments import run_multicore_suite
from repro.analysis.scaling import QUICK_SCALE

TINY = dataclasses.replace(
    QUICK_SCALE, name="tiny", refs_per_core_multi=2_500, mixes_per_system=2
)


class TestSuiteStructure:
    def setup_method(self):
        self.suite = run_multicore_suite(
            TINY,
            core_counts=(2,),
            mechanisms=("baseline", "dbi"),
            mixes_per_system=2,
            figure8_mechanisms=("dbi",),
        )

    def test_produces_three_artifacts(self):
        assert sorted(self.suite) == ["fig7", "fig8", "table3"]

    def test_fig7_rows(self):
        fig7 = self.suite["fig7"]
        assert fig7.headers == ["system", "baseline", "dbi"]
        assert fig7.rows[0][0] == "2-core"
        assert all(isinstance(v, float) for v in fig7.rows[0][1:])

    def test_fig8_normalized_to_baseline(self):
        fig8 = self.suite["fig8"]
        assert fig8.headers == ["workload", "dbi/baseline"]
        assert len(fig8.rows) == 2
        # S-curve is sorted ascending by the last mechanism's ratio.
        values = [row[1] for row in fig8.rows]
        assert values == sorted(values)

    def test_table3_improvement_percentages(self):
        table3 = self.suite["table3"]
        assert table3.rows[0][0] == "2-core"
        assert table3.rows[0][1] == 2  # workload count
        assert table3.rows[0][2].endswith("%")

    def test_raw_metrics_shared(self):
        raw = self.suite["fig7"].raw
        assert 2 in raw
        for mix_metrics in raw[2].values():
            assert set(mix_metrics) == {"baseline", "dbi"}
            for metrics in mix_metrics.values():
                assert set(metrics) == {
                    "weighted_speedup", "instruction_throughput",
                    "harmonic_speedup", "maximum_slowdown",
                }
