"""Edge cases at the DBI mechanism boundaries."""

from fractions import Fraction

from repro.core.config import DbiConfig

#: Fully-associative 4-entry DBI so these tests exercise *cache*-eviction
#: paths without premature DBI-entry churn.
WIDE_DBI = DbiConfig(
    cache_blocks=64, alpha=Fraction(1, 2), granularity=8, associativity=4
)


class TestWritebackDisplacesDirtyBlock:
    def test_insert_dirty_evicting_dbi_dirty_block(self, rig_factory):
        """A writeback allocation that displaces another DBI-dirty block
        must write the victim back and clear its bit before marking the
        newcomer dirty (ordering mirrors the hardware datapath)."""
        rig = rig_factory("dbi", dbi_config=WIDE_DBI)
        # Fill LLC set 0 (addrs 0, 16, 32, 48 with 16 sets / 4 ways) with
        # dirty blocks via writebacks.
        for addr in (0, 16, 32, 48):
            rig.writeback_and_run(addr)
        assert rig.llc.occupancy == 4
        # A 5th writeback to set 0 displaces the LRU victim (block 0).
        rig.writeback_and_run(64)
        assert not rig.llc.contains(0)
        assert not rig.mech.dbi.is_dirty(0)
        assert rig.mech.dbi.is_dirty(64)
        assert rig.memory_writes() == 1
        rig.mech.check_invariants()

    def test_awb_on_writeback_caused_eviction(self, rig_factory):
        rig = rig_factory("dbi+awb", dbi_config=WIDE_DBI)
        # Blocks 0 and 1 share DBI region 0; 16, 32, 48 fill set 0.
        for addr in (0, 1, 16, 32, 48):
            rig.writeback_and_run(addr)
        # Displace block 0 via another writeback; AWB must flush block 1 too.
        rig.writeback_and_run(64)
        rig.run()
        assert not rig.mech.dbi.is_dirty(1)
        assert rig.llc.contains(1)
        assert rig.memory_writes() == 2  # blocks 0 and 1
        rig.mech.check_invariants()


class TestReadDuringDbiChurn:
    def test_read_of_block_cleaned_by_dbi_eviction(self, rig_factory):
        """Blocks cleaned by a DBI-entry eviction stay readable in place."""
        rig = rig_factory("dbi")
        rig.writeback_and_run(0)  # region 0 -> DBI set 0
        rig.writeback_and_run(16)  # region 2 -> DBI set 0
        rig.writeback_and_run(32)  # region 4 -> displaces region 0
        rig.run()
        assert not rig.mech.dbi.is_dirty(0)
        assert rig.llc.contains(0)
        served = rig.read(0)
        rig.run()
        assert served == [0]
        # It was an LLC hit: no extra DRAM read.
        assert rig.memory.stats.as_dict().get("dram.dram_reads_performed", 0) == 0


class TestClbAfterCleaning:
    def test_bypass_allowed_once_block_cleaned(self, rig_factory):
        """After a block's writeback, the DBI lets predicted misses bypass:
        memory now holds current data."""
        rig = rig_factory("dbi+clb")
        rig.writeback_and_run(100)
        # Force the block's writeback via DBI churn in its set.
        assert rig.mech.dbi.is_dirty(100)
        rig.mech.dbi.mark_clean(100)
        rig.mech._send_memory_write(100)
        rig.run()
        rig.mech.predictor._predict_miss[0] = True
        served = rig.read(100)
        rig.run()
        assert served == [100]
        assert rig.stat("bypassed_lookups") == 1
