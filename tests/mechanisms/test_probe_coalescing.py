"""Tests for DAWB/VWQ per-row probe-round coalescing."""


class TestDawbCoalescing:
    def test_second_eviction_same_row_coalesces(self, rig_factory):
        rig = rig_factory("dawb")
        # Two dirty evictions from the same DRAM row while round 1's probes
        # are still queued on the port: the second round must coalesce.
        rig.mech._after_dirty_eviction(0)
        rig.mech._after_dirty_eviction(2)  # same row 0, round in flight
        flat = rig.mech.stats.as_dict()
        assert flat["mech.coalesced_rounds"] == 1
        rig.run()
        # Only one full round of probes happened (15 row-mates).
        assert rig.mech.stats.as_dict()["mech.row_probes"] == 15

    def test_distinct_rows_do_not_coalesce(self, rig_factory):
        rig = rig_factory("dawb")
        rig.mech._after_dirty_eviction(0)  # row 0
        rig.mech._after_dirty_eviction(16)  # row 1
        assert rig.mech.stats.as_dict().get("mech.coalesced_rounds", 0) == 0
        rig.run()
        assert rig.mech.stats.as_dict()["mech.row_probes"] == 30

    def test_round_bookkeeping_clears(self, rig_factory):
        rig = rig_factory("dawb")
        rig.writeback_and_run(0)
        base = 64 * 16
        for i in range(1, 5):
            rig.read_and_run(base + i * 16 * 4)
        rig.run()
        assert not rig.mech._rows_in_flight  # round completed and cleared


class TestVwqCoalescing:
    def test_rows_in_flight_cleared_after_round(self, rig_factory):
        rig = rig_factory("vwq")
        rig.writeback_and_run(0)
        rig.writeback_and_run(1)  # dirty row-mate in set 1
        base = 64 * 16
        for i in range(1, 5):
            rig.read_and_run(base + i * 16 * 4)
        rig.run()
        assert not rig.mech._rows_in_flight

    def test_all_filtered_round_not_registered(self, rig_factory):
        rig = rig_factory("vwq")
        rig.writeback_and_run(0)  # no dirty row mates at all
        base = 64 * 16
        for i in range(1, 5):
            rig.read_and_run(base + i * 16 * 4)
        rig.run()
        flat = rig.mech.stats.as_dict()
        assert flat.get("mech.row_probes", 0) == 0
        assert not rig.mech._rows_in_flight
