"""Tests for the Skip Cache mechanism."""


class TestWriteThrough:
    def test_writebacks_go_straight_to_memory(self, rig_factory):
        rig = rig_factory("skipcache")
        rig.writeback_and_run(5)
        assert rig.llc.contains(5)
        assert not rig.llc.is_dirty(5)
        assert rig.memory_writes() == 1
        rig.mech.check_invariants()

    def test_update_of_present_block_also_writes_through(self, rig_factory):
        rig = rig_factory("skipcache")
        rig.fill([5])
        rig.writeback_and_run(5)
        assert rig.memory_writes() == 1
        assert rig.llc.dirty_count == 0

    def test_evictions_are_always_silent(self, rig_factory):
        rig = rig_factory("skipcache")
        rig.writeback_and_run(0)
        writes_after_wb = rig.memory_writes()
        base = 64 * 16
        for i in range(1, 5):
            rig.read_and_run(base + i * 16 * 4)
        assert not rig.llc.contains(0)
        # Eviction added no memory write beyond the write-through one.
        assert rig.memory_writes() == writes_after_wb

    def test_write_bandwidth_amplification(self, rig_factory):
        """Repeated writebacks to one block each cost a memory write
        (coalescing in the DRAM write buffer aside) — the cost the paper
        cites for Skip Cache's write-through policy."""
        rig = rig_factory("skipcache")
        for _ in range(4):
            rig.writeback_and_run(5)
        assert rig.mech.stats.as_dict()["mech.memory_writebacks"] == 4


class TestBypass:
    def test_predicted_miss_bypasses(self, rig_factory):
        rig = rig_factory("skipcache")
        rig.mech.predictor._predict_miss[0] = True
        before = rig.stat("tag_lookups")
        served = rig.read(100)  # set 4, not a monitor set
        rig.run()
        assert served == [100]
        assert rig.stat("bypassed_lookups") == 1
        assert rig.stat("tag_lookups") == before
        assert not rig.llc.contains(100)

    def test_monitor_set_still_looked_up(self, rig_factory):
        rig = rig_factory("skipcache")
        rig.mech.predictor._predict_miss[0] = True
        rig.read_and_run(7)  # monitor set
        assert rig.stat("bypassed_lookups", 0) == 0
        assert rig.llc.contains(7)

    def test_bypass_is_safe_because_nothing_is_dirty(self, rig_factory):
        rig = rig_factory("skipcache")
        rig.writeback_and_run(100)  # write-through: memory has fresh data
        rig.mech.predictor._predict_miss[0] = True
        served = rig.read(100)
        rig.run()
        assert served == [100]
        rig.mech.check_invariants()


class TestTraining:
    def test_outcomes_recorded_for_monitor_sets(self, rig_factory):
        rig = rig_factory("skipcache", predictor_epoch=500)
        for i in range(20):
            rig.read_and_run(7 + 16 * 7 * (i + 1))  # always set 7, all misses
        rig.queue.schedule(rig.queue.now + 1000, lambda: None)
        rig.run()
        assert rig.mech.predictor.predicts_miss(0, 3, rig.queue.now)
