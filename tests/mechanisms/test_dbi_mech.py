"""Tests for the DBI mechanism (plain, +AWB, +CLB)."""

import pytest


def evict_set0_block(rig):
    """Evict the LRU block of set 0 by filling it with distant reads."""
    base = 64 * 16
    for i in range(1, 5):
        rig.read_and_run(base + i * 16 * 4)


class TestDirtyTracking:
    def test_writeback_marks_dbi_not_tag(self, rig_factory):
        rig = rig_factory("dbi")
        rig.writeback_and_run(5)
        assert rig.llc.contains(5)
        assert not rig.llc.is_dirty(5)  # tag store stays clean
        assert rig.mech.dbi.is_dirty(5)  # DBI is the authority
        rig.mech.check_invariants()

    def test_writeback_to_present_block(self, rig_factory):
        rig = rig_factory("dbi")
        rig.fill([5])
        rig.writeback_and_run(5)
        assert rig.mech.dbi.is_dirty(5)
        assert rig.llc.dirty_count == 0

    def test_dirty_eviction_consults_dbi_and_cleans(self, rig_factory):
        rig = rig_factory("dbi")
        rig.writeback_and_run(0)
        evict_set0_block(rig)
        rig.run()
        assert not rig.llc.contains(0)
        assert not rig.mech.dbi.is_dirty(0)
        assert rig.memory_writes() == 1
        rig.mech.check_invariants()

    def test_clean_eviction_writes_nothing(self, rig_factory):
        rig = rig_factory("dbi")
        rig.read_and_run(0)
        evict_set0_block(rig)
        rig.run()
        assert rig.memory_writes() == 0


class TestDbiEviction:
    """Section 2.2.4: entry displacement forces row-batched writebacks."""

    def _dirty_regions(self, rig, count):
        """Dirty one block in ``count`` distinct DBI regions of DBI set 0.

        Test DBI: granularity 8, 4 entries, 2 ways, 2 sets; regions with
        even ids map to set 0.
        """
        regions = [r for r in range(0, 40, 2)][:count]
        for region in regions:
            rig.writeback_and_run(region * 8)
        return regions

    def test_entry_eviction_writes_back_all_marked_blocks(self, rig_factory):
        rig = rig_factory("dbi")
        # Region 0: dirty blocks 0 and 3 (same 8-block DBI region).
        rig.writeback_and_run(0)
        rig.writeback_and_run(3)
        # Two more even regions displace region 0 from DBI set 0 (2 ways).
        rig.writeback_and_run(2 * 8)
        rig.writeback_and_run(4 * 8)
        rig.run()
        assert rig.stat("dbi_evictions") == 1
        assert rig.stat("dbi_eviction_writebacks") == 2
        # Blocks stay cached but are clean now.
        assert rig.llc.contains(0)
        assert rig.llc.contains(3)
        assert not rig.mech.dbi.is_dirty(0)
        assert not rig.mech.dbi.is_dirty(3)
        assert rig.memory_writes() == 2
        rig.mech.check_invariants()

    def test_dbi_eviction_costs_tag_lookups_only_for_dirty_blocks(
        self, rig_factory
    ):
        rig = rig_factory("dbi")
        rig.writeback_and_run(0)
        rig.writeback_and_run(3)
        before = rig.stat("tag_lookups")
        rig.writeback_and_run(2 * 8)
        rig.writeback_and_run(4 * 8)
        rig.run()
        # 2 demand writeback lookups + 2 background data-read lookups.
        assert rig.stat("tag_lookups") == before + 4


class TestAwb:
    """Section 3.1: only actually-dirty row-mates get lookups."""

    def test_row_mates_written_back_on_dirty_eviction(self, rig_factory):
        rig = rig_factory("dbi+awb")
        # Blocks 0, 1, 5 share DBI region 0 (granularity 8).
        for addr in (0, 1, 5):
            rig.writeback_and_run(addr)
        evict_set0_block(rig)  # evicts block 0 from the cache
        rig.run()
        assert rig.stat("awb_writebacks") == 2  # blocks 1 and 5
        assert not rig.mech.dbi.is_dirty(1)
        assert not rig.mech.dbi.is_dirty(5)
        assert rig.llc.contains(1) and rig.llc.contains(5)
        assert rig.memory_writes() == 3
        rig.mech.check_invariants()

    def test_no_wasted_lookups(self, rig_factory):
        """Contrast with DAWB: zero probes when no row-mate is dirty."""
        rig = rig_factory("dbi+awb")
        rig.writeback_and_run(0)
        before = rig.stat("tag_lookups")
        evict_set0_block(rig)
        rig.run()
        after = rig.stat("tag_lookups")
        # Only the 4 demand fills' lookups; no background probes at all.
        assert after - before == 4
        assert rig.stat("awb_writebacks", 0) == 0

    def test_awb_exact_lookup_count(self, rig_factory):
        rig = rig_factory("dbi+awb")
        for addr in (0, 1, 5):
            rig.writeback_and_run(addr)
        before = rig.stat("tag_lookups")
        evict_set0_block(rig)
        rig.run()
        # 4 demand fills + exactly 2 background lookups for dirty mates.
        assert rig.stat("tag_lookups") - before == 6


class TestClb:
    """Section 3.2: predicted misses bypass the tag lookup via the DBI."""

    def _force_prediction(self, rig, core=0):
        rig.mech.predictor._predict_miss[core] = True

    def test_bypass_skips_tag_lookup(self, rig_factory):
        rig = rig_factory("dbi+clb")
        self._force_prediction(rig)
        before = rig.stat("tag_lookups")
        served = rig.read(100)  # set 4: not a monitor set (offset 7)
        rig.run()
        assert served == [100]
        assert rig.stat("bypassed_lookups") == 1
        assert rig.stat("tag_lookups") == before  # no lookup happened
        # The fill still lands off the critical path (paper: MPKI unchanged).
        assert rig.llc.contains(100)

    def test_dirty_block_aborts_bypass(self, rig_factory):
        rig = rig_factory("dbi+clb")
        rig.writeback_and_run(100)
        self._force_prediction(rig)
        served = rig.read(100)
        rig.run()
        assert served == [100]
        assert rig.stat("clb_dirty_aborts") == 1
        assert rig.stat("bypassed_lookups", 0) == 0
        rig.mech.check_invariants()

    def test_monitor_sets_never_bypassed(self, rig_factory):
        rig = rig_factory("dbi+clb")
        self._force_prediction(rig)
        monitor_addr = 7  # set 7 is the monitor set (offset 7, modulus 16)
        rig.read_and_run(monitor_addr)
        assert rig.stat("bypassed_lookups", 0) == 0
        assert rig.llc.contains(monitor_addr)

    def test_prediction_trains_on_lookups(self, rig_factory):
        rig = rig_factory("dbi+clb", predictor_epoch=1000)
        # Miss repeatedly in the monitor set, then cross an epoch boundary.
        for i in range(30):
            rig.read_and_run(7 + 16 * (i + 1) * 7)  # distinct blocks, set 7
        # Burn cycles past the epoch.
        rig.queue.schedule(rig.queue.now + 2000, lambda: None)
        rig.run()
        assert rig.mech.predictor.predicts_miss(0, 3, rig.queue.now)

    def test_clb_requires_predictor(self, rig_factory):
        from repro.mechanisms.dbi_mech import DbiMechanism

        rig = rig_factory("dbi")
        with pytest.raises(ValueError):
            DbiMechanism(
                queue=rig.queue,
                llc=rig.llc,
                port=rig.port,
                memory=rig.memory,
                mapper=rig.mapper,
                dbi=rig.mech.dbi,
                enable_clb=True,
            )


class TestNames:
    def test_variant_names(self, rig_factory):
        assert rig_factory("dbi").mech.name == "dbi"
        assert rig_factory("dbi+awb").mech.name == "dbi+awb"
        assert rig_factory("dbi+clb").mech.name == "dbi+clb"
        assert rig_factory("dbi+awb+clb").mech.name == "dbi+awb+clb"


class TestInvariantsUnderTraffic:
    def test_mixed_traffic_keeps_invariants(self, rig_factory):
        rig = rig_factory("dbi+awb")
        import itertools

        pattern = itertools.cycle([3, 7, 11, 2])
        for i in range(200):
            addr = (i * 37) % 512
            if next(pattern) % 2:
                rig.mech.writeback(0, addr)
            else:
                rig.mech.read(0, addr, lambda a: None)
            if i % 20 == 0:
                rig.run()
                rig.mech.check_invariants()
        rig.run()
        rig.mech.check_invariants()
