"""Tests for DAWB and VWQ row-probing behaviour."""


def evict_set0_block(rig, victim_addr):
    """Evict ``victim_addr`` (in set 0) by filling its set with reads.

    Uses addresses far away (row 64+) so the probes of interest are not
    confused with the filler blocks.
    """
    base = 64 * 16
    for i in range(1, 5):
        rig.read_and_run(base + i * 16 * 4)  # set 0 (multiples of 16), distinct rows


class TestDawb:
    def test_probes_entire_row_on_dirty_eviction(self, rig_factory):
        rig = rig_factory("dawb")
        rig.writeback_and_run(0)  # dirty block, row 0 (blocks 0..15)
        lookups_before = rig.stat("tag_lookups")
        evict_set0_block(rig, 0)
        rig.run()
        # 15 row-mates probed (block 0 itself excluded).
        assert rig.stat("row_probes") == 15
        assert rig.stat("tag_lookups") >= lookups_before + 15

    def test_dirty_row_mates_written_back_and_cleaned(self, rig_factory):
        rig = rig_factory("dawb")
        # Blocks 0 and 1 share DRAM row 0 but map to different cache sets.
        rig.writeback_and_run(0)
        rig.writeback_and_run(1)
        evict_set0_block(rig, 0)
        rig.run()
        assert rig.stat("proactive_writebacks") == 1
        assert rig.llc.contains(1)  # still cached...
        assert not rig.llc.is_dirty(1)  # ...but now clean
        assert rig.memory_writes() >= 2  # eviction + proactive

    def test_wasted_probes_counted(self, rig_factory):
        rig = rig_factory("dawb")
        rig.writeback_and_run(0)  # the only dirty block in row 0
        evict_set0_block(rig, 0)
        rig.run()
        assert rig.stat("wasted_probes") == 15

    def test_no_probes_on_clean_eviction(self, rig_factory):
        rig = rig_factory("dawb")
        rig.read_and_run(0)
        evict_set0_block(rig, 0)
        rig.run()
        assert rig.stat("row_probes", 0) == 0


class TestVwq:
    def test_ssv_filters_clean_sets(self, rig_factory):
        rig = rig_factory("vwq")
        rig.writeback_and_run(0)  # only dirty block: set 0
        evict_set0_block(rig, 0)
        rig.run()
        # Row-mates 1..15 map to sets 1..15, all clean -> all filtered.
        assert rig.stat("ssv_filtered") == 15
        assert rig.stat("row_probes", 0) == 0

    def test_dirty_lru_row_mate_found_and_written(self, rig_factory):
        rig = rig_factory("vwq")
        rig.writeback_and_run(0)
        rig.writeback_and_run(1)  # dirty in set 1 (LRU: only block there)
        evict_set0_block(rig, 0)
        rig.run()
        assert rig.stat("proactive_writebacks") == 1
        assert not rig.llc.is_dirty(1)

    def test_mru_half_dirty_blocks_left_alone(self, rig_factory):
        rig = rig_factory("vwq")
        rig.writeback_and_run(0)
        # Make block 1 dirty but push it to the MRU half of set 1 by first
        # filling older blocks in that set (set 1 = addresses 1, 17, 33, 49).
        rig.read_and_run(17)
        rig.read_and_run(33)
        rig.writeback_and_run(1)  # most recently used in set 1
        evict_set0_block(rig, 0)
        rig.run()
        # SSV for set 1 is off (dirty block is MRU-half), so no probe at all,
        # or a probe that does not find it; either way no proactive writeback.
        assert rig.stat("proactive_writebacks", 0) == 0
        assert rig.llc.is_dirty(1)

    def test_probe_restricted_to_lru_ways_counts_waste(self, rig_factory):
        rig = rig_factory("vwq")
        rig.writeback_and_run(0)
        # Set 1: make an unrelated block dirty in the LRU half so the SSV
        # bit is on, but the probed row-mate (block 1) itself is clean.
        rig.writeback_and_run(17)  # dirty, set 1
        rig.read_and_run(1)  # clean, set 1 (MRU)
        evict_set0_block(rig, 0)
        rig.run()
        assert rig.stat("row_probes") >= 1
        assert rig.stat("wasted_probes") >= 1
        assert rig.llc.is_dirty(17)  # unrelated dirty block untouched
