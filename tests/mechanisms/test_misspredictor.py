"""Unit tests for the Skip Cache miss predictor."""

import pytest

from repro.mechanisms.misspredictor import MissPredictor


def make(threshold=0.95, epoch=100, cores=2, sets=64):
    return MissPredictor(
        num_cores=cores, num_sets=sets, threshold=threshold, epoch_cycles=epoch
    )


class TestEpochs:
    def test_no_prediction_in_first_epoch(self):
        predictor = make()
        assert not predictor.predicts_miss(0, 1, now=0)

    def test_high_miss_rate_flips_prediction_next_epoch(self):
        predictor = make()
        for i in range(20):
            predictor.record_outcome(0, set_idx=7, hit=False, now=i)
        assert not predictor.predicts_miss(0, 1, now=50)  # same epoch: not yet
        assert predictor.predicts_miss(0, 1, now=150)  # next epoch

    def test_low_miss_rate_keeps_lookups(self):
        predictor = make()
        for i in range(20):
            predictor.record_outcome(0, set_idx=7, hit=(i % 2 == 0), now=i)
        assert not predictor.predicts_miss(0, 1, now=150)

    def test_prediction_can_revert(self):
        predictor = make()
        for i in range(20):
            predictor.record_outcome(0, set_idx=7, hit=False, now=i)
        assert predictor.predicts_miss(0, 1, now=150)
        for i in range(20):
            predictor.record_outcome(0, set_idx=7, hit=True, now=150 + i)
        assert not predictor.predicts_miss(0, 1, now=300)

    def test_idle_epoch_keeps_previous_verdict(self):
        predictor = make()
        for i in range(20):
            predictor.record_outcome(0, set_idx=7, hit=False, now=i)
        # Several empty epochs pass; the verdict must survive.
        assert predictor.predicts_miss(0, 1, now=1000)


class TestSampling:
    def test_monitor_sets_never_predicted(self):
        predictor = make()
        for i in range(20):
            predictor.record_outcome(0, set_idx=7, hit=False, now=i)
        assert not predictor.predicts_miss(0, 7, now=150)  # 7 is the monitor set

    def test_only_monitor_sets_train(self):
        predictor = make()
        for i in range(20):
            predictor.record_outcome(0, set_idx=3, hit=False, now=i)  # not sampled
        assert not predictor.predicts_miss(0, 1, now=150)

    def test_is_monitor_set(self):
        predictor = make(sets=64)
        monitors = [s for s in range(64) if predictor.is_monitor_set(s)]
        assert monitors == [7, 39]


class TestPerCore:
    def test_cores_independent(self):
        predictor = make()
        for i in range(20):
            predictor.record_outcome(0, set_idx=7, hit=False, now=i)
            predictor.record_outcome(1, set_idx=7, hit=True, now=i)
        assert predictor.predicts_miss(0, 1, now=150)
        assert not predictor.predicts_miss(1, 1, now=150)

    def test_negative_core_ignored(self):
        predictor = make()
        predictor.record_outcome(-1, set_idx=7, hit=False, now=0)
        assert not predictor.predicts_miss(-1, 1, now=150)


class TestValidation:
    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            make(threshold=1.5)

    def test_bad_epoch_rejected(self):
        with pytest.raises(ValueError):
            make(epoch=0)
