"""Tests for the mechanism factory."""

import pytest

from repro.mechanisms.dbi_mech import DbiMechanism
from repro.mechanisms.registry import (
    MECHANISM_NAMES,
    llc_replacement_for,
    make_mechanism,
)


class TestFactory:
    def test_all_names_construct(self, rig_factory):
        for name in MECHANISM_NAMES:
            rig = rig_factory(name)
            assert rig.mech is not None

    def test_unknown_name_rejected(self, rig_factory):
        rig = rig_factory("baseline")
        with pytest.raises(ValueError):
            make_mechanism(
                "belady",
                queue=rig.queue,
                llc=rig.llc,
                port=rig.port,
                memory=rig.memory,
                mapper=rig.mapper,
            )

    def test_dbi_flags_wired_correctly(self, rig_factory):
        assert not rig_factory("dbi").mech.enable_awb
        assert rig_factory("dbi+awb").mech.enable_awb
        assert not rig_factory("dbi+awb").mech.enable_clb
        full = rig_factory("dbi+awb+clb").mech
        assert full.enable_awb and full.enable_clb
        assert full.predictor is not None

    def test_default_dbi_config_derived_from_llc(self, rig_factory):
        rig = rig_factory("dbi")
        mech = make_mechanism(
            "dbi",
            queue=rig.queue,
            llc=rig.llc,
            port=rig.port,
            memory=rig.memory,
            mapper=rig.mapper,
            dbi_granularity=8,
        )
        assert isinstance(mech, DbiMechanism)
        # alpha=1/4 of 64 blocks = 16 tracked blocks, granularity 8 -> 2 entries.
        assert mech.dbi.config.tracked_blocks == 16
        assert mech.dbi.config.num_entries == 2

    def test_replacement_lookup(self):
        assert llc_replacement_for("baseline") == "lru"
        assert llc_replacement_for("dawb") == "tadip"
        assert llc_replacement_for("dbi+awb+clb") == "tadip"
        assert llc_replacement_for("dbi", override="drrip") == "drrip"

    def test_every_paper_mechanism_listed(self):
        assert set(MECHANISM_NAMES) == {
            "baseline", "tadip", "dawb", "vwq", "skipcache",
            "dbi", "dbi+awb", "dbi+clb", "dbi+awb+clb",
        }
