"""Shared rig for mechanism tests: a small LLC + port + memory + queue."""

import dataclasses
from fractions import Fraction

import pytest

from repro.cache.cache import Cache
from repro.cache.config import CacheConfig
from repro.cache.port import TagPort
from repro.core.config import DbiConfig
from repro.dram.address import AddressMapper
from repro.dram.config import DramConfig
from repro.dram.controller import MemoryController
from repro.mechanisms.registry import make_mechanism
from repro.utils.events import EventQueue

#: Small geometry used across mechanism tests: 64-block 4-way LLC,
#: 4-bank DRAM with 16-block rows.
DRAM = DramConfig(num_banks=4, row_buffer_blocks=16, write_buffer_entries=8)
LLC = CacheConfig(
    name="llc",
    num_blocks=64,
    associativity=4,
    tag_latency=4,
    data_latency=8,
    serial_lookup=True,
    replacement="lru",
    port_occupancy=2,
)
DBI = DbiConfig(
    cache_blocks=64, alpha=Fraction(1, 2), granularity=8, associativity=2
)


class Rig:
    """Bundles the substrate one mechanism test needs."""

    def __init__(self, mechanism_name, dbi_config=DBI, llc_config=LLC,
                 predictor_epoch=10**9):
        self.queue = EventQueue()
        self.memory = MemoryController(self.queue, DRAM)
        self.mapper = self.memory.mapper
        # Keep tests deterministic with LRU; TA-DIP is tested separately.
        self.llc = Cache(dataclasses.replace(llc_config, replacement="lru"))
        self.port = TagPort(self.queue, occupancy=llc_config.port_occupancy)
        self.mech = make_mechanism(
            mechanism_name,
            queue=self.queue,
            llc=self.llc,
            port=self.port,
            memory=self.memory,
            mapper=self.mapper,
            dbi_config=dbi_config,
            predictor_epoch_cycles=predictor_epoch,
        )

    def run(self):
        self.queue.run()

    def read(self, addr, core=0):
        served = []
        self.mech.read(core, addr, served.append)
        return served

    def read_and_run(self, addr, core=0):
        served = self.read(addr, core)
        self.run()
        assert served == [addr]
        return served

    def writeback_and_run(self, addr, core=0):
        self.mech.writeback(core, addr)
        self.run()

    def fill(self, addrs):
        """Install blocks (clean) via reads."""
        for addr in addrs:
            self.read_and_run(addr)

    def stat(self, name, default=0):
        return self.mech.stats.as_dict().get(f"mech.{name}", default)

    def memory_writes(self):
        return self.memory.stats.as_dict().get("dram.dram_writes_performed", 0)


@pytest.fixture
def rig_factory():
    return Rig
