"""Tests for the shared LLC mechanism machinery (via Baseline/TA-DIP)."""


class TestReadPath:
    def test_read_miss_fetches_and_fills(self, rig_factory):
        rig = rig_factory("baseline")
        rig.read_and_run(5)
        assert rig.llc.contains(5)
        assert rig.stat("read_misses") == 1
        assert rig.stat("tag_lookups") == 1

    def test_read_hit_serves_from_cache(self, rig_factory):
        rig = rig_factory("baseline")
        rig.fill([5])
        served = rig.read(5)
        rig.run()
        assert served == [5]
        assert rig.stat("read_hits") == 1
        # Hits never touch memory.
        assert rig.memory.stats.as_dict()["dram.dram_reads_performed"] == 1

    def test_hit_latency_is_serial_tag_plus_data(self, rig_factory):
        rig = rig_factory("baseline")
        rig.fill([5])
        start = rig.queue.now
        served_at = []
        rig.mech.read(0, 5, lambda addr: served_at.append(rig.queue.now))
        rig.run()
        # port occupancy grant (immediate) + tag 4 + data 8 = 12 cycles.
        assert served_at[0] - start == rig.llc.config.hit_latency

    def test_concurrent_misses_to_same_block_merge(self, rig_factory):
        rig = rig_factory("baseline")
        served = []
        rig.mech.read(0, 9, served.append)
        rig.mech.read(0, 9, served.append)
        rig.run()
        assert served == [9, 9]
        assert rig.stat("fill_merges") == 1
        assert rig.memory.stats.as_dict()["dram.dram_reads_performed"] == 1

    def test_per_core_lookup_attribution(self, rig_factory):
        rig = rig_factory("baseline")
        rig.read_and_run(1, core=0)
        rig.read_and_run(2, core=1)
        assert rig.stat("tag_lookups_core0") == 1
        assert rig.stat("tag_lookups_core1") == 1


class TestWritebackPath:
    def test_writeback_to_absent_block_allocates_dirty(self, rig_factory):
        rig = rig_factory("baseline")
        rig.writeback_and_run(5)
        assert rig.llc.contains(5)
        assert rig.llc.is_dirty(5)
        assert rig.stat("writeback_requests") == 1

    def test_writeback_to_present_block_marks_dirty(self, rig_factory):
        rig = rig_factory("baseline")
        rig.fill([5])
        rig.writeback_and_run(5)
        assert rig.llc.is_dirty(5)
        assert rig.llc.occupancy == 1

    def test_dirty_eviction_writes_to_memory(self, rig_factory):
        rig = rig_factory("baseline")
        # 16 sets: addresses 0, 16, 32, ... all map to set 0.
        rig.writeback_and_run(0)  # dirty
        for i in range(1, 5):  # evict it with 4 more fills in set 0
            rig.read_and_run(i * 16)
        assert not rig.llc.contains(0)
        assert rig.memory_writes() == 1

    def test_clean_eviction_is_silent(self, rig_factory):
        rig = rig_factory("baseline")
        for i in range(5):
            rig.read_and_run(i * 16)
        assert rig.memory_writes() == 0
        assert rig.stat("memory_writebacks") == 0


class TestBackPressure:
    def test_writeback_overflow_retries(self, rig_factory):
        rig = rig_factory("baseline")
        # Fill the 8-entry write buffer directly, then trigger one more
        # writeback through the mechanism.
        from repro.dram.request import MemoryRequest

        for i in range(8):
            rig.memory.enqueue_write(MemoryRequest(block_addr=1000 + i * 16,
                                                   is_write=True))
        rig.mech._send_memory_write(555)
        assert len(rig.mech._writeback_overflow) == 1
        rig.run()
        assert len(rig.mech._writeback_overflow) == 0
        assert rig.mech.is_idle()
        # All 9 writes eventually performed.
        assert rig.memory_writes() == 9


class TestIdleness:
    def test_is_idle_after_quiesce(self, rig_factory):
        rig = rig_factory("baseline")
        rig.read_and_run(3)
        assert rig.mech.is_idle()

    def test_not_idle_with_pending_fill(self, rig_factory):
        rig = rig_factory("baseline")
        rig.read(3)
        assert not rig.mech.is_idle()
        rig.run()
        assert rig.mech.is_idle()


class TestTaDip:
    def test_tadip_constructs_and_serves(self, rig_factory):
        rig = rig_factory("tadip")
        rig.read_and_run(5)
        assert rig.llc.contains(5)
