"""Fork-from-warm behavior: warm-image production and mechanism swaps."""

import dataclasses

import pytest

from repro.analysis.scaling import QUICK_SCALE
from repro.checkpoint import (
    CheckpointError,
    fork_system,
    make_warm_system,
    quiesce,
    restore_system,
    snapshot_system,
    warm_config_for,
)
from repro.sim.system import System

REFS = 3_000


def quick_config(mechanism):
    return QUICK_SCALE.system_config(mechanism)


def quick_trace(benchmark="mcf"):
    return QUICK_SCALE.benchmark_trace(benchmark, refs=REFS)


@pytest.fixture(scope="module")
def warm_image_bytes():
    """One warm image shared (read-only) by every test in this module.

    The fine ``chunk_events`` keeps the warmup-boundary overshoot small
    relative to this deliberately tiny trace — the default 25k-event chunk
    would blow through most of the run before the boundary poll fires.
    """
    system = make_warm_system(
        quick_config("dbi"), [quick_trace()], chunk_events=2_000
    )
    return snapshot_system(system)


class TestWarmConfig:
    def test_mechanism_normalized_away(self):
        for mechanism in ("dbi", "dbi+awb+clb", "vwq", "tadip"):
            warm = warm_config_for(quick_config(mechanism))
            assert warm.mechanism == "tadip"  # quick scale LLC uses TA-DIP

    def test_baseline_group_warms_under_baseline(self):
        config = dataclasses.replace(
            quick_config("baseline"), llc_replacement="lru"
        )
        assert warm_config_for(config).mechanism == "baseline"

    def test_idempotent(self):
        warm = warm_config_for(quick_config("dbi+awb"))
        assert warm_config_for(warm) == warm

    def test_llc_resolution_pinned(self):
        # Every cell of a group must agree on the resolved LLC, whatever
        # mechanism-dependent resolution would otherwise do.
        group = {
            warm_config_for(quick_config(m)).resolve_llc()
            for m in ("tadip", "dbi", "dbi+awb+clb", "vwq", "dawb")
        }
        assert len(group) == 1


class TestWarmImage:
    def test_warm_image_is_paused_and_drained(self, warm_image_bytes):
        system = restore_system(warm_image_bytes)
        assert system.hierarchy.is_idle()
        assert all(core._paused for core in system.cores)
        assert system._warmed == len(system.cores)

    def test_measurement_rebased(self, warm_image_bytes):
        system = restore_system(warm_image_bytes)
        for group in system._all_stat_groups():
            for value in group.as_dict().values():
                assert not value, "warm image must carry zeroed stats"


class TestFork:
    def test_fork_cells_differentiate(self, warm_image_bytes):
        results = {}
        for mechanism in ("tadip", "dbi", "dbi+awb+clb"):
            system = restore_system(warm_image_bytes)
            fork_system(system, quick_config(mechanism))
            results[mechanism] = system.resume()
        for mechanism, result in results.items():
            assert result.ipc[0] > 0, mechanism
            assert result.total_instructions_issued > 0, mechanism
        # DBI changes tag-lookup traffic relative to the tag-dirty group.
        assert (
            results["dbi"].tag_lookups_pki != results["tadip"].tag_lookups_pki
        )

    def test_fork_is_deterministic(self, warm_image_bytes):
        outcomes = []
        for _ in range(2):
            system = restore_system(warm_image_bytes)
            fork_system(system, quick_config("dbi+awb"))
            outcomes.append(system.resume().to_dict())
        assert outcomes[0] == outcomes[1]

    def test_dbi_fork_adopts_dirty_state(self, warm_image_bytes):
        system = restore_system(warm_image_bytes)
        dirty_before = system.llc.dirty_count
        assert dirty_before > 0, "warm image should hold dirty blocks"
        fork_system(system, quick_config("dbi"))
        # In-tag dirty bits moved into the DBI (capacity overflow may have
        # evicted some entries, so <=, but the tags must be clean).
        assert system.llc.dirty_count == 0
        assert system.mechanism.dbi.live_dirty_blocks <= dirty_before
        assert system.mechanism.dbi.live_dirty_blocks > 0

    def test_skipcache_fork_drops_dirty_state(self, warm_image_bytes):
        system = restore_system(warm_image_bytes)
        fork_system(system, quick_config("skipcache"))
        assert system.llc.dirty_count == 0

    def test_fork_refuses_different_llc(self, warm_image_bytes):
        system = restore_system(warm_image_bytes)
        config = quick_config("dbi")
        resolved = config.resolve_llc()
        llc = dataclasses.replace(
            resolved, associativity=resolved.associativity * 2
        )
        with pytest.raises(CheckpointError, match="different LLC"):
            fork_system(system, dataclasses.replace(config, llc=llc))

    def test_fork_refuses_busy_system(self):
        trace = quick_trace()
        system = System(quick_config("tadip"), [trace])
        for core in system.cores:
            core.start()
        system.queue.run(max_events=5_000)
        assert not system.hierarchy.is_idle()
        with pytest.raises(CheckpointError, match="quiesce"):
            fork_system(system, quick_config("dbi"))

    def test_fork_refuses_adding_dram_cache_level(self, warm_image_bytes):
        # The warm image ran without a stacked level; a cell with one would
        # start from a cold level the group never warmed.
        system = restore_system(warm_image_bytes)
        config = dataclasses.replace(
            quick_config("dbi"),
            dram_cache=QUICK_SCALE.dram_cache_config(),
        )
        with pytest.raises(CheckpointError, match="DRAM-cache"):
            fork_system(system, config)

    def test_forked_cell_can_be_sampled_after_quiesce(self, warm_image_bytes):
        from repro.checkpoint import run_windows
        from repro.checkpoint.sampled import SampledConfig

        system = restore_system(warm_image_bytes)
        fork_system(system, quick_config("dbi+awb+clb"))
        quiesce(system)  # drain dirty-adoption writeback probes
        outcome = run_windows(
            system, SampledConfig(windows=4, window_cycles=1_500)
        )
        assert outcome.windows_run >= 2
        assert outcome.result.ipc[0] > 0


class TestForkWithDramCache:
    """The stacked level sits outside the mechanism swap (see fork.py)."""

    @pytest.fixture(scope="class")
    def warm_level_image_bytes(self):
        config = dataclasses.replace(
            quick_config("dbi"),
            dram_cache=QUICK_SCALE.dram_cache_config(dirty_backend="dbi"),
        )
        system = make_warm_system(config, [quick_trace()], chunk_events=2_000)
        return snapshot_system(system)

    def test_fork_adopts_stacked_state_unchanged(self, warm_level_image_bytes):
        system = restore_system(warm_level_image_bytes)
        contents = {b.addr for b in system.dram_cache.tags.iter_valid_blocks()}
        dirty = set(system.dram_cache.dirty_blocks())
        assert contents, "warm image should hold a populated level"
        config = dataclasses.replace(
            quick_config("tadip"), dram_cache=system.config.dram_cache
        )
        fork_system(system, config)
        # The mechanism swap rebinds its memory handle to the same level;
        # contents and the level's own dirty domain carry over untouched.
        assert system.mechanism.memory is system.dram_cache
        assert {
            b.addr for b in system.dram_cache.tags.iter_valid_blocks()
        } == contents
        assert set(system.dram_cache.dirty_blocks()) == dirty
        result = system.resume()
        assert result.ipc[0] > 0
        system.dram_cache.check_invariants()

    def test_fork_refuses_backend_change(self, warm_level_image_bytes):
        system = restore_system(warm_level_image_bytes)
        config = dataclasses.replace(
            quick_config("tadip"),
            dram_cache=QUICK_SCALE.dram_cache_config(dirty_backend="tag"),
        )
        with pytest.raises(CheckpointError, match="DRAM-cache"):
            fork_system(system, config)

    def test_fork_refuses_dropping_level(self, warm_level_image_bytes):
        system = restore_system(warm_level_image_bytes)
        with pytest.raises(CheckpointError, match="DRAM-cache"):
            fork_system(system, quick_config("tadip"))
