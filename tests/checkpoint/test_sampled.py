"""Sampled-mode correctness: config parsing, CI math, golden validation.

The validation tests run the *full* simulation of a cell, then the sampled
version, and require every reported 95% confidence interval to cover the
full-run value. The quick cell rides in tier-1; the broader sweep is
slow-marked. The cells are chosen where the fast-forward approximation is
known to be unbiased — the residual biases (DBI-eviction writebacks dropped
during fast-forward) are documented in ``docs/architecture.md`` §11.
"""

import pytest

from repro.analysis.scaling import QUICK_SCALE
from repro.checkpoint import CheckpointError, run_sampled
from repro.checkpoint.sampled import (
    MetricEstimate,
    SampledConfig,
    t_critical_95,
)
from repro.sim.system import System, run_system

HEADLINE_METRICS = (
    "ipc",
    "write_row_hit_rate",
    "read_row_hit_rate",
    "tag_lookups_pki",
    "memory_wpki",
    "llc_mpki",
)


def full_metric(result, name):
    return result.ipc[0] if name == "ipc" else getattr(result, name)


def assert_cis_cover_full_run(benchmark, mechanism):
    config = QUICK_SCALE.system_config(mechanism)
    trace = QUICK_SCALE.benchmark_trace(benchmark)
    golden = run_system(config, [trace])
    outcome = run_sampled(config, [trace], SampledConfig())
    missed = []
    for name in HEADLINE_METRICS:
        estimate = outcome.estimates.get(name)
        assert estimate is not None, f"{name}: no estimate produced"
        value = full_metric(golden, name)
        if not estimate.covers(value):
            missed.append(
                f"{benchmark}/{mechanism} {name}: full={value:.4f} not in "
                f"[{estimate.ci_low:.4f}, {estimate.ci_high:.4f}]"
            )
    assert not missed, "\n".join(missed)
    # Sampling must actually skip work: most instructions fast-forwarded.
    assert outcome.skipped_instructions > outcome.detailed_instructions


class TestConfig:
    def test_defaults(self):
        config = SampledConfig.parse("default")
        assert config == SampledConfig()
        assert SampledConfig.parse("") == SampledConfig()

    def test_parse_spec(self):
        config = SampledConfig.parse(
            "windows=4,window_cycles=1000,warmup_cycles=500,rel_ci_floor=0.1"
        )
        assert config.windows == 4
        assert config.window_cycles == 1000
        assert config.warmup_cycles == 500
        assert config.rel_ci_floor == pytest.approx(0.1)

    def test_parse_rejects_unknown_knob(self):
        with pytest.raises(ValueError, match="unknown"):
            SampledConfig.parse("bogus=3")

    def test_parse_rejects_bare_value(self):
        with pytest.raises(ValueError, match="key=value"):
            SampledConfig.parse("windows")

    def test_validation(self):
        with pytest.raises(ValueError):
            SampledConfig(windows=1)
        with pytest.raises(ValueError):
            SampledConfig(window_cycles=0)
        with pytest.raises(ValueError):
            SampledConfig(rel_ci_floor=1.5)

    def test_key_is_stable(self):
        assert SampledConfig().key() == SampledConfig().key()
        assert SampledConfig(windows=4).key() != SampledConfig().key()


class TestCiMath:
    def test_t_table_values(self):
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(7) == pytest.approx(2.365)
        assert t_critical_95(30) == pytest.approx(2.042)
        assert t_critical_95(31) == pytest.approx(1.960)
        assert t_critical_95(10_000) == pytest.approx(1.960)

    def test_t_table_rejects_zero_df(self):
        with pytest.raises(ValueError):
            t_critical_95(0)

    def test_estimate_covers(self):
        estimate = MetricEstimate(mean=1.0, ci_low=0.8, ci_high=1.2, samples=8)
        assert estimate.covers(1.0)
        assert estimate.covers(0.8)
        assert not estimate.covers(0.79)


class TestRefusals:
    def test_refuses_check_engine(self):
        from repro.checkpoint.sampled import run_windows

        config = QUICK_SCALE.system_config("dbi")
        trace = QUICK_SCALE.benchmark_trace("mcf", refs=3_000)
        system = System(config, [trace], check="full")
        with pytest.raises(CheckpointError, match="check engine"):
            run_windows(system, SampledConfig())

    def test_refuses_busy_system(self):
        from repro.checkpoint.sampled import run_windows

        config = QUICK_SCALE.system_config("dbi")
        trace = QUICK_SCALE.benchmark_trace("mcf", refs=3_000)
        system = System(config, [trace])
        for core in system.cores:
            core.start()
        system.queue.run(max_events=5_000)
        with pytest.raises(CheckpointError, match="quiesce"):
            run_windows(system, SampledConfig())


class TestValidation:
    def test_quick_cell_cis_cover_full_run(self):
        # Tier-1 canary: one deterministic cell where sampling is unbiased.
        assert_cis_cover_full_run("mcf", "dbi+awb+clb")

    @pytest.mark.slow
    @pytest.mark.parametrize("bench", ("mcf", "soplex"))
    @pytest.mark.parametrize("mechanism", ("tadip", "dbi+awb+clb"))
    def test_validation_sweep(self, bench, mechanism):
        assert_cis_cover_full_run(bench, mechanism)

    def test_sampled_result_accounting(self):
        config = QUICK_SCALE.system_config("tadip")
        trace = QUICK_SCALE.benchmark_trace("mcf")
        outcome = run_sampled(config, [trace], SampledConfig())
        assert 2 <= outcome.windows_run <= outcome.sampled.windows
        assert outcome.detailed_instructions > 0
        assert outcome.result.total_instructions_issued > 0
        for estimate in outcome.estimates.values():
            assert estimate.ci_low <= estimate.mean <= estimate.ci_high
        payload = outcome.to_dict()
        assert payload["windows_run"] == outcome.windows_run
        assert set(payload["estimates"]) == set(outcome.estimates)
