"""Snapshot/restore determinism and container hardening.

The load-bearing guarantee of the checkpoint subsystem: a system snapshotted
mid-run and restored continues *byte-identically* to the uninterrupted run —
same ``SimulationResult``, same telemetry record stream, under full runtime
invariant checking. Everything else (fork-from-warm, sampled mode) is built
on top of that guarantee.
"""

import dataclasses
import json
import pickle
import struct
import zlib

import pytest

from repro.analysis.scaling import QUICK_SCALE
from repro.checkpoint import (
    CheckpointError,
    load_snapshot,
    restore_system,
    save_snapshot,
    snapshot_system,
    verify_snapshot,
)
from repro.checkpoint.snapshot import MAGIC
from repro.sim.system import System

REFS = 3_000
SPLIT_EVENTS = 20_000

#: One mechanism per wrapper family (the six distinct mechanism classes).
FAMILIES = ("baseline", "tadip", "dawb", "vwq", "skipcache", "dbi+awb+clb")


def make_system(
    mechanism, check="off", telemetry=None, benchmark="mcf", dram_cache=None
):
    trace = QUICK_SCALE.benchmark_trace(benchmark, refs=REFS)
    config = QUICK_SCALE.system_config(mechanism)
    if dram_cache is not None:
        config = dataclasses.replace(
            config,
            dram_cache=QUICK_SCALE.dram_cache_config(dirty_backend=dram_cache),
        )
    return System(config, [trace], check=check, telemetry=telemetry)


def split_run(system, split_events=SPLIT_EVENTS):
    """Run ``system`` partway, snapshot it, and return the container bytes."""
    for core in system.cores:
        core.start()
    system.queue.run(max_events=split_events)
    return snapshot_system(system)


class TestRestoreEquivalence:
    @pytest.mark.parametrize("mechanism", FAMILIES)
    def test_restored_run_byte_identical(self, mechanism):
        system = make_system(mechanism)
        data = split_run(system)
        restored = restore_system(data)
        expected = system.resume()
        actual = restored.resume()
        assert actual.to_dict() == expected.to_dict()

    def test_restored_run_identical_under_full_check(self):
        system = make_system("dbi+awb+clb", check="full")
        data = split_run(system)
        restored = restore_system(data)
        # The check engine rides along in the snapshot: the restored run
        # re-verifies every invariant over the remainder of the run.
        assert restored.check_engine is not None
        assert restored.resume().to_dict() == system.resume().to_dict()

    def test_restored_telemetry_stream_continues_identically(self, tmp_path):
        from repro.telemetry.sampler import TelemetryConfig

        config = TelemetryConfig(epoch_cycles=2_000)
        system = make_system("dbi", telemetry=config)
        data = split_run(system)
        restored = restore_system(
            data, jsonl_path=str(tmp_path / "restored.jsonl")
        )
        expected = system.resume()
        actual = restored.resume()
        assert actual.to_dict() == expected.to_dict()
        assert [r.to_dict() for r in restored.telemetry.records] == [
            r.to_dict() for r in system.telemetry.records
        ]

    @pytest.mark.parametrize("backend", ["tag", "dbi"])
    def test_dram_cache_level_round_trips_byte_identical(self, backend):
        # The stacked level rides along in the image: tag array, dirty
        # backend state, pending fills and overflow retries all resume.
        system = make_system("baseline", benchmark="lbm", dram_cache=backend)
        data = split_run(system)
        restored = restore_system(data)
        assert restored.dram_cache is not None
        assert restored.dram_cache.dirty_blocks() == (
            system.dram_cache.dirty_blocks()
        )
        assert restored.resume().to_dict() == system.resume().to_dict()

    def test_dram_cache_level_round_trips_under_full_check(self):
        # Both dirty domains (LLC DBI + level DBI) and both writeback
        # ledgers survive the round trip and keep verifying.
        system = make_system("dbi+awb", check="full", dram_cache="dbi")
        data = split_run(system)
        restored = restore_system(data)
        assert restored.check_engine is not None
        assert restored.resume().to_dict() == system.resume().to_dict()

    def test_snapshot_leaves_system_runnable(self):
        # Snapshotting is observational: the donor system must continue
        # exactly as if no snapshot had been taken.
        undisturbed = make_system("tadip")
        for core in undisturbed.cores:
            core.start()
        undisturbed.queue.run(max_events=SPLIT_EVENTS)
        snapshotted = make_system("tadip")
        split_run(snapshotted)  # takes a snapshot at the same boundary
        assert (
            snapshotted.resume().to_dict() == undisturbed.resume().to_dict()
        )


class TestContainer:
    def test_save_verify_load_round_trip(self, tmp_path):
        system = make_system("baseline")
        data = split_run(system)
        path = tmp_path / "img.ckpt"
        path.write_bytes(data)
        header = verify_snapshot(str(path))
        assert header["mechanism"] == "baseline"
        assert header["cycle"] == system.queue.now
        restored = load_snapshot(str(path))
        assert restored.resume().to_dict() == system.resume().to_dict()

    def test_save_snapshot_writes_header(self, tmp_path):
        system = make_system("dbi")
        split_run(system)  # advance past cycle 0 first
        path = tmp_path / "img.ckpt"
        header = save_snapshot(system, str(path))
        assert header == verify_snapshot(str(path))
        assert header["events_processed"] == system.queue.events_processed

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"NOTACKPT" + b"\x00" * 64)
        with pytest.raises(CheckpointError, match="magic"):
            load_snapshot(str(path))

    def test_truncated_container_rejected(self, tmp_path):
        system = make_system("baseline")
        data = split_run(system)
        path = tmp_path / "trunc.ckpt"
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError):
            verify_snapshot(str(path))

    def test_corrupt_payload_rejected(self, tmp_path):
        system = make_system("baseline")
        data = bytearray(split_run(system))
        data[-20] ^= 0xFF  # flip one payload byte
        path = tmp_path / "corrupt.ckpt"
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="digest"):
            load_snapshot(str(path))

    def test_corrupt_header_rejected(self, tmp_path):
        system = make_system("baseline")
        data = bytearray(split_run(system))
        data[len(MAGIC) + 4] ^= 0xFF  # first header byte: JSON no longer parses
        with pytest.raises(CheckpointError):
            restore_system(bytes(data))

    def test_newer_format_rejected(self):
        header = json.dumps({"format": 99}).encode()
        data = MAGIC + struct.pack("<I", len(header)) + header
        with pytest.raises(CheckpointError, match="newer"):
            restore_system(data)

    def test_errors_are_value_errors(self):
        # Sweep-cache-style quarantine handling catches ValueError.
        assert issubclass(CheckpointError, ValueError)


class TestRestrictedUnpickle:
    def _container(self, payload_pickle: bytes) -> bytes:
        compressed = zlib.compress(payload_pickle)
        import hashlib

        header = json.dumps(
            {
                "format": 1,
                "payload_sha256": hashlib.sha256(compressed).hexdigest(),
                "payload_bytes": len(compressed),
            }
        ).encode()
        return MAGIC + struct.pack("<I", len(header)) + header + compressed

    def test_forbidden_global_rejected(self):
        # A container whose framing and digest are pristine must still be
        # refused if its pickle references globals outside the simulator
        # and the stdlib allowlist.
        import os

        malicious = self._container(pickle.dumps(os.getcwd))
        with pytest.raises(CheckpointError, match="forbidden|corrupt"):
            restore_system(malicious)

    def test_payload_without_system_rejected(self):
        empty = self._container(pickle.dumps({"format": 1}))
        with pytest.raises(CheckpointError, match="no system"):
            restore_system(empty)
