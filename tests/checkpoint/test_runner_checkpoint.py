"""SweepRunner integration: fork-from-warm caching, keys, quarantine."""

import os

import pytest

from repro.analysis.runner import SweepRunner, job_key
from repro.analysis.scaling import QUICK_SCALE
from repro.checkpoint.sampled import SampledConfig

REFS = 3_000


def quick_config(mechanism):
    return QUICK_SCALE.system_config(mechanism)


@pytest.fixture()
def trace():
    return QUICK_SCALE.benchmark_trace("mcf", refs=REFS)


def make_runner(tmp_path, **kwargs):
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    kwargs.setdefault("progress", None)
    return SweepRunner(**kwargs)


class TestJobKey:
    def test_fork_and_sampled_get_distinct_keys(self, trace):
        config = quick_config("dbi")
        cold = job_key(config, [trace])
        forked = job_key(config, [trace], fork="tadip")
        sampled = job_key(config, [trace], sampled=SampledConfig().key())
        both = job_key(
            config, [trace], fork="tadip", sampled=SampledConfig().key()
        )
        assert len({cold, forked, sampled, both}) == 4

    def test_sampled_key_tracks_parameters(self, trace):
        config = quick_config("dbi")
        default = job_key(config, [trace], sampled=SampledConfig().key())
        tuned = job_key(
            config, [trace], sampled=SampledConfig(windows=4).key()
        )
        assert default != tuned


class TestConstruction:
    def test_checkpoint_dir_refuses_check(self, tmp_path):
        with pytest.raises(ValueError, match="check"):
            make_runner(
                tmp_path, checkpoint_dir=str(tmp_path / "ckpt"), check="full"
            )

    def test_checkpoint_dir_refuses_telemetry(self, tmp_path):
        from repro.telemetry.sampler import TelemetryConfig

        with pytest.raises(ValueError, match="telemetry"):
            make_runner(
                tmp_path,
                checkpoint_dir=str(tmp_path / "ckpt"),
                telemetry=TelemetryConfig(epoch_cycles=1000),
            )

    def test_sampled_refuses_check(self, tmp_path):
        with pytest.raises(ValueError, match="check"):
            make_runner(tmp_path, sampled=SampledConfig(), check="cheap")

    def test_sampled_refuses_max_events(self, tmp_path, trace):
        runner = make_runner(tmp_path, sampled=SampledConfig())
        with pytest.raises(ValueError, match="max_events"):
            runner.submit(quick_config("dbi"), [trace], max_events=1_000)


class TestForkSweep:
    def test_one_warm_image_serves_the_group(self, tmp_path, trace):
        ckpt = str(tmp_path / "ckpt")
        with make_runner(tmp_path, checkpoint_dir=ckpt) as runner:
            results = {
                mech: runner.run(quick_config(mech), [trace])
                for mech in ("tadip", "dbi", "dbi+awb+clb")
            }
        images = [f for f in os.listdir(ckpt) if f.endswith(".ckpt")]
        assert len(images) == 1, "one group => one warm image"
        assert runner.warm_images_built == 1
        for result in results.values():
            assert result.total_instructions_issued > 0
        assert (
            results["dbi"].tag_lookups_pki != results["tadip"].tag_lookups_pki
        )
        assert "warm image" in runner.summary()

    def test_forked_results_cached_and_reused(self, tmp_path, trace):
        ckpt = str(tmp_path / "ckpt")
        config = quick_config("dbi")
        with make_runner(tmp_path, checkpoint_dir=ckpt) as first:
            original = first.run(config, [trace])
        assert first.jobs_executed == 1
        with make_runner(tmp_path, checkpoint_dir=ckpt) as second:
            replay = second.run(config, [trace])
        assert second.cache_hits == 1
        assert second.jobs_executed == 0
        assert replay.to_dict() == original.to_dict()

    def test_fork_cache_never_collides_with_cold_cache(self, tmp_path, trace):
        config = quick_config("dbi")
        with make_runner(tmp_path) as cold:
            cold.run(config, [trace])
        with make_runner(
            tmp_path, checkpoint_dir=str(tmp_path / "ckpt")
        ) as forked:
            forked.run(config, [trace])
        # Both executed: the fork entry is keyed apart from the cold one.
        assert cold.jobs_executed == 1
        assert forked.jobs_executed == 1
        assert forked.cache_hits == 0

    def test_corrupt_warm_image_quarantined_and_rebuilt(self, tmp_path, trace):
        ckpt = str(tmp_path / "ckpt")
        config = quick_config("tadip")
        with make_runner(tmp_path, checkpoint_dir=ckpt) as first:
            expected = first.run(config, [trace])
        (image,) = [f for f in os.listdir(ckpt) if f.endswith(".ckpt")]
        path = os.path.join(ckpt, image)
        blob = bytearray(open(path, "rb").read())
        blob[-10] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with make_runner(
            tmp_path,
            checkpoint_dir=ckpt,
            cache_dir=str(tmp_path / "cache2"),
        ) as second:
            replay = second.run(config, [trace])
        assert second.checkpoints_quarantined == 1
        assert second.warm_images_built == 1
        assert os.path.exists(f"{path}.corrupt")
        assert os.path.exists(path), "image must be rebuilt after quarantine"
        assert replay.to_dict() == expected.to_dict()


class TestSampledSweep:
    def test_sampled_jobs_return_synthesized_results(self, tmp_path, trace):
        sampled = SampledConfig(windows=4, window_cycles=1_000, warmup_cycles=500)
        with make_runner(tmp_path, sampled=sampled) as runner:
            result = runner.run(quick_config("tadip"), [trace])
        assert result.total_instructions_issued > 0
        assert result.ipc[0] > 0

    def test_fork_plus_sampled(self, tmp_path, trace):
        sampled = SampledConfig(windows=4, window_cycles=1_000, warmup_cycles=500)
        with make_runner(
            tmp_path,
            checkpoint_dir=str(tmp_path / "ckpt"),
            sampled=sampled,
        ) as runner:
            result = runner.run(quick_config("dbi+awb+clb"), [trace])
        assert result.ipc[0] > 0
        assert runner.warm_images_built == 1
