"""Within-run sharding: segment runs, stitching, and runner integration."""

import pytest

from repro.analysis.runner import SweepRunner, job_key
from repro.analysis.scaling import SCALES
from repro.checkpoint.shard import (
    ShardSpec,
    run_shard,
    shard_estimates,
    stitch_shards,
)
from repro.sim.system import SimulationResult, System

QUICK = SCALES["quick"]


def _config(mechanism="dbi", refs=3000, **kwargs):
    return QUICK.system_config(mechanism, **kwargs)


def _trace(bench="lbm", refs=3000):
    return QUICK.benchmark_trace(bench, refs=refs)


class TestShardSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardSpec(index=0, count=1)
        with pytest.raises(ValueError):
            ShardSpec(index=4, count=4)
        with pytest.raises(ValueError):
            ShardSpec(index=-1, count=2)

    def test_key_and_roundtrip(self):
        spec = ShardSpec(index=1, count=4)
        assert spec.key() == "1/4"
        assert ShardSpec.from_dict(spec.to_dict()) == spec


class TestRunShard:
    def test_segments_cover_most_of_the_run(self):
        config, trace = _config(), _trace()
        full = System(config, [trace]).run()
        shards = [
            run_shard(config, [trace], ShardSpec(i, 4)) for i in range(4)
        ]
        covered = sum(sum(s.instructions) for s in shards)
        assert covered >= 0.9 * sum(full.instructions)

    def test_deterministic(self):
        config, trace = _config(), _trace()
        a = run_shard(config, [trace], ShardSpec(1, 3))
        b = run_shard(config, [trace], ShardSpec(1, 3))
        assert a.to_dict() == b.to_dict()



class TestStitchShards:
    def _shard(self, mechanism="dbi", stats=None, instructions=(100,),
               cycles=(50,)):
        return SimulationResult(
            mechanism=mechanism,
            trace_names=["lbm"],
            ipc=[i / c for i, c in zip(instructions, cycles)],
            cycles=list(cycles),
            instructions=list(instructions),
            total_instructions_issued=max(1, sum(instructions)),
            stats=dict(stats or {}),
            events_processed=10,
        )

    def test_counters_sum_and_ipc_recomputed(self):
        a = self._shard(stats={"dram.reads": 5}, instructions=(100,),
                        cycles=(50,))
        b = self._shard(stats={"dram.reads": 7}, instructions=(60,),
                        cycles=(30,))
        merged = stitch_shards([a, b])
        assert merged.stats["dram.reads"] == 12
        assert merged.instructions == [160]
        assert merged.cycles == [80]
        assert merged.ipc == [2.0]

    def test_rates_recomputed_from_components(self):
        a = self._shard(stats={"dram.write_row_hit_rate": 0.5,
                               "dram.write_row_hit_rate.hits": 1,
                               "dram.write_row_hit_rate.total": 2})
        b = self._shard(stats={"dram.write_row_hit_rate": 1.0,
                               "dram.write_row_hit_rate.hits": 6,
                               "dram.write_row_hit_rate.total": 6})
        merged = stitch_shards([a, b])
        assert merged.stats["dram.write_row_hit_rate"] == pytest.approx(7 / 8)

    def test_dist_means_weighted_by_count(self):
        a = self._shard(stats={"dram.batch.mean": 2.0,
                               "dram.batch.count": 1})
        b = self._shard(stats={"dram.batch.mean": 5.0,
                               "dram.batch.count": 3})
        merged = stitch_shards([a, b])
        assert merged.stats["dram.batch.mean"] == pytest.approx(4.25)
        assert merged.stats["dram.batch.count"] == 4

    def test_refuses_mismatched_shards(self):
        with pytest.raises(ValueError):
            stitch_shards([])
        with pytest.raises(ValueError):
            stitch_shards([self._shard("dbi"), self._shard("baseline")])

    def test_stitched_close_to_full_run(self):
        config, trace = _config(), _trace()
        full = System(config, [trace]).run()
        stitched = stitch_shards(
            [run_shard(config, [trace], ShardSpec(i, 4)) for i in range(4)]
        )
        assert stitched.ipc[0] == pytest.approx(full.ipc[0], rel=0.15)

    def test_estimates_cover_metrics(self):
        config, trace = _config(), _trace()
        shards = [
            run_shard(config, [trace], ShardSpec(i, 3)) for i in range(3)
        ]
        estimates = shard_estimates(shards)
        assert "ipc" in estimates
        est = estimates["ipc"]
        assert est.samples == 3
        assert est.ci_low <= est.mean <= est.ci_high


class TestRunnerSharding:
    def test_submit_sharded_matches_direct_stitch(self, tmp_path):
        config, trace = _config(), _trace()
        runner = SweepRunner(workers=0, cache_dir=str(tmp_path / "cache"))
        future = runner.submit_sharded(config, [trace], 3)
        direct = stitch_shards(
            [run_shard(config, [trace], ShardSpec(i, 3)) for i in range(3)]
        )
        assert future.result().to_dict() == direct.to_dict()
        assert future.job.key.startswith("stitched:")
        assert "+stitched3" in future.job.label

    def test_resume_answers_from_cache(self, tmp_path):
        config, trace = _config(), _trace()
        cache = str(tmp_path / "cache")
        first = SweepRunner(workers=0, cache_dir=cache)
        reference = first.submit_sharded(config, [trace], 3).result()
        second = SweepRunner(workers=0, cache_dir=cache)
        resumed = second.submit_sharded(config, [trace], 3).result()
        assert resumed.to_dict() == reference.to_dict()
        assert second.cache_hits == 3

    def test_shard_key_distinct_from_whole_run(self):
        config, trace = _config(), _trace()
        whole = job_key(config, [trace])
        sharded = job_key(config, [trace], shard="0/2")
        other = job_key(config, [trace], shard="1/2")
        assert len({whole, sharded, other}) == 3

    def test_refuses_unshardable_runners(self):
        config, trace = _config(), _trace()
        checked = SweepRunner(workers=0, cache_dir=None, check="full")
        with pytest.raises(ValueError):
            checked.submit(config, [trace], shard=ShardSpec(0, 2))
        with pytest.raises(ValueError):
            SweepRunner(workers=0, cache_dir=None).submit(
                config, [trace], max_events=100, shard=ShardSpec(0, 2)
            )
