"""End-to-end smoke coverage of every ``python -m repro`` subcommand.

Each test drives ``main(argv)`` exactly as a shell would, on inputs small
enough for tier-1, and asserts exit code 0 plus a non-empty artifact
(stdout report, JSONL file, sweep cache entry). Flag-level behavior has
dedicated suites (``tests/integration/test_cli.py``, ``tests/telemetry/``);
this file guards the one property those can miss: *every* command still
wires end to end.
"""

import json
import os

from repro.__main__ import main


class TestList:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "benchmarks" in out and "mechanisms" in out and "scales" in out


class TestRun:
    def test_run(self, capsys):
        assert main(["run", "lbm", "baseline", "--refs", "2000"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "events processed" in out

    def test_run_with_telemetry_artifact(self, capsys, tmp_path):
        jsonl = str(tmp_path / "run.jsonl")
        code = main([
            "run", "lbm", "dbi+awb", "--refs", "2500",
            "--telemetry", jsonl, "--epoch-cycles", "2000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "epochs sampled" in out
        assert "measured warmup" in out
        assert os.path.getsize(jsonl) > 0
        with open(jsonl) as handle:
            header = json.loads(handle.readline())
        assert header["kind"] == "header"


class TestExperiment:
    def test_experiment_renders_and_caches(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main([
            "experiment", "fig6", "--benchmarks", "bzip2",
            "--workers", "0", "--quiet",
        ])
        assert code == 0
        assert "Figure 6" in capsys.readouterr().out
        cache = os.path.join("results", "sweep_cache")
        assert any(name.endswith(".json") for name in os.listdir(cache))

    def test_experiment_with_telemetry_artifacts(self, capsys, tmp_path,
                                                 monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main([
            "experiment", "fig6", "--benchmarks", "bzip2",
            "--workers", "0", "--quiet", "--telemetry",
            "--epoch-cycles", "2000",
        ])
        assert code == 0
        cache = os.path.join("results", "sweep_cache")
        artifacts = [
            name for name in os.listdir(cache)
            if name.endswith(".telemetry.jsonl")
        ]
        assert artifacts  # one per simulated job, next to the cached result
        with open(os.path.join(cache, artifacts[0])) as handle:
            assert json.loads(handle.readline())["kind"] == "header"


class TestProfile:
    def test_profile_json(self, capsys):
        assert main(["profile", "lbm", "baseline", "--refs", "2000",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events_processed"] > 0


class TestReliability:
    def test_reliability(self, capsys):
        code = main([
            "reliability", "--refs", "2500", "--mechanisms", "dbi",
            "--alphas", "1/4", "--faults", "20", "--interval", "200",
        ])
        assert code == 0
        assert "data loss" in capsys.readouterr().out


class TestCheckDiff:
    def test_check_diff(self, capsys):
        code = main([
            "check-diff", "--refs", "1500",
            "--benchmarks", "lbm", "--mechanisms", "baseline,dbi",
        ])
        assert code == 0
        assert "OK" in capsys.readouterr().out


class TestDramCache:
    def test_run_with_level(self, capsys):
        code = main([
            "run", "lbm", "baseline", "--refs", "2000",
            "--dram-cache", "dbi",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dramcache backend  dbi" in out
        assert "dramcache off-chip writes" in out

    def test_run_with_level_under_full_check(self, capsys):
        code = main([
            "run", "mcf", "dbi+awb", "--refs", "2000",
            "--dram-cache", "tag", "--check", "full",
        ])
        assert code == 0
        assert "IPC" in capsys.readouterr().out

    def test_check_diff_with_level(self, capsys):
        code = main([
            "check-diff", "--refs", "1000", "--benchmarks", "lbm",
            "--dram-cache", "tag",
        ])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_check_diff_with_level_and_background_writebacks(self, capsys):
        """Formerly rejected; oracle v2's drain replay validates it."""
        code = main([
            "check-diff", "--refs", "800", "--dram-cache", "dbi",
            "--mechanisms", "dbi+awb",
        ])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_dramcache_experiment_command(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main([
            "dramcache", "--benchmarks", "lbm", "--workers", "0", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dirty-tracking trade-off" in out
        assert "dbi wb row-hit" in out


class TestConformance:
    def test_quick_campaign_writes_coverage_map(self, capsys, tmp_path):
        out_dir = str(tmp_path / "conf")
        code = main([
            "conformance", "--trials", "5", "--seed", "0x5EED",
            "--out", out_dir,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "conformance campaign: 5 trials" in out
        assert "findings: none" in out
        with open(os.path.join(out_dir, "coverage.json")) as handle:
            coverage = json.load(handle)
        assert any(key.startswith("invariant:") for key in coverage)
        assert any(key.startswith("writeback-cause:") for key in coverage)

    def test_same_seed_same_coverage_bytes(self, capsys, tmp_path):
        payloads = []
        for leg in ("a", "b"):
            out_dir = str(tmp_path / leg)
            assert main([
                "conformance", "--trials", "4", "--out", out_dir,
            ]) == 0
            with open(os.path.join(out_dir, "coverage.json"), "rb") as handle:
                payloads.append(handle.read())
        capsys.readouterr()
        assert payloads[0] == payloads[1]


class TestTimeline:
    def test_timeline_runs_a_simulation(self, capsys):
        code = main([
            "timeline", "lbm", "dbi+awb", "--refs", "2500",
            "--epoch-cycles", "2000", "--stat", "mech.dbi_occupancy",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "epochs over" in out
        assert "mech.dbi_occupancy" in out
        assert "epoch" in out  # table header

    def test_timeline_renders_saved_stream(self, capsys, tmp_path):
        jsonl = str(tmp_path / "t.jsonl")
        assert main(["run", "mcf", "baseline", "--refs", "2000",
                     "--telemetry", jsonl]) == 0
        capsys.readouterr()
        assert main(["timeline", "--input", jsonl]) == 0
        out = capsys.readouterr().out
        assert f"telemetry from {jsonl}" in out
        assert "ipc" in out

    def test_timeline_without_inputs_is_an_error(self, capsys):
        assert main(["timeline"]) == 2
        assert "needs either" in capsys.readouterr().err


class TestIngest:
    FIXTURE = os.path.join(
        os.path.dirname(__file__), "..", "sim", "fixtures",
        "gem5_sample.trace",
    )

    def test_ingest_then_list(self, capsys, tmp_path):
        registry = str(tmp_path / "traces")
        code = main(["ingest", self.FIXTURE, "--registry", registry,
                     "--name", "ext"])
        assert code == 0
        out = capsys.readouterr().out
        assert "registered ext" in out and "sha256" in out
        assert main(["ingest", "--registry", registry, "--list"]) == 0
        out = capsys.readouterr().out
        assert "ext" in out and "gem5" in out

    def test_ingest_rejects_malformed_source(self, capsys, tmp_path):
        bad = tmp_path / "bad.trace"
        bad.write_text("1000 r 0\n500 r 0\n")
        code = main(["ingest", str(bad), "--registry",
                     str(tmp_path / "traces")])
        assert code == 2
        assert "ingest failed" in capsys.readouterr().err


class TestCampaignTiers:
    def test_plan_tier_quick(self, capsys, tmp_path):
        code = main(["campaign", "plan", "--tier", "quick",
                     "--dir", str(tmp_path / "c")])
        assert code == 0
        out = capsys.readouterr().out
        assert "quick tier" in out
        # Full-width quick tier spans every cell kind.
        for kind in ("bench", "mix", "alone", "sens"):
            assert f" {kind} " in out

    def test_plan_with_ingested_trace(self, capsys, tmp_path):
        registry = str(tmp_path / "traces")
        assert main(["ingest", TestIngest.FIXTURE, "--registry", registry,
                     "--name", "ext"]) == 0
        capsys.readouterr()
        code = main([
            "campaign", "plan", "--dir", str(tmp_path / "c"),
            "--benchmarks", "lbm", "--mechanisms", "baseline",
            "--ingest", "ext", "--ingest-dir", registry,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert " trace " in out and "ext" in out
