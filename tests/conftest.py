"""Repo-wide pytest configuration."""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden result fixtures under "
             "tests/integration/golden/ instead of comparing against them",
    )
