"""Unit tests for the SPEC-like benchmark profiles."""

import pytest

from repro.workloads.spec import (
    SPEC_PROFILES,
    generate_trace,
    profile_names,
    spec_trace,
)


class TestProfileCatalogue:
    def test_figure6_benchmarks_present_in_order(self):
        assert profile_names() == [
            "mcf", "lbm", "GemsFDTD", "soplex", "omnetpp", "cactusADM",
            "stream", "leslie3d", "milc", "sphinx3", "libquantum",
            "bzip2", "astar", "bwaves",
        ]

    def test_intensity_labels_valid(self):
        for profile in SPEC_PROFILES.values():
            assert profile.read_intensity in ("low", "medium", "high")
            assert profile.write_intensity in ("low", "medium", "high")

    def test_write_heavy_benchmarks_marked(self):
        for name in ("lbm", "GemsFDTD", "cactusADM", "stream"):
            assert SPEC_PROFILES[name].write_intensity == "high"

    def test_cache_friendly_benchmarks_marked_low(self):
        for name in ("bzip2", "astar", "bwaves"):
            assert SPEC_PROFILES[name].read_intensity == "low"


class TestGeneration:
    def test_deterministic(self):
        a = spec_trace("mcf", 500, seed=1)
        b = spec_trace("mcf", 500, seed=1)
        assert a.records == b.records

    def test_seeds_differ(self):
        a = spec_trace("mcf", 500, seed=1)
        b = spec_trace("mcf", 500, seed=2)
        assert a.records != b.records

    def test_benchmarks_differ(self):
        a = spec_trace("mcf", 500)
        b = spec_trace("lbm", 500)
        assert a.records != b.records

    def test_write_fraction_approximates_profile(self):
        trace = spec_trace("lbm", 5000)
        assert abs(trace.write_fraction - 0.45) < 0.03

    def test_footprint_bounded(self):
        profile = SPEC_PROFILES["bzip2"]
        trace = spec_trace("bzip2", 5000)
        assert all(
            0 <= addr < profile.footprint_blocks for _g, _w, addr in trace
        )

    def test_base_addr_offsets_all_addresses(self):
        base = 1 << 20
        trace = spec_trace("milc", 500, base_addr=base)
        assert all(addr >= base for _g, _w, addr in trace)

    def test_mean_gap_approximation(self):
        trace = spec_trace("bwaves", 20000)
        mean_gap = sum(g for g, _w, _a in trace) / len(trace)
        expected = SPEC_PROFILES["bwaves"].mean_gap
        assert abs(mean_gap - expected) < expected * 0.1

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            spec_trace("gcc", 100)

    def test_zero_refs_rejected(self):
        with pytest.raises(ValueError):
            spec_trace("mcf", 0)


class TestRegimes:
    """The profiles must land in Figure 6's qualitative regimes."""

    def test_streaming_benchmarks_have_spatial_locality(self):
        trace = spec_trace("lbm", 2000)
        rows = [addr // 128 for _g, _w, addr in trace]
        # Consecutive references mostly stay within a DRAM row.
        same_row = sum(1 for a, b in zip(rows, rows[1:]) if a == b)
        assert same_row / len(rows) > 0.9

    def test_pointer_benchmarks_scatter_across_rows(self):
        # mcf keeps page-level bursts but must visit many distinct rows.
        trace = spec_trace("mcf", 2000)
        rows = {addr // 128 for _g, _w, addr in trace}
        assert len(rows) > 200

    def test_cache_friendly_benchmark_small_hot_set(self):
        profile = SPEC_PROFILES["bzip2"]
        trace = spec_trace("bzip2", 10000)
        # The hot region (15% of the footprint) absorbs most references.
        hot_blocks = int(profile.footprint_blocks * 0.15)
        in_hot = sum(1 for _g, _w, addr in trace if addr < hot_blocks)
        assert in_hot / len(trace) > 0.8

    def test_memory_intense_vs_compute_dense_gaps(self):
        assert SPEC_PROFILES["mcf"].mean_gap < SPEC_PROFILES["bwaves"].mean_gap
