"""Unit tests for address-pattern primitives."""

import pytest

from repro.utils.rng import DeterministicRng
from repro.workloads.synthetic import (
    CyclicPattern,
    HotColdPattern,
    RandomPattern,
    RegionBurstPattern,
    StreamPattern,
    make_pattern,
)


def rng():
    return DeterministicRng(42)


class TestStream:
    def test_sequential_and_wrapping(self):
        pattern = StreamPattern(rng(), footprint=4)
        assert [pattern.next_address() for _ in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_stride(self):
        pattern = StreamPattern(rng(), footprint=8, stride=2)
        assert [pattern.next_address() for _ in range(5)] == [0, 2, 4, 6, 0]

    def test_invalid_stride_rejected(self):
        with pytest.raises(ValueError):
            StreamPattern(rng(), footprint=8, stride=0)


class TestCyclic:
    def test_exact_cycle(self):
        pattern = CyclicPattern(rng(), footprint=3)
        first = [pattern.next_address() for _ in range(3)]
        second = [pattern.next_address() for _ in range(3)]
        assert first == second == [0, 1, 2]


class TestRandom:
    def test_addresses_in_footprint(self):
        pattern = RandomPattern(rng(), footprint=100)
        for _ in range(1000):
            assert 0 <= pattern.next_address() < 100

    def test_covers_footprint(self):
        pattern = RandomPattern(rng(), footprint=8)
        seen = {pattern.next_address() for _ in range(500)}
        assert seen == set(range(8))


class TestHotCold:
    def test_hot_set_dominates(self):
        pattern = HotColdPattern(
            rng(), footprint=1000, hot_fraction=0.1, hot_probability=0.9
        )
        addresses = [pattern.next_address() for _ in range(5000)]
        hot_hits = sum(1 for a in addresses if a < 100)
        assert hot_hits > 4000  # ~90% plus cold references landing low

    def test_all_in_footprint(self):
        pattern = HotColdPattern(rng(), footprint=50)
        for _ in range(500):
            assert 0 <= pattern.next_address() < 50

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            HotColdPattern(rng(), footprint=10, hot_fraction=1.5)


class TestRegionBurst:
    def test_burst_stays_in_one_region(self):
        pattern = RegionBurstPattern(
            rng(), footprint=1024, region_blocks=64, burst_length=16
        )
        burst = [pattern.next_address() for _ in range(16)]
        regions = {addr // 64 for addr in burst}
        assert len(regions) == 1

    def test_regions_change_between_bursts(self):
        pattern = RegionBurstPattern(
            rng(), footprint=65536, region_blocks=64, burst_length=8
        )
        regions = set()
        for _ in range(50):
            regions.add(pattern.next_address() // 64)
        assert len(regions) > 3

    def test_all_in_footprint(self):
        pattern = RegionBurstPattern(rng(), footprint=100, region_blocks=64)
        for _ in range(500):
            assert 0 <= pattern.next_address() < 100


class TestFactory:
    def test_all_kinds(self):
        for kind, cls in [
            ("stream", StreamPattern),
            ("cyclic", CyclicPattern),
            ("random", RandomPattern),
            ("hotcold", HotColdPattern),
            ("region", RegionBurstPattern),
        ]:
            assert isinstance(make_pattern(kind, rng(), 64), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_pattern("fractal", rng(), 64)
