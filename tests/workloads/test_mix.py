"""Unit tests for multi-programmed mix construction."""

import pytest

from repro.workloads.mix import (
    CORE_ADDRESS_STRIDE,
    PAPER_MIX_COUNTS,
    WorkloadMix,
    category_mix_specs,
    category_mixes,
    full_mix_specs,
    make_mix,
    mix_from_spec,
    mix_table_fingerprint,
    paper_mix_count,
)
from repro.workloads.spec import SPEC_PROFILES


class TestMakeMix:
    def test_one_trace_per_core(self):
        profiles = [SPEC_PROFILES["mcf"], SPEC_PROFILES["lbm"]]
        mix = make_mix("m", profiles, refs_per_core=100)
        assert mix.num_cores == 2
        assert mix.benchmark_names == ("mcf", "lbm")

    def test_address_spaces_disjoint(self):
        profiles = [SPEC_PROFILES["mcf"], SPEC_PROFILES["mcf"]]
        mix = make_mix("m", profiles, refs_per_core=200)
        first = {addr for _g, _w, addr in mix.traces[0]}
        second = {addr for _g, _w, addr in mix.traces[1]}
        assert not first & second
        assert all(addr < CORE_ADDRESS_STRIDE for addr in first)
        assert all(addr >= CORE_ADDRESS_STRIDE for addr in second)

    def test_same_benchmark_twice_gets_different_streams(self):
        profiles = [SPEC_PROFILES["mcf"], SPEC_PROFILES["mcf"]]
        mix = make_mix("m", profiles, refs_per_core=200)
        normalized_second = [
            (g, w, addr - CORE_ADDRESS_STRIDE) for g, w, addr in mix.traces[1]
        ]
        assert mix.traces[0].records != normalized_second

    def test_deterministic(self):
        profiles = [SPEC_PROFILES["milc"]]
        a = make_mix("m", profiles, refs_per_core=100, seed=5)
        b = make_mix("m", profiles, refs_per_core=100, seed=5)
        assert a.traces[0].records == b.traces[0].records

    def test_zero_refs_rejected(self):
        with pytest.raises(ValueError):
            make_mix("m", [SPEC_PROFILES["mcf"]], refs_per_core=0)


class TestCategoryMixes:
    def test_count_and_core_count(self):
        mixes = category_mixes(num_cores=4, count=9, refs_per_core=50)
        assert len(mixes) == 9
        assert all(mix.num_cores == 4 for mix in mixes)
        assert all(isinstance(mix, WorkloadMix) for mix in mixes)

    def test_names_encode_categories(self):
        mixes = category_mixes(num_cores=2, count=9, refs_per_core=50)
        categories = {mix.name.split("_0")[0] for mix in mixes}
        assert len(categories) == 9  # all 9 (read, write) combinations

    def test_category_bias(self):
        mixes = category_mixes(num_cores=4, count=9, refs_per_core=50, seed=3)
        # The high-read/high-write mix draws only write-heavy benchmarks.
        hh = [m for m in mixes if "_rH_wH_" in m.name][0]
        for name in hh.benchmark_names:
            profile = SPEC_PROFILES[name]
            assert (
                profile.read_intensity == "high"
                and profile.write_intensity == "high"
            )

    def test_deterministic(self):
        a = category_mixes(num_cores=2, count=4, refs_per_core=50, seed=9)
        b = category_mixes(num_cores=2, count=4, refs_per_core=50, seed=9)
        assert [m.benchmark_names for m in a] == [m.benchmark_names for m in b]

    def test_distinct_mixes_within_category(self):
        mixes = category_mixes(num_cores=4, count=18, refs_per_core=50)
        first_round = [m for m in mixes if m.name.endswith("000")][0]
        second_round = [m for m in mixes if m.name.endswith("009")][0]
        assert first_round.name.split("_0")[0] == second_round.name.split("_0")[0]


class TestMixSpecs:
    def test_specs_match_legacy_generation(self):
        # The spec path consumes the category rng exactly like the legacy
        # all-at-once path, so a spec-built mix is bit-identical.
        legacy = category_mixes(num_cores=2, count=9, refs_per_core=50, seed=5)
        specs = category_mix_specs(num_cores=2, count=9, seed=5)
        assert [s.name for s in specs] == [m.name for m in legacy]
        for spec, mix in zip(specs, legacy):
            rebuilt = mix_from_spec(spec, refs_per_core=50, seed=5)
            assert rebuilt.benchmark_names == mix.benchmark_names
            assert [t.records for t in rebuilt.traces] == [
                t.records for t in mix.traces
            ]

    def test_paper_mix_counts(self):
        assert PAPER_MIX_COUNTS == {2: 102, 4: 259, 8: 120}
        assert paper_mix_count(4) == 259
        with pytest.raises(ValueError):
            paper_mix_count(3)

    def test_full_tables_deterministic_and_complete(self):
        for cores, count in PAPER_MIX_COUNTS.items():
            a = full_mix_specs(cores)
            b = full_mix_specs(cores)
            assert len(a) == count
            assert a == b
            assert len({s.name for s in a}) == count
            assert all(len(s.benchmark_names) == cores for s in a)

    def test_fingerprint_pins_table_identity(self):
        specs = full_mix_specs(2)
        base = mix_table_fingerprint(specs, refs_per_core=100)
        assert base == mix_table_fingerprint(full_mix_specs(2), 100)
        assert base != mix_table_fingerprint(specs, refs_per_core=200)
        assert base != mix_table_fingerprint(specs, 100, seed=0xDB2)
        assert base != mix_table_fingerprint(specs, 100, footprint_divisor=2)
        assert base != mix_table_fingerprint(specs[:-1], 100)

    def test_spec_index_seeds_traces(self):
        specs = category_mix_specs(num_cores=2, count=4, seed=7)
        mixes = [mix_from_spec(s, refs_per_core=50, seed=7) for s in specs]
        # Different indices produce different streams even when a
        # benchmark repeats across mixes.
        assert len({tuple(m.traces[0].records) for m in mixes}) > 1
