"""Unit tests for multi-programmed mix construction."""

import pytest

from repro.workloads.mix import (
    CORE_ADDRESS_STRIDE,
    WorkloadMix,
    category_mixes,
    make_mix,
)
from repro.workloads.spec import SPEC_PROFILES


class TestMakeMix:
    def test_one_trace_per_core(self):
        profiles = [SPEC_PROFILES["mcf"], SPEC_PROFILES["lbm"]]
        mix = make_mix("m", profiles, refs_per_core=100)
        assert mix.num_cores == 2
        assert mix.benchmark_names == ("mcf", "lbm")

    def test_address_spaces_disjoint(self):
        profiles = [SPEC_PROFILES["mcf"], SPEC_PROFILES["mcf"]]
        mix = make_mix("m", profiles, refs_per_core=200)
        first = {addr for _g, _w, addr in mix.traces[0]}
        second = {addr for _g, _w, addr in mix.traces[1]}
        assert not first & second
        assert all(addr < CORE_ADDRESS_STRIDE for addr in first)
        assert all(addr >= CORE_ADDRESS_STRIDE for addr in second)

    def test_same_benchmark_twice_gets_different_streams(self):
        profiles = [SPEC_PROFILES["mcf"], SPEC_PROFILES["mcf"]]
        mix = make_mix("m", profiles, refs_per_core=200)
        normalized_second = [
            (g, w, addr - CORE_ADDRESS_STRIDE) for g, w, addr in mix.traces[1]
        ]
        assert mix.traces[0].records != normalized_second

    def test_deterministic(self):
        profiles = [SPEC_PROFILES["milc"]]
        a = make_mix("m", profiles, refs_per_core=100, seed=5)
        b = make_mix("m", profiles, refs_per_core=100, seed=5)
        assert a.traces[0].records == b.traces[0].records

    def test_zero_refs_rejected(self):
        with pytest.raises(ValueError):
            make_mix("m", [SPEC_PROFILES["mcf"]], refs_per_core=0)


class TestCategoryMixes:
    def test_count_and_core_count(self):
        mixes = category_mixes(num_cores=4, count=9, refs_per_core=50)
        assert len(mixes) == 9
        assert all(mix.num_cores == 4 for mix in mixes)
        assert all(isinstance(mix, WorkloadMix) for mix in mixes)

    def test_names_encode_categories(self):
        mixes = category_mixes(num_cores=2, count=9, refs_per_core=50)
        categories = {mix.name.split("_0")[0] for mix in mixes}
        assert len(categories) == 9  # all 9 (read, write) combinations

    def test_category_bias(self):
        mixes = category_mixes(num_cores=4, count=9, refs_per_core=50, seed=3)
        # The high-read/high-write mix draws only write-heavy benchmarks.
        hh = [m for m in mixes if "_rH_wH_" in m.name][0]
        for name in hh.benchmark_names:
            profile = SPEC_PROFILES[name]
            assert (
                profile.read_intensity == "high"
                and profile.write_intensity == "high"
            )

    def test_deterministic(self):
        a = category_mixes(num_cores=2, count=4, refs_per_core=50, seed=9)
        b = category_mixes(num_cores=2, count=4, refs_per_core=50, seed=9)
        assert [m.benchmark_names for m in a] == [m.benchmark_names for m in b]

    def test_distinct_mixes_within_category(self):
        mixes = category_mixes(num_cores=4, count=18, refs_per_core=50)
        first_round = [m for m in mixes if m.name.endswith("000")][0]
        second_round = [m for m in mixes if m.name.endswith("009")][0]
        assert first_round.name.split("_0")[0] == second_round.name.split("_0")[0]
