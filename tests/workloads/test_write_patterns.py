"""Tests for split read/write address streams in benchmark profiles."""

from repro.workloads.spec import SPEC_PROFILES, generate_trace, spec_trace
from repro.workloads.synthetic import RegionBurstPattern
from repro.utils.rng import DeterministicRng


class TestConcentratedWrites:
    def test_bzip2_write_set_is_compact(self):
        profile = SPEC_PROFILES["bzip2"]
        trace = spec_trace("bzip2", 20000)
        writes = {addr for _g, w, addr in trace if w}
        hot_write_blocks = int(profile.footprint_blocks * 0.08)
        in_hot = sum(
            1 for _g, w, addr in trace if w and addr < hot_write_blocks
        )
        total_writes = sum(1 for _g, w, _a in trace if w)
        assert in_hot / total_writes > 0.9
        # Far fewer distinct written blocks than read blocks.
        reads = {addr for _g, w, addr in trace if not w}
        assert len(writes) < len(reads) / 2

    def test_bwaves_writes_concentrated_despite_streaming_reads(self):
        trace = spec_trace("bwaves", 20000)
        writes = sorted({addr for _g, w, addr in trace if w})
        profile = SPEC_PROFILES["bwaves"]
        hot = int(profile.footprint_blocks * 0.05)
        concentrated = sum(1 for a in writes if a < hot)
        assert concentrated / len(writes) > 0.7

    def test_profiles_without_write_pattern_share_stream(self):
        """lbm writes come from the same region bursts as its reads."""
        trace = spec_trace("lbm", 5000)
        write_regions = {addr // 128 for _g, w, addr in trace if w}
        read_regions = {addr // 128 for _g, w, addr in trace if not w}
        # Heavy overlap: same bursts produce both.
        assert len(write_regions & read_regions) > len(write_regions) * 0.8


class TestCyclicRegionRevisit:
    def test_cycle_covers_all_regions_before_repeat(self):
        rng = DeterministicRng(1)
        pattern = RegionBurstPattern(rng, footprint=64, region_blocks=8,
                                     burst_length=4, revisit="cycle")
        regions = []
        for _ in range(8 * 4):  # 8 regions x 4-access bursts = one full cycle
            regions.append(pattern.next_address() // 8)
        distinct_in_cycle = set(regions)
        assert distinct_in_cycle == set(range(8))

    def test_cycle_order_is_shuffled(self):
        rng = DeterministicRng(1)
        pattern = RegionBurstPattern(rng, footprint=256, region_blocks=8,
                                     burst_length=1, revisit="cycle")
        order = [pattern.next_address() // 8 for _ in range(32)]
        assert order != sorted(order)

    def test_invalid_revisit_rejected(self):
        import pytest

        rng = DeterministicRng(1)
        with pytest.raises(ValueError):
            RegionBurstPattern(rng, footprint=64, revisit="zigzag")


class TestFootprintScalingOfWritePattern:
    def test_write_pattern_footprint_scales(self):
        profile = SPEC_PROFILES["bzip2"]
        full = generate_trace(profile, 5000, footprint_divisor=1)
        scaled = generate_trace(profile, 5000, footprint_divisor=8)
        max_full = max(addr for _g, w, addr in full if w)
        max_scaled = max(addr for _g, w, addr in scaled if w)
        assert max_scaled < max_full
