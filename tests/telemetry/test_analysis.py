"""Unit tests for warmup detection, phase summaries and steady-state math."""

import pytest

from repro.telemetry.analysis import (
    detect_warmup,
    phase_summaries,
    rate_series,
    series,
    summarize,
    warmup_report,
)
from repro.telemetry.sampler import EpochRecord


def make_record(epoch, ipc, cycles=100, stats_reset=False, deltas=None):
    return EpochRecord(
        epoch=epoch,
        cycle=(epoch + 1) * cycles,
        cycles=cycles,
        instructions=int(ipc * cycles),
        ipc=ipc,
        stats_reset=stats_reset,
        deltas=dict(deltas or {}),
    )


def ipc_stream(ipcs, **kwargs):
    return [make_record(i, ipc, **kwargs) for i, ipc in enumerate(ipcs)]


class TestDetectWarmup:
    def test_flat_series_stabilises_immediately(self):
        records = ipc_stream([0.5] * 10)
        assert detect_warmup(records, window=4, tolerance=0.1) == 0

    def test_ramp_then_flat(self):
        records = ipc_stream([0.1, 0.2, 0.3, 0.4] + [0.5] * 8)
        assert detect_warmup(records, window=4, tolerance=0.1) == 4

    def test_never_settles(self):
        records = ipc_stream([0.1, 0.9] * 8)
        assert detect_warmup(records, window=4, tolerance=0.1) is None

    def test_cold_start_plateau_rejected(self):
        # The first epochs are mutually consistent but far above where the
        # run settles (everything hits while caches fill). A trailing-window
        # test alone would report epoch 0; condition (b) must reject it.
        records = ipc_stream([0.9] * 4 + [0.3] * 20)
        boundary = detect_warmup(records, window=4, tolerance=0.1)
        assert boundary == 4

    def test_window_shorter_than_two_rejected(self):
        with pytest.raises(ValueError):
            detect_warmup(ipc_stream([0.5] * 4), window=1)

    def test_too_few_records(self):
        assert detect_warmup(ipc_stream([0.5]), window=4) is None


class TestSeries:
    def test_series_resolves_fields_and_deltas(self):
        records = ipc_stream([0.5, 0.7], deltas={"mech.read_hits": 3})
        assert series(records, "ipc") == [0.5, 0.7]
        assert series(records, "mech.read_hits") == [3, 3]

    def test_rate_series_none_when_idle(self):
        records = [
            make_record(0, 0.5, deltas={"r.hits": 4, "r.total": 8}),
            make_record(1, 0.5),
        ]
        assert rate_series(records, "r") == [0.5, None]


class TestSummarize:
    def test_aggregates_deltas_and_ipc(self):
        records = ipc_stream([0.5, 0.3], deltas={"mech.tag_lookups": 10})
        summary = summarize(records)
        assert summary["epochs"] == 2
        assert summary["cycles"] == 200
        assert summary["instructions"] == 80
        assert summary["ipc"] == pytest.approx(0.4)
        assert summary["tag_lookups_pki"] == pytest.approx(1000 * 20 / 80)

    def test_skips_stats_reset_epochs(self):
        records = [
            make_record(0, 0.5, deltas={"mech.tag_lookups": 10}),
            make_record(1, 9.9, stats_reset=True, deltas={"mech.tag_lookups": 999}),
            make_record(2, 0.5, deltas={"mech.tag_lookups": 10}),
        ]
        summary = summarize(records)
        assert summary["epochs"] == 2
        assert summary["tag_lookups_pki"] == pytest.approx(1000 * 20 / 100)

    def test_empty_is_all_zero(self):
        summary = summarize([])
        assert summary["ipc"] == 0.0
        assert summary["llc_mpki"] == 0.0

    def test_llc_mpki_excludes_bypassed_hits(self):
        records = ipc_stream(
            [0.5],
            deltas={
                "mech.read_misses": 6,
                "mech.bypassed_lookups": 4,
                "mech.bypassed_hits": 3,
            },
        )
        # 6 true misses + (4 bypasses - 3 that were resident) = 7.
        assert summarize(records)["llc_mpki"] == pytest.approx(1000 * 7 / 50)


class TestPhases:
    def test_contiguous_cover(self):
        records = ipc_stream([0.5] * 8)
        phases = phase_summaries(records, phases=4)
        assert [(p["first_epoch"], p["last_epoch"]) for p in phases] == [
            (0, 1), (2, 3), (4, 5), (6, 7),
        ]

    def test_more_phases_than_epochs(self):
        assert len(phase_summaries(ipc_stream([0.5] * 2), phases=10)) == 2

    def test_zero_phases_rejected(self):
        with pytest.raises(ValueError):
            phase_summaries(ipc_stream([0.5]), phases=0)

    def test_empty_stream(self):
        assert phase_summaries([], phases=4) == []


class TestWarmupReport:
    def test_fraction_and_split(self):
        records = ipc_stream([0.1, 0.1, 0.5, 0.5, 0.5, 0.5])
        report = warmup_report(records, window=4, tolerance=0.1)
        assert report["boundary_epoch"] == 2
        assert report["boundary_cycle"] == 200
        total = sum(r.instructions for r in records)
        warm = records[0].instructions + records[1].instructions
        assert report["measured_warmup_fraction"] == pytest.approx(warm / total)
        assert report["warmup"]["epochs"] == 2
        assert report["steady_state"]["epochs"] == 4
        assert report["steady_state"]["ipc"] == pytest.approx(0.5)

    def test_no_boundary(self):
        report = warmup_report(ipc_stream([0.1, 0.9] * 8), tolerance=0.1)
        assert report["boundary_epoch"] is None
        assert report["steady_state"] is None
        assert report["measured_warmup_fraction"] == 1.0

    def test_boundary_zero_distinct_from_no_boundary(self):
        # Regression: ``if boundary`` conflated a measured boundary at epoch
        # 0 with "never settled". A run steady from the first epoch must
        # report an explicit zero-epoch warmup, not None.
        report = warmup_report(ipc_stream([0.5] * 8), tolerance=0.1)
        assert report["boundary_epoch"] == 0
        assert report["warmup"] is not None
        assert report["warmup"]["epochs"] == 0
        assert report["warmup"]["instructions"] == 0
        assert report["measured_warmup_fraction"] == 0.0
        assert report["steady_state"]["epochs"] == 8
        unsettled = warmup_report(ipc_stream([0.1, 0.9] * 8), tolerance=0.1)
        assert unsettled["boundary_epoch"] is None
        assert unsettled["warmup"] is None
