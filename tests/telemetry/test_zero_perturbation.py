"""Acceptance: telemetry observes, never perturbs.

A telemetry-enabled run must export a ``SimulationResult.to_dict()`` that is
byte-identical to the same run without telemetry — the simulator is
deterministic, so plain equality on the full dict (every stat counter, IPC
and event count) is the strongest possible form of the guarantee.
"""

import json

import pytest

from repro.analysis.scaling import SCALES
from repro.sim.system import run_system
from repro.telemetry.sampler import TelemetryConfig

#: Two cells spanning the interesting space: the in-tag baseline and the
#: full DBI datapath (AWB probes, CLB bypass, predictor, DBI evictions).
CELLS = [
    ("lbm", "dbi+awb"),
    ("mcf", "baseline"),
]


# (the parametrize arg is `bench`, not `benchmark` — pytest-benchmark
# claims that name as a fixture and rejects plain strings in funcargs)
@pytest.mark.parametrize("bench,mechanism", CELLS)
def test_enabled_run_is_byte_identical(bench, mechanism, tmp_path):
    scale = SCALES["quick"]
    trace = scale.benchmark_trace(bench, refs=3000)
    config = scale.system_config(mechanism)
    plain = run_system(config, [trace]).to_dict()
    jsonl = str(tmp_path / f"{bench}.jsonl")
    sampled = run_system(
        config,
        [trace],
        telemetry=TelemetryConfig(epoch_cycles=1_500, jsonl_path=jsonl),
    ).to_dict()
    assert json.dumps(sampled, sort_keys=True) == json.dumps(
        plain, sort_keys=True
    )


def test_epoch_length_does_not_change_results():
    # Sampling twice as often reads the counters twice as often; the
    # results must not notice.
    scale = SCALES["quick"]
    trace = scale.benchmark_trace("stream", refs=2500)
    config = scale.system_config("dbi+awb+clb")
    coarse = run_system(
        config, [trace], telemetry=TelemetryConfig(epoch_cycles=4_000)
    ).to_dict()
    fine = run_system(
        config, [trace], telemetry=TelemetryConfig(epoch_cycles=500)
    ).to_dict()
    assert coarse == fine


def test_sampler_saw_the_run(tmp_path):
    # Guard against the guarantee holding vacuously (hook never firing).
    scale = SCALES["quick"]
    trace = scale.benchmark_trace("lbm", refs=3000)
    result = None
    from repro.sim.system import System

    system = System(
        scale.system_config("dbi+awb"),
        [trace],
        telemetry=TelemetryConfig(epoch_cycles=1_500),
    )
    result = system.run()
    sampler = system.telemetry
    assert sampler.epochs_emitted > 5
    records = list(sampler.records)
    assert records[-1].final
    # The trailing partial epoch closes exactly at the final clock value
    # (result.cycles is the per-core *measured* span, which is shorter).
    assert records[-1].cycle == system.queue.now
    assert sum(r.instructions for r in records) >= result.instructions[0]
    # The full probe surface showed up: counter deltas from every layer
    # plus the mechanism/DRAM gauges.
    keys = set()
    for record in records:
        keys.update(record.deltas)
        keys.update(record.gauges)
    for expected in (
        "mech.read_requests",
        "dram.bank0.row_hits",
        "mech.dbi_occupancy",
        "dram.write_buffer_depth",
        "l1mshr0.occupancy",
    ):
        assert expected in keys, f"probe {expected} never reported"
