"""Unit tests for the ASCII timeline renderer."""

from repro.telemetry.sampler import EpochRecord
from repro.telemetry.timeline import (
    SPARK_CHARS,
    render_table,
    render_timeline,
    sparkline,
)


def make_record(epoch, ipc, stats_reset=False):
    return EpochRecord(
        epoch=epoch,
        cycle=(epoch + 1) * 100,
        cycles=100,
        instructions=int(ipc * 100),
        ipc=ipc,
        stats_reset=stats_reset,
        gauges={"depth": float(epoch)},
    )


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_lowest_char(self):
        assert sparkline([3.0, 3.0, 3.0]) == SPARK_CHARS[0] * 3

    def test_extremes_hit_ramp_ends(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == SPARK_CHARS[0]
        assert line[-1] == SPARK_CHARS[-1]

    def test_resampled_to_width(self):
        assert len(sparkline(list(range(100)), width=10)) == 10

    def test_no_upsampling(self):
        assert len(sparkline([1.0, 2.0], width=10)) == 2


class TestRenderTable:
    def test_marks_reset_epochs(self):
        records = [make_record(0, 0.5), make_record(1, 0.4, stats_reset=True)]
        table = render_table(records, keys=["ipc"])
        assert "1*" in table
        assert "0*" not in table

    def test_subsamples_long_streams(self):
        records = [make_record(i, 0.5) for i in range(20)]
        table = render_table(records, keys=["ipc"], max_rows=5)
        assert "(every 4th of 20 epochs)" in table
        assert len(table.splitlines()) <= 5 + 3  # header + rule + note

    def test_gauge_column(self):
        table = render_table([make_record(3, 0.5)], keys=["depth"])
        assert "depth" in table
        assert "3" in table


class TestRenderTimeline:
    def test_empty_stream_hint(self):
        out = render_timeline([], title="t")
        assert "no epochs sampled" in out

    def test_full_render(self):
        records = [make_record(i, 0.2 if i < 4 else 0.5) for i in range(16)]
        out = render_timeline(records, keys=["ipc"], title="lbm under dbi")
        assert out.startswith("lbm under dbi")
        assert "16 epochs" in out
        assert "measured warmup boundary: epoch 4" in out
        assert "ipc" in out
        assert "|" in out  # sparkline gutter

    def test_unsettled_run_says_so(self):
        records = [make_record(i, 0.1 if i % 2 else 0.9) for i in range(12)]
        out = render_timeline(records, keys=["ipc"])
        assert "not reached" in out
