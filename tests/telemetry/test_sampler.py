"""Unit tests for the epoch sampler: framing, ring, JSONL, resets.

The zero-perturbation acceptance tests (telemetry-enabled run produces
byte-identical final stats) live in ``test_zero_perturbation.py``.
"""

import pytest

from repro.telemetry.sampler import (
    EpochRecord,
    TelemetryConfig,
    TelemetrySampler,
    read_jsonl,
)
from repro.utils.stats import StatGroup


def make_sampler(**kwargs):
    group = StatGroup("g")
    group.counter("events")
    group.rate("hits")
    config = TelemetryConfig(**{"epoch_cycles": 100, **kwargs})
    instructions = {"value": 0}
    sampler = TelemetrySampler(
        config,
        groups=[group],
        counters=[("instructions", lambda: instructions["value"])],
        gauges=[("depth", lambda: 7.0)],
    )
    return sampler, group, instructions


class TestConfig:
    def test_rejects_non_positive_epoch(self):
        with pytest.raises(ValueError):
            TelemetryConfig(epoch_cycles=0)

    def test_rejects_non_positive_ring(self):
        with pytest.raises(ValueError):
            TelemetryConfig(ring_size=0)


class TestFraming:
    def test_first_boundary_is_one_epoch_in(self):
        sampler, _, _ = make_sampler()
        assert sampler.next_cycle == 100

    def test_sample_advances_to_next_multiple(self):
        sampler, _, _ = make_sampler()
        sampler.sample(100)
        assert sampler.next_cycle == 200
        # A sample past the boundary (event landed mid-epoch) still aims
        # at the next multiple, not boundary + epoch_cycles.
        sampler.sample(250)
        assert sampler.next_cycle == 300

    def test_skipped_epochs_collapse_into_one_record(self):
        sampler, _, _ = make_sampler()
        sampler.sample(100)
        sampler.sample(550)  # epochs 1..4 had no events
        assert len(sampler.records) == 2
        assert sampler.records[-1].cycles == 450

    def test_epoch_index_is_opening_boundary(self):
        sampler, _, _ = make_sampler()
        sampler.sample(100)
        sampler.sample(550)
        assert [r.epoch for r in sampler.records] == [0, 1]

    def test_deltas_are_per_epoch_not_cumulative(self):
        sampler, group, _ = make_sampler()
        group.counter("events").increment(5)
        sampler.sample(100)
        group.counter("events").increment(3)
        sampler.sample(200)
        assert [r.deltas.get("g.events") for r in sampler.records] == [5, 3]

    def test_zero_deltas_are_omitted(self):
        sampler, group, _ = make_sampler()
        group.counter("events").increment()
        sampler.sample(100)
        sampler.sample(200)
        assert "g.events" not in sampler.records[-1].deltas

    def test_ipc_from_instruction_probe(self):
        sampler, _, instructions = make_sampler()
        instructions["value"] = 50
        sampler.sample(100)
        record = sampler.records[-1]
        assert record.instructions == 50
        assert record.ipc == pytest.approx(0.5)
        assert "instructions" not in record.deltas

    def test_gauges_recorded_as_is(self):
        sampler, _, _ = make_sampler()
        sampler.sample(100)
        assert sampler.records[-1].gauges == {"depth": 7.0}


class TestStatsReset:
    def test_negative_delta_flags_record(self):
        sampler, group, _ = make_sampler()
        group.counter("events").increment(10)
        sampler.sample(100)
        group.reset()
        group.counter("events").increment(2)
        sampler.sample(200)
        record = sampler.records[-1]
        assert record.stats_reset
        # Post-reset value reported as the delta.
        assert record.deltas["g.events"] == 2

    def test_following_epoch_is_clean_again(self):
        sampler, group, _ = make_sampler()
        group.counter("events").increment(10)
        sampler.sample(100)
        group.reset()
        sampler.sample(200)
        group.counter("events").increment(4)
        sampler.sample(300)
        assert not sampler.records[-1].stats_reset
        assert sampler.records[-1].deltas["g.events"] == 4


class TestRing:
    def test_ring_caps_memory_but_not_emission_count(self):
        sampler, _, _ = make_sampler(ring_size=3)
        for cycle in range(100, 1100, 100):
            sampler.sample(cycle)
        assert len(sampler.records) == 3
        assert sampler.epochs_emitted == 10
        assert [r.cycle for r in sampler.records] == [800, 900, 1000]


class TestFinalize:
    def test_trailing_partial_epoch(self):
        sampler, _, _ = make_sampler()
        sampler.sample(100)
        sampler.finalize(130)
        record = sampler.records[-1]
        assert record.final
        assert record.cycles == 30

    def test_idempotent(self):
        sampler, _, _ = make_sampler()
        sampler.finalize(50)
        sampler.finalize(80)
        assert len(sampler.records) == 1

    def test_nothing_to_flush(self):
        sampler, _, _ = make_sampler()
        sampler.sample(100)
        sampler.finalize(100)  # clock exactly on the boundary
        assert len(sampler.records) == 1


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sampler, group, instructions = make_sampler(
            jsonl_path=path, meta=(("benchmark", "lbm"),)
        )
        group.counter("events").increment(5)
        group.rate("hits").record(True)
        instructions["value"] = 42
        sampler.sample(100)
        sampler.finalize(150)
        header, records = read_jsonl(path)
        assert header["epoch_cycles"] == 100
        assert header["benchmark"] == "lbm"
        assert [r.to_dict() for r in records] == [
            r.to_dict() for r in sampler.records
        ]

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"epoch": 0}\n')
        with pytest.raises(ValueError, match="header"):
            read_jsonl(str(path))

    def test_newer_format_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"kind": "header", "format": 99}\n')
        with pytest.raises(ValueError, match="newer"):
            read_jsonl(str(path))

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_jsonl(str(path))

    def test_blank_only_rejected_as_empty(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_text("\n\n   \n")
        with pytest.raises(ValueError, match="empty"):
            read_jsonl(str(path))

    def test_header_validated_before_records_parse(self, tmp_path):
        # Streaming regression: the header check must fire on the first
        # non-blank line, before any record line is parsed — a foreign file
        # fails with the header error, not a record JSON error.
        path = tmp_path / "foreign.jsonl"
        path.write_text('{"epoch": 0}\nthis is not json at all\n')
        with pytest.raises(ValueError, match="header"):
            read_jsonl(str(path))

    def test_streaming_skips_interleaved_blank_lines(self, tmp_path):
        path = str(tmp_path / "gaps.jsonl")
        sampler, group, instructions = make_sampler(jsonl_path=path)
        group.counter("events").increment(3)
        instructions["value"] = 10
        sampler.sample(100)
        instructions["value"] = 25
        sampler.finalize(200)
        with open(path) as handle:
            lines = handle.readlines()
        with open(path, "w") as handle:
            for line in lines:
                handle.write("\n" + line + "   \n")
        header, records = read_jsonl(path)
        assert header["epoch_cycles"] == 100
        assert len(records) == 2


class TestRecordValue:
    def test_resolution_order(self):
        record = EpochRecord(
            epoch=2, cycle=300, cycles=100, instructions=40, ipc=0.4,
            deltas={"mech.read_hits": 9.0}, gauges={"depth": 3.0},
        )
        assert record.value("ipc") == 0.4
        assert record.value("epoch") == 2
        assert record.value("mech.read_hits") == 9.0
        assert record.value("depth") == 3.0
        assert record.value("no.such.key") == 0.0


class TestTornTail:
    """Crash tolerance: a mid-record-truncated stream must load, warn, and
    keep every complete epoch — the reader's contract after a SIGKILL."""

    def write_stream(self, path, epochs=3):
        sampler, group, instructions = make_sampler(jsonl_path=str(path))
        for i in range(1, epochs + 1):
            group.counter("events").increment(5)
            instructions["value"] = 10 * i
            sampler.sample(100 * i)
        sampler.close()

    def test_mid_record_truncation_warns_and_truncates(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        self.write_stream(path, epochs=3)
        full = path.read_text()
        lines = full.splitlines(keepends=True)
        # Cut the final record in half, newline gone: a torn write.
        path.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        with pytest.warns(UserWarning, match="torn trailing record"):
            header, records = read_jsonl(str(path))
        assert header["epoch_cycles"] == 100
        assert len(records) == 2  # 3 written, torn 3rd dropped
        assert [r.cycle for r in records] == [100, 200]

    def test_intact_stream_does_not_warn(self, tmp_path, recwarn):
        path = tmp_path / "ok.jsonl"
        self.write_stream(path, epochs=2)
        header, records = read_jsonl(str(path))
        assert len(records) == 2
        assert not [w for w in recwarn.list if issubclass(w.category, UserWarning)]

    def test_torn_line_mid_stream_still_raises(self, tmp_path):
        # Complete records after the bad line prove corruption, not a crash.
        path = tmp_path / "corrupt.jsonl"
        self.write_stream(path, epochs=3)
        lines = path.read_text().splitlines(keepends=True)
        lines[2] = lines[2][: len(lines[2]) // 2] + "\n"
        path.write_text("".join(lines))
        with pytest.raises(ValueError, match="malformed telemetry record"):
            read_jsonl(str(path))

    def test_torn_header_still_raises(self, tmp_path):
        path = tmp_path / "torn-header.jsonl"
        self.write_stream(path, epochs=1)
        first = path.read_text().splitlines(keepends=True)[0]
        path.write_text(first[: len(first) // 2])
        with pytest.raises(ValueError):
            read_jsonl(str(path))

    def test_truncated_but_parseable_record_dropped_at_tail(self, tmp_path):
        # A tail cut exactly inside the JSON such that it still parses as a
        # dict but lacks required record fields is the same torn write.
        path = tmp_path / "short.jsonl"
        self.write_stream(path, epochs=2)
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:-1]) + '{"epoch": 9}')
        with pytest.warns(UserWarning, match="torn trailing record"):
            _header, records = read_jsonl(str(path))
        assert len(records) == 1
