"""Golden telemetry fixture: a full epoch stream pinned line-for-line.

Complements the golden SimulationResult fixtures (which pin *final* stats):
this pins the per-epoch trajectory, so a change that nets out to the same
totals but redistributes work across the run — a warmup shift, an eviction
storm moving earlier, a gauge going wrong mid-run — still shows up.

The simulator and trace generator are seeded and deterministic, so the
comparison is exact text equality. Intended changes are re-pinned with::

    pytest tests/telemetry/test_golden_telemetry.py --update-golden
"""

import json
import pathlib

import pytest

from repro.analysis.scaling import SCALES
from repro.sim.system import run_system
from repro.telemetry.sampler import TelemetryConfig, read_jsonl

GOLDEN_PATH = (
    pathlib.Path(__file__).parent / "golden" / "lbm-dbi-awb.telemetry.jsonl"
)


def run_golden_cell(jsonl_path):
    scale = SCALES["quick"]
    trace = scale.benchmark_trace("lbm", refs=3000)
    run_system(
        scale.system_config("dbi+awb"),
        [trace],
        telemetry=TelemetryConfig(
            epoch_cycles=1_500,
            jsonl_path=str(jsonl_path),
            meta=(("benchmark", "lbm"), ("mechanism", "dbi+awb")),
        ),
    )


def test_golden_epoch_stream(tmp_path, request):
    actual_path = tmp_path / "actual.jsonl"
    run_golden_cell(actual_path)
    actual = actual_path.read_text()
    if request.config.getoption("--update-golden"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(actual)
    expected = GOLDEN_PATH.read_text()
    if actual != expected:
        actual_lines = actual.splitlines()
        expected_lines = expected.splitlines()
        first_diff = next(
            (
                i
                for i, (a, b) in enumerate(zip(actual_lines, expected_lines))
                if a != b
            ),
            min(len(actual_lines), len(expected_lines)),
        )
        pytest.fail(
            f"epoch stream drifted from the golden fixture: "
            f"{len(expected_lines)} expected vs {len(actual_lines)} actual "
            f"lines, first difference at line {first_diff}.\n"
            f"If the change is intended, re-pin with --update-golden."
        )


def test_golden_fixture_is_readable():
    """The committed fixture parses through the public reader."""
    header, records = read_jsonl(str(GOLDEN_PATH))
    assert header["benchmark"] == "lbm"
    assert header["mechanism"] == "dbi+awb"
    assert header["epoch_cycles"] == 1_500
    assert len(records) > 20
    assert records[-1].final
    # Every line is in canonical sorted-keys form (what the sampler emits),
    # so diffs against a regenerated fixture are line-stable.
    for line in GOLDEN_PATH.read_text().splitlines():
        payload = json.loads(line)
        assert line == json.dumps(payload, sort_keys=True)
