"""Unit tests for FR-FCFS selection."""

import pytest

from repro.dram.address import AddressMapper
from repro.dram.bank import Bank
from repro.dram.config import DramConfig
from repro.dram.request import MemoryRequest
from repro.dram.scheduler import earliest_bank_free, select_fr_fcfs

CONFIG = DramConfig(num_banks=4, row_buffer_blocks=16)


@pytest.fixture
def mapper():
    return AddressMapper(CONFIG)


@pytest.fixture
def banks():
    return [Bank(i, CONFIG) for i in range(CONFIG.num_banks)]


def read(addr, arrival=0):
    return MemoryRequest(block_addr=addr, is_write=False, arrival_time=arrival)


def addr_for(mapper, global_row, column=0):
    return mapper.block_of(global_row, column)


class TestFrFcfs:
    def test_empty_candidates(self, banks, mapper):
        assert select_fr_fcfs([], banks, mapper, 0) is None

    def test_oldest_first_when_no_hits(self, banks, mapper):
        requests = [read(addr_for(mapper, row)) for row in (4, 5, 6)]
        assert select_fr_fcfs(requests, banks, mapper, 0) is requests[0]

    def test_row_hit_preferred_over_older_miss(self, banks, mapper):
        hit_addr = addr_for(mapper, 4, column=3)
        bank = banks[mapper.bank_of(hit_addr)]
        bank.open_row = mapper.row_of(hit_addr)
        older_miss = read(addr_for(mapper, 9))
        newer_hit = read(hit_addr)
        assert select_fr_fcfs([older_miss, newer_hit], banks, mapper, 0) is newer_hit

    def test_busy_bank_requests_skipped(self, banks, mapper):
        blocked = read(addr_for(mapper, 0))  # bank 0
        free = read(addr_for(mapper, 1))  # bank 1
        banks[0].busy_until = 100
        assert select_fr_fcfs([blocked, free], banks, mapper, 0) is free

    def test_all_banks_busy_returns_none(self, banks, mapper):
        for bank in banks:
            bank.busy_until = 100
        requests = [read(addr_for(mapper, row)) for row in range(4)]
        assert select_fr_fcfs(requests, banks, mapper, 0) is None

    def test_first_ready_hit_beats_later_hit(self, banks, mapper):
        first_hit = addr_for(mapper, 0, column=1)
        second_hit = addr_for(mapper, 1, column=1)
        banks[mapper.bank_of(first_hit)].open_row = mapper.row_of(first_hit)
        banks[mapper.bank_of(second_hit)].open_row = mapper.row_of(second_hit)
        requests = [read(second_hit), read(first_hit)]
        # Both are hits; FIFO order among hits: first in list wins.
        assert select_fr_fcfs(requests, banks, mapper, 0) is requests[0]


class TestEarliestBankFree:
    def test_min_over_banks(self, banks):
        banks[0].busy_until = 50
        banks[1].busy_until = 10
        banks[2].busy_until = 70
        assert earliest_bank_free(banks) == 0  # bank 3 never used
        banks[3].busy_until = 30
        assert earliest_bank_free(banks) == 10
