"""Unit tests for DRAM address mapping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram.address import AddressMapper
from repro.dram.config import DramConfig

CONFIG = DramConfig(num_banks=8, row_buffer_blocks=128)


@pytest.fixture
def mapper():
    return AddressMapper(CONFIG)


class TestDecode:
    def test_blocks_of_one_row_share_bank_and_row(self, mapper):
        base = 5 * 128  # start of global row 5
        coords = [mapper.decode(base + column) for column in range(128)]
        assert len({c.bank for c in coords}) == 1
        assert len({c.row for c in coords}) == 1
        assert [c.column for c in coords] == list(range(128))
        assert all(c.global_row_id == 5 for c in coords)

    def test_consecutive_rows_rotate_across_banks(self, mapper):
        banks = [mapper.decode(row * 128).bank for row in range(16)]
        assert banks == [row % 8 for row in range(16)]

    def test_row_within_bank_increments_every_num_banks_rows(self, mapper):
        assert mapper.decode(0).row == 0
        assert mapper.decode(8 * 128).row == 1
        assert mapper.decode(16 * 128).row == 2

    def test_global_row_id_matches_decode(self, mapper):
        for addr in (0, 127, 128, 999, 12345):
            assert mapper.global_row_id(addr) == mapper.decode(addr).global_row_id

    def test_hot_path_helpers_match_decode(self, mapper):
        for addr in (0, 1, 127, 128, 4097, 99999):
            coords = mapper.decode(addr)
            assert mapper.bank_of(addr) == coords.bank
            assert mapper.row_of(addr) == coords.row


class TestInverseMapping:
    def test_block_of_round_trip(self, mapper):
        addr = 7 * 128 + 42
        coords = mapper.decode(addr)
        assert mapper.block_of(coords.global_row_id, coords.column) == addr

    def test_block_of_rejects_bad_column(self, mapper):
        with pytest.raises(ValueError):
            mapper.block_of(0, 128)
        with pytest.raises(ValueError):
            mapper.block_of(0, -1)

    @given(st.integers(min_value=0, max_value=2**40))
    def test_round_trip_property(self, block_addr):
        mapper = AddressMapper(CONFIG)
        coords = mapper.decode(block_addr)
        assert mapper.block_of(coords.global_row_id, coords.column) == block_addr


class TestRowSpan:
    def test_span_covers_whole_row(self, mapper):
        span = list(mapper.row_span(3 * 128 + 17))
        assert span[0] == 3 * 128
        assert span[-1] == 4 * 128 - 1
        assert len(span) == 128

    def test_all_span_members_share_global_row(self, mapper):
        addr = 11 * 128 + 5
        row_id = mapper.global_row_id(addr)
        assert all(mapper.global_row_id(a) == row_id for a in mapper.row_span(addr))


class TestAlternateGeometries:
    def test_small_row(self):
        mapper = AddressMapper(DramConfig(num_banks=4, row_buffer_blocks=16))
        assert mapper.blocks_per_row == 16
        coords = mapper.decode(16 * 5 + 3)
        assert coords.global_row_id == 5
        assert coords.bank == 1
        assert coords.column == 3
