"""Integration-style tests for the memory controller."""

import pytest

from repro.dram.config import DramConfig
from repro.dram.controller import MemoryController, Phase
from repro.dram.request import MemoryRequest
from repro.utils.events import EventQueue

SMALL = DramConfig(num_banks=4, row_buffer_blocks=16, write_buffer_entries=4)


@pytest.fixture
def queue():
    return EventQueue()


@pytest.fixture
def controller(queue):
    return MemoryController(queue, SMALL)


def run_reads(queue, controller, addrs):
    """Issue reads for all addrs at t=0, run to completion, return requests."""
    completed = []
    requests = []
    for addr in addrs:
        request = MemoryRequest(
            block_addr=addr, is_write=False, on_complete=completed.append
        )
        requests.append(request)
        controller.enqueue_read(request)
    queue.run()
    assert len(completed) == len(addrs)
    return requests


class TestReads:
    def test_single_read_completes(self, queue, controller):
        (request,) = run_reads(queue, controller, [0])
        assert request.complete_time is not None
        expected = SMALL.row_closed_latency + SMALL.bus_queue_latency
        assert request.complete_time == expected

    def test_row_hits_are_faster(self, queue, controller):
        first, second = run_reads(queue, controller, [0, 1])  # same row
        gap = second.complete_time - first.complete_time
        assert gap == SMALL.t_burst  # pipelined row hits stream on the bus
        assert controller.stats.rate("read_row_hit_rate").hits == 1

    def test_row_conflict_recorded(self, queue, controller):
        # Same bank (bank 0): global rows 0 and 4 with 4 banks.
        run_reads(queue, controller, [0, 4 * 16])
        rate = controller.stats.rate("read_row_hit_rate")
        assert rate.hits == 0
        assert rate.total == 2

    def test_bank_parallelism(self, queue, controller):
        # Rows 0 and 1 live in different banks; preps overlap, bursts serialize.
        first, second = run_reads(queue, controller, [0, 16])
        gap = second.complete_time - first.complete_time
        assert gap == SMALL.t_burst

    def test_read_counter(self, queue, controller):
        run_reads(queue, controller, [0, 16, 32])
        assert controller.stats.counter("reads").value == 3
        assert controller.stats.counter("dram_reads_performed").value == 3


class TestWrites:
    def test_write_sits_in_buffer_until_drain(self, queue, controller):
        accepted = controller.enqueue_write(MemoryRequest(block_addr=0, is_write=True))
        assert accepted
        assert controller.pending_writes == 1
        queue.run()  # idle drain: no reads pending, so the write is performed
        assert controller.pending_writes == 0
        assert controller.stats.counter("dram_writes_performed").value == 1

    def test_buffer_full_triggers_drain_phase(self, queue, controller):
        for addr in range(SMALL.write_buffer_entries):
            assert controller.enqueue_write(
                MemoryRequest(block_addr=addr * 16, is_write=True)
            )
        assert controller.phase is Phase.WRITE_DRAIN
        queue.run()
        assert controller.phase is Phase.READ
        assert controller.stats.counter("write_drain_phases").value == 1

    def test_full_buffer_rejects_new_write(self, queue, controller):
        for addr in range(SMALL.write_buffer_entries):
            controller.enqueue_write(MemoryRequest(block_addr=addr * 16, is_write=True))
        assert not controller.can_accept_write()
        rejected = controller.enqueue_write(
            MemoryRequest(block_addr=999 * 16, is_write=True)
        )
        assert not rejected
        assert controller.stats.counter("writes_rejected").value == 1

    def test_coalescing_write_accepted_even_when_full(self, queue, controller):
        for addr in range(SMALL.write_buffer_entries):
            controller.enqueue_write(MemoryRequest(block_addr=addr * 16, is_write=True))
        assert controller.enqueue_write(MemoryRequest(block_addr=0, is_write=True))
        assert controller.stats.counter("writes_coalesced").value == 1

    def test_same_row_writes_drain_as_row_hits(self, queue, controller):
        for column in range(4):
            controller.enqueue_write(MemoryRequest(block_addr=column, is_write=True))
        queue.run()
        rate = controller.stats.rate("write_row_hit_rate")
        assert rate.total == 4
        assert rate.hits == 3  # first opens the row, the rest hit


class TestForwarding:
    def test_read_forwarded_from_write_buffer(self, queue, controller):
        controller.enqueue_write(MemoryRequest(block_addr=5, is_write=True))
        completed = []
        controller.enqueue_read(
            MemoryRequest(block_addr=5, is_write=False, on_complete=completed.append)
        )
        queue.run()
        assert controller.stats.counter("reads_forwarded_from_write_buffer").value == 1
        assert len(completed) == 1
        # Forwarded reads never touch a bank.
        assert controller.stats.counter("dram_reads_performed").value == 0


class TestInterference:
    def test_reads_wait_behind_write_drain(self):
        """A read arriving mid-drain waits for the buffer to empty."""
        queue = EventQueue()
        controller = MemoryController(queue, SMALL)
        # Fill the write buffer with row-conflicting writes (slow drain).
        for i in range(SMALL.write_buffer_entries):
            controller.enqueue_write(
                MemoryRequest(block_addr=i * 4 * 16, is_write=True)  # all bank 0
            )
        assert controller.phase is Phase.WRITE_DRAIN
        completed = []
        controller.enqueue_read(
            MemoryRequest(block_addr=16, is_write=False, on_complete=completed.append)
        )
        queue.run()
        (request,) = completed
        # The read completed only after the drain finished.
        assert request.complete_time > SMALL.row_miss_latency * 2

    def test_is_idle(self, queue, controller):
        assert controller.is_idle()
        controller.enqueue_write(MemoryRequest(block_addr=0, is_write=True))
        assert not controller.is_idle()
        queue.run()
        assert controller.is_idle()
