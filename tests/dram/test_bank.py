"""Unit tests for the DRAM bank model."""

import pytest

from repro.dram.bank import Bank
from repro.dram.config import DramConfig

CONFIG = DramConfig()


@pytest.fixture
def bank():
    return Bank(0, CONFIG)


class TestLatencies:
    def test_closed_bank_prep(self, bank):
        assert bank.prep_latency(5) == CONFIG.t_rcd

    def test_row_hit_prep_is_zero(self, bank):
        bank.perform_access(5, 0)
        assert bank.prep_latency(5) == 0

    def test_row_conflict_prep(self, bank):
        bank.perform_access(5, 0)
        assert bank.prep_latency(6) == CONFIG.t_rp + CONFIG.t_rcd

    def test_access_latency_ordering(self, bank):
        bank.perform_access(5, 0)
        hit = bank.access_latency(5)
        miss = bank.access_latency(6)
        assert hit == CONFIG.row_hit_latency
        assert miss == CONFIG.row_miss_latency
        assert hit < miss


class TestAccessBookkeeping:
    def test_access_opens_row(self, bank):
        bank.perform_access(9, 0)
        assert bank.open_row == 9
        assert bank.would_hit(9)
        assert not bank.would_hit(10)

    def test_closed_access_data_ready(self, bank):
        data_ready = bank.perform_access(1, 100)
        assert data_ready == 100 + CONFIG.t_rcd + CONFIG.t_cas

    def test_conflict_access_data_ready(self, bank):
        bank.perform_access(1, 0)
        start = bank.busy_until
        data_ready = bank.perform_access(2, start)
        assert data_ready == start + CONFIG.t_rp + CONFIG.t_rcd + CONFIG.t_cas

    def test_bank_command_occupancy(self, bank):
        bank.perform_access(1, 100)
        # Next command slot: CAS issue time + burst (tCCD).
        assert bank.busy_until == 100 + CONFIG.t_rcd + CONFIG.t_burst
        assert not bank.is_free(bank.busy_until - 1)
        assert bank.is_free(bank.busy_until)

    def test_row_hits_stream_at_burst_granularity(self, bank):
        bank.perform_access(4, 0)
        first_next_slot = bank.busy_until
        bank.perform_access(4, first_next_slot)
        # Consecutive CAS commands are tBURST apart for row hits.
        assert bank.busy_until - first_next_slot == CONFIG.t_burst

    def test_access_while_busy_rejected(self, bank):
        bank.perform_access(1, 0)
        with pytest.raises(ValueError):
            bank.perform_access(2, 1)

    def test_precharge_closes_row(self, bank):
        bank.perform_access(4, 0)
        bank.precharge()
        assert bank.open_row is None
        assert bank.prep_latency(4) == CONFIG.t_rcd
