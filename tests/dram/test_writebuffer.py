"""Unit tests for the write buffer."""

import pytest

from repro.dram.request import MemoryRequest
from repro.dram.writebuffer import WriteBuffer


def write(addr):
    return MemoryRequest(block_addr=addr, is_write=True)


class TestCapacity:
    def test_fills_to_capacity(self):
        buffer = WriteBuffer(4)
        for addr in range(4):
            buffer.add(write(addr))
        assert buffer.is_full
        assert len(buffer) == 4

    def test_overflow_rejected(self):
        buffer = WriteBuffer(2)
        buffer.add(write(0))
        buffer.add(write(1))
        with pytest.raises(ValueError):
            buffer.add(write(2))

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            WriteBuffer(0)


class TestCoalescing:
    def test_same_address_coalesces(self):
        buffer = WriteBuffer(4)
        buffer.add(write(7))
        buffer.add(write(7))
        assert len(buffer) == 1

    def test_coalesce_works_even_when_full(self):
        buffer = WriteBuffer(1)
        buffer.add(write(7))
        buffer.add(write(7))  # must not raise
        assert buffer.is_full


class TestLookupAndRemoval:
    def test_contains(self):
        buffer = WriteBuffer(4)
        buffer.add(write(3))
        assert buffer.contains(3)
        assert not buffer.contains(4)

    def test_read_rejected(self):
        buffer = WriteBuffer(4)
        with pytest.raises(ValueError):
            buffer.add(MemoryRequest(block_addr=0, is_write=False))

    def test_pop_oldest_is_fifo(self):
        buffer = WriteBuffer(4)
        for addr in (5, 9, 1):
            buffer.add(write(addr))
        assert buffer.pop_oldest().block_addr == 5
        assert buffer.pop_oldest().block_addr == 9
        assert buffer.pop_oldest().block_addr == 1
        assert buffer.pop_oldest() is None

    def test_remove_specific_entry(self):
        buffer = WriteBuffer(4)
        first, second = write(1), write(2)
        buffer.add(first)
        buffer.add(second)
        buffer.remove(first)
        assert not buffer.contains(1)
        assert buffer.contains(2)
        assert len(buffer) == 1

    def test_peek_all_preserves_order_and_is_snapshot(self):
        buffer = WriteBuffer(4)
        for addr in (2, 4, 6):
            buffer.add(write(addr))
        snapshot = buffer.peek_all()
        assert [r.block_addr for r in snapshot] == [2, 4, 6]
        snapshot.pop()
        assert len(buffer) == 3
