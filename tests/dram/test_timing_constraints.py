"""Tests for the finer DDR3 timing constraints: tWR, turnaround, tRRD/tFAW."""

import pytest

from repro.dram.bank import Bank
from repro.dram.config import DramConfig
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest
from repro.utils.events import EventQueue

CFG = DramConfig(num_banks=4, row_buffer_blocks=16, write_buffer_entries=8)


def make():
    queue = EventQueue()
    return queue, MemoryController(queue, CFG)


class TestWriteRecovery:
    def test_same_row_access_ignores_twr(self):
        bank = Bank(0, CFG)
        bank.perform_access(5, 0)
        bank.write_recovery_until = 1_000
        # Row hit: ready as soon as the command slot frees.
        assert bank.ready_time(5) == bank.busy_until

    def test_row_change_waits_for_twr(self):
        bank = Bank(0, CFG)
        bank.perform_access(5, 0)
        bank.write_recovery_until = 1_000
        assert bank.ready_time(6) == 1_000
        assert not bank.is_ready(6, 999)
        assert bank.is_ready(6, 1_000)

    def test_write_sets_recovery_window(self):
        queue, controller = make()
        controller.enqueue_write(MemoryRequest(block_addr=0, is_write=True))
        queue.run()
        bank = controller.banks[0]
        assert bank.write_recovery_until > bank.busy_until - CFG.t_burst

    def test_conflicting_writes_slower_than_row_hit_writes(self):
        # Same bank, different rows (bank 0: global rows 0 and 4).
        queue, controller = make()
        for row in (0, 4):
            controller.enqueue_write(
                MemoryRequest(block_addr=row * 16, is_write=True)
            )
        queue.run()
        conflict_time = queue.now

        queue2, controller2 = make()
        for column in (0, 1):
            controller2.enqueue_write(
                MemoryRequest(block_addr=column, is_write=True)
            )
        queue2.run()
        hit_time = queue2.now
        assert conflict_time > hit_time + CFG.t_wr  # recovery + re-activate


class TestBusTurnaround:
    def test_direction_switch_counted_and_penalized(self):
        queue, controller = make()
        done = []
        controller.enqueue_read(
            MemoryRequest(block_addr=0, is_write=False, on_complete=done.append)
        )
        queue.run()
        controller.enqueue_write(MemoryRequest(block_addr=16, is_write=True))
        queue.run()
        assert controller.stats.as_dict()["dram.bus_turnarounds"] == 1

    def test_same_direction_no_penalty(self):
        queue, controller = make()
        done = []
        for addr in (0, 16):
            controller.enqueue_read(
                MemoryRequest(block_addr=addr, is_write=False,
                              on_complete=done.append)
            )
        queue.run()
        assert controller.stats.as_dict().get("dram.bus_turnarounds", 0) == 0


class TestActivateWindows:
    def test_activate_rate_is_limited(self):
        """Five row misses to five banks cannot all activate inside tFAW."""
        config = DramConfig(num_banks=8, row_buffer_blocks=16,
                            write_buffer_entries=8)
        queue = EventQueue()
        controller = MemoryController(queue, config)
        done = []
        # 5 reads to distinct banks, all row misses.
        for bank in range(5):
            addr = bank * 16  # global row = bank index -> distinct banks
            controller.enqueue_read(
                MemoryRequest(block_addr=addr, is_write=False,
                              on_complete=done.append)
            )
        queue.run()
        assert len(done) == 5
        assert controller.stats.as_dict()["dram.activates"] == 5
        # The 5th ACTIVATE cannot issue before tFAW after the 1st.
        assert queue.now >= config.t_faw

    def test_row_hits_bypass_activate_limits(self):
        queue, controller = make()
        done = []
        for column in range(6):  # same row: one activate, then hits
            controller.enqueue_read(
                MemoryRequest(block_addr=column, is_write=False,
                              on_complete=done.append)
            )
        queue.run()
        assert controller.stats.as_dict()["dram.activates"] == 1

    def test_trrd_spaces_activates(self):
        queue, controller = make()
        issue_times = []
        original = controller._record_activate

        def spy(when):
            issue_times.append(when)
            original(when)

        controller._record_activate = spy
        done = []
        for bank in range(2):
            controller.enqueue_read(
                MemoryRequest(block_addr=bank * 16, is_write=False,
                              on_complete=done.append)
            )
        queue.run()
        assert len(issue_times) == 2
        assert issue_times[1] - issue_times[0] >= CFG.t_rrd


class TestConfigValidation:
    def test_new_fields_validated(self):
        with pytest.raises(ValueError):
            DramConfig(t_wr=-1)
        with pytest.raises(ValueError):
            DramConfig(t_faw=-5)
