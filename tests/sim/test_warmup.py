"""Tests for warmup-window statistics reset at the System level."""

import pytest

from repro.sim.system import System, run_system
from tests.sim.conftest import random_trace, small_config, streaming_trace


class TestWarmupReset:
    def test_stats_cover_only_measurement_window(self):
        trace = streaming_trace(refs=800, gap=2, write_every=2)
        no_warmup = run_system(
            small_config(warmup_fraction=0.0), [trace]
        )
        with_warmup = run_system(
            small_config(warmup_fraction=0.5), [trace]
        )
        # The warm run counts strictly fewer lookups (half the instructions).
        assert (
            with_warmup.stats["mech.tag_lookups"]
            < no_warmup.stats["mech.tag_lookups"]
        )

    def test_issued_instruction_accounting(self):
        trace = streaming_trace(refs=400, gap=2)
        result = run_system(small_config(warmup_fraction=0.5), [trace])
        # PKI denominators use only post-reset instructions.
        assert result.total_instructions_issued <= trace.total_instructions

    def test_invalid_fraction_rejected(self):
        trace = streaming_trace(refs=100)
        with pytest.raises(ValueError):
            System(small_config(warmup_fraction=1.0), [trace])

    def test_zero_warmup_supported(self):
        trace = streaming_trace(refs=200)
        result = run_system(small_config(warmup_fraction=0.0), [trace])
        assert result.instructions[0] == trace.total_instructions

    def test_multicore_reset_waits_for_all_cores(self):
        config = small_config(num_cores=2, warmup_fraction=0.3)
        traces = [
            streaming_trace("fast", refs=300, gap=1),
            random_trace("slow", refs=300, gap=8),
        ]
        system = System(config, traces)
        system.run()
        # Both cores measured, both warmed.
        assert all(core.warmed for core in system.cores)
        assert all(core.measured_ipc is not None for core in system.cores)

    def test_warmup_excludes_cold_misses_for_reuse_workload(self):
        """Warming past the first pass of a cache-resident loop raises IPC:
        the cold pass (all misses) is excluded from the measurement."""
        trace = streaming_trace(refs=150, gap=4)  # fits the 256-block LLC
        from repro.sim.trace import merge_traces

        looped = merge_traces("loop", [trace] * 3)
        cold = run_system(small_config(warmup_fraction=0.0), [looped])
        warm = run_system(small_config(warmup_fraction=0.4), [looped])
        assert warm.ipc[0] > cold.ipc[0]
