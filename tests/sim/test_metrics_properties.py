"""Property-based tests for the multi-programmed metrics (hypothesis).

Runs under the ``fuzz`` marker (excluded from tier-1 by addopts; the CI
``slowfuzz`` stage selects it), matching ``tests/check/test_fuzz.py``.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.metrics import (
    geometric_mean,
    harmonic_speedup,
    instruction_throughput,
    maximum_slowdown,
    weighted_speedup,
)

pytestmark = [pytest.mark.fuzz]

#: Positive IPC-like floats, bounded to keep ratios well inside float range.
ipcs = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)

#: A shared/alone IPC pair of equal length.
ipc_pairs = st.integers(min_value=1, max_value=16).flatmap(
    lambda n: st.tuples(
        st.lists(ipcs, min_size=n, max_size=n),
        st.lists(ipcs, min_size=n, max_size=n),
    )
)


@settings(max_examples=200, deadline=None)
@given(st.lists(ipcs, min_size=1, max_size=16))
def test_weighted_speedup_of_identical_vectors_is_core_count(values):
    # No interference: every app runs at its alone speed, so the system
    # throughput metric must be exactly N.
    assert weighted_speedup(values, values) == pytest.approx(len(values))


@settings(max_examples=200, deadline=None)
@given(ipc_pairs, st.randoms(use_true_random=False))
def test_metrics_are_permutation_invariant(pair, rng):
    shared, alone = pair
    order = list(range(len(shared)))
    rng.shuffle(order)
    shuffled = ([shared[i] for i in order], [alone[i] for i in order])
    rel = 1e-9
    assert weighted_speedup(*shuffled) == pytest.approx(
        weighted_speedup(shared, alone), rel=rel
    )
    assert harmonic_speedup(*shuffled) == pytest.approx(
        harmonic_speedup(shared, alone), rel=rel
    )
    assert maximum_slowdown(*shuffled) == pytest.approx(
        maximum_slowdown(shared, alone), rel=rel
    )
    assert instruction_throughput(shuffled[0]) == pytest.approx(
        instruction_throughput(shared), rel=rel
    )
    assert geometric_mean(shuffled[0]) == pytest.approx(
        geometric_mean(shared), rel=rel
    )


@settings(max_examples=200, deadline=None)
@given(ipc_pairs)
def test_harmonic_never_exceeds_weighted_speedup(pair):
    # AM-HM inequality on the per-app speedups: N * hmean <= sum.
    shared, alone = pair
    harmonic = harmonic_speedup(shared, alone) * len(shared)
    assert harmonic <= weighted_speedup(shared, alone) * (1 + 1e-9)


@settings(max_examples=200, deadline=None)
@given(ipc_pairs)
def test_max_slowdown_at_least_one_when_sharing_never_helps(pair):
    # Clamp shared <= alone elementwise (contention can only slow an app
    # down); then at least one app's slowdown ratio is >= 1.
    shared, alone = pair
    shared = [min(s, a) for s, a in zip(shared, alone)]
    assert maximum_slowdown(shared, alone) >= 1.0 - 1e-12
