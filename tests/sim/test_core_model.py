"""Focused tests for the OoO core model against a scripted hierarchy."""

import pytest

from repro.sim.core_model import OooCore
from repro.sim.trace import Trace
from repro.utils.events import EventQueue


class ScriptedHierarchy:
    """Hierarchy stub with programmable load behaviour."""

    def __init__(self, queue, miss_latency=100, always_hit=False):
        self.queue = queue
        self.miss_latency = miss_latency
        self.always_hit = always_hit
        self.loads = []
        self.stores = []

    def load(self, core_id, addr, on_complete):
        self.loads.append((self.queue.now, addr))
        if self.always_hit:
            return True
        self.queue.schedule_after(self.miss_latency, lambda: on_complete(addr))
        return False

    def store(self, core_id, addr):
        self.stores.append((self.queue.now, addr))


def run_core(trace, queue=None, **kwargs):
    queue = queue or EventQueue()
    hierarchy = kwargs.pop("hierarchy", None) or ScriptedHierarchy(
        queue, **{k: kwargs.pop(k) for k in ("miss_latency", "always_hit")
                  if k in kwargs}
    )
    params = dict(
        core_id=0,
        queue=queue,
        hierarchy=hierarchy,
        trace=trace,
        instruction_limit=trace.total_instructions,
        warmup_instructions=0,
    )
    params.update(kwargs)
    core = OooCore(**params)
    core.keep_running = False  # single core: stop at measurement
    core.start()
    queue.run()
    return core, hierarchy


class TestIdealIpc:
    def test_all_hits_ipc_is_one(self):
        trace = Trace("t", [(9, False, 0)] * 50)
        core, _h = run_core(trace, always_hit=True)
        assert core.measured_ipc == pytest.approx(1.0, abs=0.01)

    def test_stores_do_not_stall(self):
        trace = Trace("t", [(9, True, 0)] * 50)
        core, hierarchy = run_core(trace, miss_latency=500)
        assert core.measured_ipc == pytest.approx(1.0, abs=0.01)
        assert len(hierarchy.stores) == 50


class TestMemoryLevelParallelism:
    def test_independent_misses_overlap(self):
        # 8 loads, no gaps: with MLP they finish in ~latency, not 8x latency.
        trace = Trace("t", [(0, False, i) for i in range(8)])
        core, _h = run_core(trace, miss_latency=200)
        assert core.measured_cycles < 2 * 200

    def test_window_limits_outstanding(self):
        # Window of 4: the 5th load cannot issue until the 1st completes.
        trace = Trace("t", [(0, False, i) for i in range(8)])
        core, _h = run_core(trace, miss_latency=100, window=4)
        assert core.measured_cycles >= 200  # at least two serialized rounds
        assert core.stats.as_dict()["core0.window_stalls"] > 0

    def test_mshr_limit_stalls(self):
        trace = Trace("t", [(0, False, i) for i in range(8)])
        core, _h = run_core(trace, miss_latency=100, max_outstanding_loads=2)
        assert core.stats.as_dict()["core0.mshr_stalls"] > 0
        assert core.measured_cycles >= 4 * 100


class TestMeasurement:
    def test_trace_replays_until_stopped(self):
        queue = EventQueue()
        trace = Trace("t", [(0, False, 0)] * 10)
        hierarchy = ScriptedHierarchy(queue, always_hit=True)
        core = OooCore(0, queue, hierarchy, trace,
                       instruction_limit=100)  # 10x the trace length
        core.keep_running = False
        core.start()
        queue.run()
        assert core.measured_ipc is not None
        assert core.instructions_issued >= 100

    def test_warmup_excluded_from_ipc(self):
        queue = EventQueue()
        trace = Trace("t", [(9, False, 0)] * 100)
        hierarchy = ScriptedHierarchy(queue, always_hit=True)
        warmed_at = []
        core = OooCore(
            0, queue, hierarchy, trace,
            instruction_limit=1000,
            warmup_instructions=400,
            on_warmed=lambda c: warmed_at.append(c.instructions_issued),
        )
        core.keep_running = False
        core.start()
        queue.run()
        assert warmed_at and warmed_at[0] >= 400
        # 600 instructions measured at ~1 IPC.
        assert core.measured_ipc == pytest.approx(1.0, abs=0.02)

    def test_invalid_warmup_rejected(self):
        queue = EventQueue()
        trace = Trace("t", [(0, False, 0)])
        with pytest.raises(ValueError):
            OooCore(0, queue, ScriptedHierarchy(queue), trace,
                    instruction_limit=10, warmup_instructions=10)

    def test_empty_trace_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            OooCore(0, queue, ScriptedHierarchy(queue), Trace("t", []),
                    instruction_limit=10)

    def test_on_measured_callback(self):
        queue = EventQueue()
        trace = Trace("t", [(4, False, 0)] * 20)
        hierarchy = ScriptedHierarchy(queue, always_hit=True)
        measured = []
        core = OooCore(0, queue, hierarchy, trace,
                       instruction_limit=trace.total_instructions,
                       on_measured=measured.append)
        core.keep_running = False
        core.start()
        queue.run()
        assert measured == [core]


class TestStop:
    def test_stop_halts_issue(self):
        queue = EventQueue()
        trace = Trace("t", [(0, False, i) for i in range(100)])
        hierarchy = ScriptedHierarchy(queue, miss_latency=50)
        core = OooCore(0, queue, hierarchy, trace, instruction_limit=1000)
        core.start()
        queue.schedule(10, core.stop)
        queue.run()
        assert core.finished
        assert core.instructions_issued < 1000
