"""Shared small-system fixtures for simulator tests."""

import pytest

from repro.cache.config import CacheConfig
from repro.dram.config import DramConfig
from repro.sim.system import SystemConfig
from repro.sim.trace import Trace

SMALL_L1 = CacheConfig(
    name="l1", num_blocks=16, associativity=2, tag_latency=2, data_latency=2,
    mshr_entries=32,
)
SMALL_L2 = CacheConfig(
    name="l2", num_blocks=64, associativity=4, tag_latency=6, data_latency=8,
)
SMALL_LLC = CacheConfig(
    name="llc", num_blocks=256, associativity=4, tag_latency=8, data_latency=16,
    serial_lookup=True, port_occupancy=2,
)
SMALL_DRAM = DramConfig(num_banks=4, row_buffer_blocks=16, write_buffer_entries=16)


def small_config(mechanism="baseline", num_cores=1, instruction_limit=None,
                 **overrides):
    params = dict(
        num_cores=num_cores,
        mechanism=mechanism,
        l1=SMALL_L1,
        l2=SMALL_L2,
        llc=SMALL_LLC,
        dram=SMALL_DRAM,
        dbi_granularity=16,
        instruction_limit=instruction_limit,
        predictor_epoch_cycles=5_000,
    )
    params.update(overrides)
    return SystemConfig(**params)


def compute_trace(name="compute", refs=100, gap=10):
    """Mostly-compute trace touching a single block (always L1 hits)."""
    return Trace(name, [(gap, False, 0)] * refs)


def streaming_trace(name="stream", refs=200, gap=3, write_every=0, stride=1,
                    start=0):
    """Sequential-scan trace; optional writes every N records."""
    records = []
    for i in range(refs):
        is_write = write_every > 0 and i % write_every == 0
        records.append((gap, is_write, start + i * stride))
    return Trace(name, records)


def random_trace(name="random", refs=200, gap=3, footprint=4096, seed=7,
                 write_fraction=0.3):
    from repro.utils.rng import DeterministicRng

    rng = DeterministicRng(seed)
    records = []
    for _ in range(refs):
        records.append(
            (gap, rng.chance(write_fraction), rng.randint(0, footprint - 1))
        )
    return Trace(name, records)


@pytest.fixture
def make_config():
    return small_config


@pytest.fixture
def traces():
    return {
        "compute": compute_trace,
        "stream": streaming_trace,
        "random": random_trace,
    }
