"""Unit tests for the trace format."""

import pytest

from repro.sim.trace import Trace, merge_traces


class TestValidation:
    def test_valid_trace(self):
        trace = Trace("t", [(2, False, 10), (0, True, 11)])
        assert len(trace) == 2

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            Trace("t", [(-1, False, 10)])

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            Trace("t", [(1, False, -10)])

    def test_non_bool_write_flag_rejected(self):
        with pytest.raises(ValueError):
            Trace("t", [(1, 1, 10)])


class TestDerivedMetrics:
    def test_total_instructions(self):
        trace = Trace("t", [(2, False, 10), (3, True, 11)])
        assert trace.total_instructions == 7  # 2+1 + 3+1

    def test_memory_references(self):
        trace = Trace("t", [(0, False, 1)] * 5)
        assert trace.memory_references == 5

    def test_write_fraction(self):
        trace = Trace("t", [(0, True, 1), (0, False, 2), (0, True, 3), (0, False, 4)])
        assert trace.write_fraction == 0.5

    def test_write_fraction_empty(self):
        assert Trace("t", []).write_fraction == 0.0

    def test_footprint(self):
        trace = Trace("t", [(0, False, 1), (0, False, 1), (0, True, 2)])
        assert trace.footprint_blocks == 2

    def test_mpki_upper_bound(self):
        trace = Trace("t", [(9, False, 1)] * 10)  # 100 instructions, 10 refs
        assert trace.mpki_upper_bound() == 100.0

    def test_iteration(self):
        records = [(1, False, 2), (3, True, 4)]
        assert list(Trace("t", records)) == records


class TestMerge:
    def test_merge_concatenates(self):
        a = Trace("a", [(0, False, 1)])
        b = Trace("b", [(0, True, 2)])
        merged = merge_traces("ab", [a, b])
        assert merged.name == "ab"
        assert merged.records == [(0, False, 1), (0, True, 2)]
