"""Unit tests for multi-programmed metrics."""

import pytest

from repro.sim.metrics import (
    geometric_mean,
    harmonic_speedup,
    instruction_throughput,
    maximum_slowdown,
    weighted_speedup,
)


class TestWeightedSpeedup:
    def test_no_interference_equals_core_count(self):
        assert weighted_speedup([1.0, 2.0], [1.0, 2.0]) == 2.0

    def test_half_speed_everywhere(self):
        assert weighted_speedup([0.5, 1.0], [1.0, 2.0]) == 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])

    def test_zero_ipc_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([0.0], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([], [])


class TestOtherMetrics:
    def test_instruction_throughput(self):
        assert instruction_throughput([0.5, 1.5]) == 2.0

    def test_harmonic_speedup_uniform(self):
        assert harmonic_speedup([0.5, 0.5], [1.0, 1.0]) == pytest.approx(0.5)

    def test_harmonic_punishes_imbalance(self):
        balanced = harmonic_speedup([0.5, 0.5], [1.0, 1.0])
        imbalanced = harmonic_speedup([0.9, 0.1], [1.0, 1.0])
        assert imbalanced < balanced

    def test_maximum_slowdown(self):
        assert maximum_slowdown([0.5, 0.25], [1.0, 1.0]) == 4.0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])
