"""Unit tests for multi-programmed metrics."""

import pytest

from repro.sim.metrics import (
    geometric_mean,
    harmonic_speedup,
    instruction_throughput,
    maximum_slowdown,
    weighted_speedup,
)


class TestWeightedSpeedup:
    def test_no_interference_equals_core_count(self):
        assert weighted_speedup([1.0, 2.0], [1.0, 2.0]) == 2.0

    def test_half_speed_everywhere(self):
        assert weighted_speedup([0.5, 1.0], [1.0, 2.0]) == 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])

    def test_zero_ipc_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([0.0], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([], [])


class TestOtherMetrics:
    def test_instruction_throughput(self):
        assert instruction_throughput([0.5, 1.5]) == 2.0

    def test_harmonic_speedup_uniform(self):
        assert harmonic_speedup([0.5, 0.5], [1.0, 1.0]) == pytest.approx(0.5)

    def test_harmonic_punishes_imbalance(self):
        balanced = harmonic_speedup([0.5, 0.5], [1.0, 1.0])
        imbalanced = harmonic_speedup([0.9, 0.1], [1.0, 1.0])
        assert imbalanced < balanced

    def test_maximum_slowdown(self):
        assert maximum_slowdown([0.5, 0.25], [1.0, 1.0]) == 4.0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_geometric_mean_many_tiny_values_no_underflow(self):
        # A running product of 10k values of 1e-300 underflows to 0.0 by
        # the second factor; the log-domain form returns the exact mean.
        assert geometric_mean([1e-300] * 10_000) == pytest.approx(1e-300)

    def test_geometric_mean_many_huge_values_no_overflow(self):
        assert geometric_mean([1e300] * 10_000) == pytest.approx(1e300)

    def test_geometric_mean_mixed_magnitudes(self):
        # gmean(1e-300, 1e300) = 1 exactly; the naive product hits 0 or inf
        # depending on evaluation order.
        assert geometric_mean([1e-300, 1e300]) == pytest.approx(1.0)
