"""External trace ingestion: parsing, registry, drift refusal, round-trip."""

import json
import os

import pytest

from repro.analysis.scaling import SCALES
from repro.sim.ingest import (
    REGISTRY_NAME,
    detect_format,
    file_sha256,
    ingest_trace,
    load_registry,
    parse_gem5_trace,
    registered_trace,
)
from repro.sim.system import System
from repro.sim.tracefile import load_trace, save_trace

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "gem5_sample.trace")


class TestParseGem5:
    def test_fixture_parses(self):
        with open(FIXTURE) as handle:
            trace = parse_gem5_trace(handle, "gem5_sample")
        assert len(trace.records) == 96
        assert trace.records[0][0] == 0  # first record carries no gap
        assert any(is_write for _g, is_write, _a in trace.records)
        assert any(not is_write for _g, is_write, _a in trace.records)

    def test_addresses_become_blocks(self):
        trace = parse_gem5_trace(
            ["0 r 0x80", "1000 w 128", "2000 r 64"], "t", block_bytes=64
        )
        assert [addr for _g, _w, addr in trace.records] == [2, 2, 1]

    def test_gap_scaling_and_clamp(self):
        trace = parse_gem5_trace(
            ["0 r 0", "5000 r 0", "100000000 r 0"],
            "t", gap_scale=1000, max_gap=200,
        )
        assert [gap for gap, _w, _a in trace.records] == [0, 5, 200]

    @pytest.mark.parametrize("lines,fragment", [
        (["0 r"], "truncated"),
        (["x r 0"], "bad tick"),
        (["-5 r 0"], "negative tick"),
        (["1000 r 0", "500 r 0"], "back in time"),
        (["0 flush 0"], "unknown command"),
        (["0 r zz"], "bad address"),
        (["0 r -64"], "negative address"),
        (["# only a comment"], "no records"),
        ([], "no records"),
    ])
    def test_malformed_rejected(self, lines, fragment):
        with pytest.raises(ValueError, match=fragment):
            parse_gem5_trace(lines, "t")

    def test_errors_carry_line_numbers(self):
        with pytest.raises(ValueError, match="t:3"):
            parse_gem5_trace(["0 r 0", "10 w 0", "5 r 0"], "t")


class TestIngest:
    def test_round_trip_stats_identical(self, tmp_path):
        """An ingested trace replays identically to a direct save/load."""
        registry_dir = str(tmp_path / "registry")
        entry = ingest_trace(FIXTURE, registry_dir, name="ext")
        via_registry = registered_trace(registry_dir, "ext",
                                        expect_sha=entry["sha256"])

        with open(FIXTURE) as handle:
            direct = parse_gem5_trace(handle, "ext")
        direct_path = str(tmp_path / "direct.dbitrace")
        save_trace(direct, direct_path)
        via_file = load_trace(direct_path)

        assert via_registry.records == via_file.records
        config = SCALES["quick"].system_config("dbi")
        a = System(config, [via_registry]).run()
        b = System(config, [via_file]).run()
        assert a.to_dict() == b.to_dict()

    def test_detect_format(self, tmp_path):
        assert detect_format(FIXTURE) == "gem5"
        native = str(tmp_path / "native.dbitrace")
        save_trace(parse_gem5_trace(["0 r 0"], "t"), native)
        assert detect_format(native) == "dbitrace"

    def test_dbitrace_source_revalidated(self, tmp_path):
        native = str(tmp_path / "native.dbitrace")
        save_trace(parse_gem5_trace(["0 r 0", "9000 w 64"], "orig"), native)
        entry = ingest_trace(native, str(tmp_path / "reg"), name="renamed")
        trace = registered_trace(str(tmp_path / "reg"), "renamed")
        assert trace.name == "renamed"
        assert entry["source_format"] == "dbitrace"

    def test_truncated_container_rejected(self, tmp_path):
        native = str(tmp_path / "broken.dbitrace")
        save_trace(parse_gem5_trace(["0 r 0", "9000 w 64"], "t"), native)
        data = open(native, "rb").read()
        open(native, "wb").write(data[:-3])
        with pytest.raises(ValueError):
            ingest_trace(native, str(tmp_path / "reg"))

    def test_bad_names_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not registrable"):
            ingest_trace(FIXTURE, str(tmp_path), name="../escape")

    def test_registry_is_atomic_json(self, tmp_path):
        registry_dir = str(tmp_path / "reg")
        ingest_trace(FIXTURE, registry_dir, name="a")
        ingest_trace(FIXTURE, registry_dir, name="b")
        registry = load_registry(registry_dir)
        assert sorted(registry["traces"]) == ["a", "b"]
        raw = json.load(open(os.path.join(registry_dir, REGISTRY_NAME)))
        assert raw["format"] == 1


class TestDriftRefusal:
    def test_unregistered_refused(self, tmp_path):
        ingest_trace(FIXTURE, str(tmp_path), name="ext")
        with pytest.raises(ValueError, match="not registered"):
            registered_trace(str(tmp_path), "ghost")

    def test_pinned_sha_mismatch_refused(self, tmp_path):
        ingest_trace(FIXTURE, str(tmp_path), name="ext")
        with pytest.raises(ValueError, match="pinned sha"):
            registered_trace(str(tmp_path), "ext", expect_sha="0" * 64)

    def test_byte_drift_refused(self, tmp_path):
        entry = ingest_trace(FIXTURE, str(tmp_path), name="ext")
        path = os.path.join(str(tmp_path), entry["file"])
        with open(path, "ab") as handle:
            handle.write(b"\x00")
        assert file_sha256(path) != entry["sha256"]
        with pytest.raises(ValueError, match="drifted"):
            registered_trace(str(tmp_path), "ext")
