"""Tests for the per-event time-share profiler (`repro.sim.profiler`).

The profiler must be strictly observational: a profiled run produces results
byte-identical to an unprofiled one, and with the hook unset the kernel
behaves exactly as before.
"""

from repro.analysis.scaling import SCALES
from repro.sim.profiler import SimProfiler, component_of
from repro.sim.system import run_system
from repro.utils.events import EventQueue


class TestZeroPerturbation:
    def test_profiled_run_is_byte_identical(self):
        """The acceptance contract: attaching the profiler changes nothing."""
        scale = SCALES["quick"]
        trace = scale.benchmark_trace("mcf", refs=2000)
        config = scale.system_config("dbi+awb")
        plain = run_system(config, [trace])
        profiler = SimProfiler()
        profiled = run_system(config, [trace], profiler=profiler)
        assert plain.to_dict() == profiled.to_dict()
        assert profiler.calls > 0

    def test_disabled_hook_is_the_default(self):
        queue = EventQueue()
        assert queue.profiler is None

    def test_profiler_counts_every_callback_including_audit(self):
        queue = EventQueue()
        profiler = SimProfiler()
        queue.profiler = profiler
        queue.schedule(1, lambda: None)
        queue.schedule(1, lambda: None, audit=True)
        queue.schedule(2, lambda: None)
        queue.run()
        assert profiler.calls == 3
        assert queue.events_processed == 2  # audit stays unaccounted

    def test_profiler_does_not_swallow_exceptions(self):
        queue = EventQueue()
        profiler = SimProfiler()
        queue.profiler = profiler

        def boom():
            raise RuntimeError("callback failure")

        queue.schedule(1, boom)
        try:
            queue.run()
        except RuntimeError:
            pass
        else:  # pragma: no cover - the raise must propagate
            raise AssertionError("exception was swallowed")
        assert profiler.calls == 1  # timed despite the raise


class TestAttribution:
    def test_component_of_maps_known_modules(self):
        assert component_of("repro.sim.core_model") == "core"
        assert component_of("repro.sim.hierarchy") == "hierarchy"
        assert component_of("repro.cache.port") == "llc-port"
        assert component_of("repro.cache.cache") == "cache"
        assert component_of("repro.mechanisms.dbi_mech") == "mechanism"
        assert component_of("repro.dram.controller") == "dram"
        assert component_of("repro.check.engine") == "check"
        assert component_of("some.third.party") == "other"

    def test_sites_aggregate_calls_and_seconds(self):
        profiler = SimProfiler()

        def tick():
            pass

        for _ in range(5):
            profiler(tick)
        sites = profiler.top_sites()
        assert len(sites) == 1
        site, calls, seconds = sites[0]
        assert "tick" in site
        assert calls == 5
        assert seconds >= 0.0
        assert profiler.seconds >= seconds

    def test_component_shares_and_report_shapes(self):
        queue = EventQueue()
        profiler = SimProfiler()
        queue.profiler = profiler
        queue.schedule(1, lambda: None)
        queue.run()
        shares = profiler.component_shares()
        assert sum(calls for calls, _ in shares.values()) == 1
        report = profiler.to_dict(wall_seconds=0.5)
        assert report["events_profiled"] == 1
        assert report["wall_seconds"] == 0.5
        assert set(report["components"]) == set(shares)
        text = profiler.to_text(wall_seconds=0.5)
        assert "profiled 1 callbacks" in text
