"""Regression tests: SimulationResult.stats must cover every stat group.

Historically ``System._collect`` flattened only a subset of the groups that
``_all_stat_groups`` resets — the DBI, miss-predictor, L1/L2 cache and MSHR
groups were silently dropped, so ``dbi.*`` and ``predictor.*`` keys never
reached consumers (which then read 0 via ``.get(..., 0)``). These tests pin
collection and reset to the same group list, and pin the CLB accounting fix
(bypassed-but-resident blocks are not LLC misses).
"""

import pytest

from repro.sim.system import SimulationResult, run_system
from tests.sim.conftest import random_trace, small_config


def dbi_result(mechanism="dbi+awb+clb", refs=500, **overrides):
    trace = random_trace(refs=refs, write_fraction=0.4)
    return run_system(small_config(mechanism, **overrides), [trace])


class TestStatsCoverage:
    def test_dbi_and_predictor_groups_collected(self):
        result = dbi_result("dbi+awb+clb")
        assert any(k.startswith("dbi.") for k in result.stats)
        assert any(k.startswith("predictor.") for k in result.stats)
        # The DBI saw the writeback traffic: its counters are live, not 0.
        assert result.stats["dbi.queries"] > 0
        assert result.stats["dbi.writes"] > 0

    def test_private_cache_and_mshr_groups_collected(self):
        result = dbi_result("dbi")
        assert any(k.startswith("l1_core0.") for k in result.stats)
        assert any(k.startswith("l2_core0.") for k in result.stats)
        assert any(k.startswith("l1mshr0.") for k in result.stats)

    def test_per_core_groups_do_not_clobber(self):
        traces = [
            random_trace("a", refs=300, seed=1, write_fraction=0.4),
            random_trace("b", refs=300, seed=2, write_fraction=0.4),
        ]
        result = run_system(small_config(num_cores=2), traces)
        # Both cores' private-cache groups survive flattening side by side.
        for core in (0, 1):
            assert any(
                k.startswith(f"l1_core{core}.") for k in result.stats
            ), f"core {core} L1 stats missing"
            assert any(
                k.startswith(f"l2_core{core}.") for k in result.stats
            ), f"core {core} L2 stats missing"

    def test_collection_matches_reset_groups(self):
        """Every group _core_warmed resets must appear in the result."""
        from repro.sim.system import System

        trace = random_trace(refs=300, write_fraction=0.4)
        system = System(small_config("dbi+awb+clb"), [trace])
        expected = {group.name for group in system._all_stat_groups()}
        result = system.run()
        collected = {key.split(".")[0] for key in result.stats}
        assert expected == collected


class TestClbMpkiAccounting:
    def test_bypassed_hits_excluded_from_mpki(self):
        stats = {
            "mech.read_misses": 10,
            "mech.bypassed_lookups": 6,
            "mech.bypassed_hits": 4,
        }
        result = SimulationResult(
            mechanism="dbi+clb", trace_names=["t"], ipc=[1.0], cycles=[1000],
            instructions=[1000], total_instructions_issued=1000, stats=stats,
            events_processed=1,
        )
        # 10 true misses + (6 - 4) bypassed true misses = 12 per kilo-instr.
        assert result.llc_mpki == pytest.approx(12.0)

    def test_clb_mpki_matches_tadip(self):
        """Paper Section 6.1: CLB leaves LLC MPKI unchanged.

        Bypassed-but-resident blocks used to count as misses, inflating
        dbi+clb's MPKI over TA-DIP's on the same trace.
        """
        import dataclasses

        from repro.analysis.scaling import QUICK_SCALE

        scale = dataclasses.replace(
            QUICK_SCALE, name="tiny", refs_single_core=6_000
        )
        trace = scale.benchmark_trace("mcf")
        tadip = run_system(scale.system_config("tadip"), [trace])
        clb = run_system(
            scale.system_config("dbi+clb", predictor_epoch_cycles=2_000),
            [trace],
        )
        assert clb.stats.get("mech.bypassed_lookups", 0) > 0, (
            "trace too small to trigger CLB bypasses; regression test is vacuous"
        )
        assert clb.llc_mpki == pytest.approx(tadip.llc_mpki, rel=0.02)
