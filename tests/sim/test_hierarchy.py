"""Tests for the three-level hierarchy plumbing."""

import pytest

from repro.cache.cache import Cache
from repro.cache.config import CacheConfig
from repro.cache.port import TagPort
from repro.dram.config import DramConfig
from repro.dram.controller import MemoryController
from repro.mechanisms.registry import make_mechanism
from repro.sim.hierarchy import Hierarchy
from repro.utils.events import EventQueue

L1 = CacheConfig(name="l1", num_blocks=8, associativity=2,
                 tag_latency=2, data_latency=2)
L2 = CacheConfig(name="l2", num_blocks=32, associativity=4,
                 tag_latency=6, data_latency=8)
LLC = CacheConfig(name="llc", num_blocks=128, associativity=4,
                  tag_latency=8, data_latency=16, serial_lookup=True)


@pytest.fixture
def rig():
    queue = EventQueue()
    memory = MemoryController(queue, DramConfig(num_banks=4, row_buffer_blocks=16,
                                                write_buffer_entries=8))
    llc = Cache(LLC)
    port = TagPort(queue, occupancy=1)
    mechanism = make_mechanism("baseline", queue=queue, llc=llc, port=port,
                               memory=memory, mapper=memory.mapper,
                               dbi_granularity=8)
    hierarchy = Hierarchy(queue, num_cores=2, l1_config=L1, l2_config=L2,
                          mechanism=mechanism)
    return queue, hierarchy, mechanism


def do_load(queue, hierarchy, addr, core=0):
    done = []
    hit = hierarchy.load(core, addr, done.append)
    queue.run()
    return hit, done


class TestLoadPath:
    def test_cold_load_fills_all_levels(self, rig):
        queue, hierarchy, _mech = rig
        hit, done = do_load(queue, hierarchy, 100)
        assert not hit
        assert done == [100]
        assert hierarchy.l1s[0].contains(100)
        assert hierarchy.l2s[0].contains(100)

    def test_l1_hit_is_synchronous(self, rig):
        queue, hierarchy, _mech = rig
        do_load(queue, hierarchy, 100)
        hit, done = do_load(queue, hierarchy, 100)
        assert hit
        assert done == []  # callback not used for synchronous hits

    def test_l2_hit_after_l1_eviction(self, rig):
        queue, hierarchy, _mech = rig
        do_load(queue, hierarchy, 0)
        # Evict block 0 from the tiny L1 (4 sets x 2 ways): fill set 0.
        do_load(queue, hierarchy, 4)
        do_load(queue, hierarchy, 8)
        assert not hierarchy.l1s[0].contains(0)
        stats_before = hierarchy.core_stats[0].as_dict().get(
            "hier_core0.l2_hits", 0)
        do_load(queue, hierarchy, 0)
        stats_after = hierarchy.core_stats[0].as_dict()["hier_core0.l2_hits"]
        assert stats_after == stats_before + 1

    def test_mshr_merges_same_block(self, rig):
        queue, hierarchy, _mech = rig
        done = []
        hierarchy.load(0, 50, done.append)
        hierarchy.load(0, 50, done.append)
        queue.run()
        assert done == [50, 50]
        assert hierarchy.core_stats[0].as_dict()["hier_core0.l1_misses"] == 2
        # Only one LLC read happened.
        assert hierarchy.core_stats[0].as_dict()["hier_core0.llc_reads"] == 1

    def test_cores_have_private_caches(self, rig):
        queue, hierarchy, _mech = rig
        do_load(queue, hierarchy, 100, core=0)
        assert hierarchy.l1s[0].contains(100)
        assert not hierarchy.l1s[1].contains(100)


class TestStorePath:
    def test_store_hit_dirties_l1(self, rig):
        queue, hierarchy, _mech = rig
        do_load(queue, hierarchy, 100)
        hierarchy.store(0, 100)
        assert hierarchy.l1s[0].is_dirty(100)

    def test_store_miss_allocates_and_dirties(self, rig):
        queue, hierarchy, _mech = rig
        hierarchy.store(0, 100)
        queue.run()
        assert hierarchy.l1s[0].is_dirty(100)

    def test_writeback_cascade_reaches_llc(self, rig):
        queue, hierarchy, mech = rig
        # Dirty a block, then force it down: L1 set 0 holds addrs 0,4,8...
        hierarchy.store(0, 0)
        queue.run()
        # Evict from L1 (dirty -> L2), then from L2 (dirty -> LLC writeback).
        for addr in (4, 8):  # L1 set 0 pressure
            do_load(queue, hierarchy, addr)
        assert hierarchy.l2s[0].is_dirty(0)
        # L2 set 0 holds addrs 0,8,16,24,...: pressure it.
        for addr in (16, 24, 32, 40, 48):
            do_load(queue, hierarchy, addr)
        queue.run()
        assert not hierarchy.l2s[0].contains(0)
        assert mech.llc.is_dirty(0)

    def test_stores_count_in_stats(self, rig):
        queue, hierarchy, _mech = rig
        hierarchy.store(0, 1)
        queue.run()  # let the write-allocate fill land
        hierarchy.store(0, 1)
        queue.run()
        flat = hierarchy.core_stats[0].as_dict()
        assert flat["hier_core0.store_misses"] == 1
        assert flat["hier_core0.store_hits"] == 1


class TestIdle:
    def test_idle_after_quiesce(self, rig):
        queue, hierarchy, _mech = rig
        do_load(queue, hierarchy, 7)
        assert hierarchy.is_idle()

    def test_not_idle_with_outstanding_miss(self, rig):
        queue, hierarchy, _mech = rig
        hierarchy.load(0, 7, lambda a: None)
        assert not hierarchy.is_idle()
        queue.run()
        assert hierarchy.is_idle()
