"""Tests for the binary trace container."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import Trace
from repro.sim.tracefile import (
    _unzigzag,
    _zigzag,
    load_trace,
    save_trace,
)


class TestRoundTrip:
    def test_simple_round_trip(self, tmp_path):
        trace = Trace("demo", [(3, False, 100), (0, True, 101), (7, False, 50)])
        path = tmp_path / "demo.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == "demo"
        assert loaded.records == trace.records

    def test_spec_trace_round_trip(self, tmp_path):
        from repro.workloads.spec import spec_trace

        trace = spec_trace("lbm", 2000)
        path = tmp_path / "lbm.trace"
        save_trace(trace, path)
        assert load_trace(path).records == trace.records

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.trace"
        save_trace(Trace("empty", []), path)
        loaded = load_trace(path)
        assert loaded.records == []

    def test_streaming_traces_compress_well(self, tmp_path):
        trace = Trace("stream", [(2, False, addr) for addr in range(5000)])
        size = save_trace(trace, tmp_path / "s.trace")
        assert size < 5000 * 4  # well under 4 bytes/record

    @settings(max_examples=50, deadline=None)
    @given(
        records=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.booleans(),
                st.integers(min_value=0, max_value=2**40),
            ),
            max_size=100,
        )
    )
    def test_round_trip_property(self, records):
        import tempfile
        from pathlib import Path

        trace = Trace("prop", records)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "prop.trace"
            save_trace(trace, path)
            assert load_trace(path).records == records


class TestErrors:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_bytes(b"NOTATRACE")
        with pytest.raises(ValueError, match="not a DBITRACE"):
            load_trace(path)

    def test_truncated_file_rejected(self, tmp_path):
        trace = Trace("t", [(1, False, 10)] * 50)
        path = tmp_path / "t.trace"
        save_trace(trace, path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 5])
        with pytest.raises(ValueError):
            load_trace(path)

    def test_wrong_version_rejected(self, tmp_path):
        trace = Trace("t", [])
        path = tmp_path / "t.trace"
        save_trace(trace, path)
        blob = bytearray(path.read_bytes())
        blob[8] = 99  # version field
        path.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="unsupported version"):
            load_trace(path)

    @pytest.mark.parametrize(
        "keep",
        [
            9,  # mid version field
            11,  # mid name length
            13,  # mid trace name
            16,  # mid record count
        ],
    )
    def test_truncated_header_raises_value_error(self, tmp_path, keep):
        # Regression: short header reads used to surface as struct.error
        # (undocumented) instead of the documented ValueError.
        path = tmp_path / "t.trace"
        save_trace(Trace("abc", [(1, False, 10)]), path)
        path.write_bytes(path.read_bytes()[:keep])
        with pytest.raises(ValueError, match="truncated"):
            load_trace(path)

    def test_unbounded_varint_rejected(self, tmp_path):
        # Regression: _read_varint accepted arbitrarily long continuation
        # chains; a corrupt (or adversarial) stream must fail, not spin
        # building a huge int.
        path = tmp_path / "t.trace"
        save_trace(Trace("t", []), path)
        blob = path.read_bytes()
        # Claim one record, then feed 64 continuation bytes as its gap.
        import struct as struct_module

        blob = blob[:-8] + struct_module.pack("<Q", 1) + b"\x80" * 64
        path.write_bytes(blob)
        with pytest.raises(ValueError, match="varint"):
            load_trace(path)


class TestZigzag:
    def test_huge_positive_delta_round_trips(self, tmp_path):
        # Regression: the C idiom (v << 1) ^ (v >> 63) corrupted
        # non-negative deltas >= 2**63 under Python's unbounded ints.
        records = [(0, False, 0), (0, False, 2**63 + 12345)]
        path = tmp_path / "big.trace"
        save_trace(Trace("big", records), path)
        assert load_trace(path).records == records

    @settings(max_examples=100, deadline=None)
    @given(value=st.integers(min_value=-(2**80), max_value=2**80))
    def test_zigzag_round_trip_property(self, value):
        encoded = _zigzag(value)
        assert encoded >= 0  # varints only carry non-negative values
        assert _unzigzag(encoded) == value

    @settings(max_examples=25, deadline=None)
    @given(
        addrs=st.lists(
            # Full 64-bit address space: deltas span ±(2**64 - 1), the
            # worst case the 10-byte varint cap is sized for.
            st.integers(min_value=0, max_value=2**64 - 1),
            min_size=1,
            max_size=20,
        )
    )
    def test_extreme_address_round_trip(self, addrs):
        import tempfile
        from pathlib import Path

        records = [(0, False, addr) for addr in addrs]
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "x.trace"
            save_trace(Trace("x", records), path)
            assert load_trace(path).records == records
