"""Tests for the binary trace container."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import Trace
from repro.sim.tracefile import load_trace, save_trace


class TestRoundTrip:
    def test_simple_round_trip(self, tmp_path):
        trace = Trace("demo", [(3, False, 100), (0, True, 101), (7, False, 50)])
        path = tmp_path / "demo.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == "demo"
        assert loaded.records == trace.records

    def test_spec_trace_round_trip(self, tmp_path):
        from repro.workloads.spec import spec_trace

        trace = spec_trace("lbm", 2000)
        path = tmp_path / "lbm.trace"
        save_trace(trace, path)
        assert load_trace(path).records == trace.records

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.trace"
        save_trace(Trace("empty", []), path)
        loaded = load_trace(path)
        assert loaded.records == []

    def test_streaming_traces_compress_well(self, tmp_path):
        trace = Trace("stream", [(2, False, addr) for addr in range(5000)])
        size = save_trace(trace, tmp_path / "s.trace")
        assert size < 5000 * 4  # well under 4 bytes/record

    @settings(max_examples=50, deadline=None)
    @given(
        records=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.booleans(),
                st.integers(min_value=0, max_value=2**40),
            ),
            max_size=100,
        )
    )
    def test_round_trip_property(self, records):
        import tempfile
        from pathlib import Path

        trace = Trace("prop", records)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "prop.trace"
            save_trace(trace, path)
            assert load_trace(path).records == records


class TestErrors:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_bytes(b"NOTATRACE")
        with pytest.raises(ValueError, match="not a DBITRACE"):
            load_trace(path)

    def test_truncated_file_rejected(self, tmp_path):
        trace = Trace("t", [(1, False, 10)] * 50)
        path = tmp_path / "t.trace"
        save_trace(trace, path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 5])
        with pytest.raises(ValueError):
            load_trace(path)

    def test_wrong_version_rejected(self, tmp_path):
        trace = Trace("t", [])
        path = tmp_path / "t.trace"
        save_trace(trace, path)
        blob = bytearray(path.read_bytes())
        blob[8] = 99  # version field
        path.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="unsupported version"):
            load_trace(path)
