"""Integration tests for the full system."""

import pytest

from repro.sim.system import System, run_system
from tests.sim.conftest import (
    compute_trace,
    random_trace,
    small_config,
    streaming_trace,
)


class TestSingleCore:
    def test_pure_compute_ipc_near_one(self):
        # One block, always L1-hit after the first touch: IPC -> ~1.
        result = run_system(small_config(), [compute_trace(refs=200, gap=20)])
        assert result.ipc[0] > 0.9

    def test_memory_bound_ipc_below_compute_bound(self):
        compute = run_system(small_config(), [compute_trace(refs=200, gap=20)])
        bound = run_system(
            small_config(), [random_trace(refs=200, gap=2, footprint=65536)]
        )
        assert bound.ipc[0] < compute.ipc[0]

    def test_result_structure(self):
        trace = streaming_trace(refs=100)
        result = run_system(small_config(), [trace])
        assert result.mechanism == "baseline"
        assert result.trace_names == ["stream"]
        assert len(result.ipc) == 1
        assert result.cycles[0] > 0
        # Measured window = instructions after warmup (default 40%).
        expected = trace.total_instructions - int(trace.total_instructions * 0.4)
        assert result.instructions[0] == expected
        assert result.events_processed > 0

    def test_writes_reach_memory(self):
        # Write-heavy working set larger than the whole hierarchy.
        trace = streaming_trace(refs=2000, gap=1, write_every=1, stride=1)
        result = run_system(small_config(), [trace])
        assert result.stats["dram.dram_writes_performed"] > 0
        assert result.memory_wpki > 0

    def test_llc_hits_filter_memory_reads(self):
        # Working set fits in LLC (256 blocks) but not in L2 (64 blocks):
        # the second pass hits in the LLC.
        trace = streaming_trace(refs=150, gap=2, stride=1)
        double = streaming_trace(refs=150, gap=2, stride=1)
        from repro.sim.trace import merge_traces

        result = run_system(
            small_config(), [merge_traces("two-pass", [trace, double])]
        )
        assert result.stats["mech.read_hits"] > 0


class TestDeterminism:
    def test_same_seed_same_result(self):
        config = small_config("dbi+awb+clb")
        trace = random_trace(refs=500, write_fraction=0.4)
        first = run_system(config, [trace])
        second = run_system(config, [trace])
        assert first.ipc == second.ipc
        assert first.stats == second.stats
        assert first.events_processed == second.events_processed


class TestAllMechanismsRun:
    @pytest.mark.parametrize(
        "mechanism",
        ["baseline", "tadip", "dawb", "vwq", "skipcache",
         "dbi", "dbi+awb", "dbi+clb", "dbi+awb+clb"],
    )
    def test_mechanism_completes_and_is_consistent(self, mechanism):
        trace = random_trace(refs=400, footprint=8192, write_fraction=0.4)
        system = System(small_config(mechanism), [trace])
        result = system.run(max_events=2_000_000)
        assert result.ipc[0] > 0
        system.mechanism.check_invariants()
        # The hierarchy and memory must fully quiesce.
        assert system.hierarchy.is_idle()
        assert system.memory.is_idle()


class TestMultiCore:
    def test_two_cores_measured_independently(self):
        config = small_config(num_cores=2)
        traces = [
            streaming_trace("a", refs=300, write_every=4),
            random_trace("b", refs=300),
        ]
        result = run_system(config, traces)
        assert len(result.ipc) == 2
        assert all(ipc > 0 for ipc in result.ipc)
        assert result.trace_names == ["a", "b"]

    def test_contention_slows_cores_down(self):
        heavy = lambda name, seed: random_trace(
            name, refs=400, gap=1, footprint=65536, seed=seed, write_fraction=0.5
        )
        alone = run_system(small_config(), [heavy("x", 1)])
        shared = run_system(
            small_config(num_cores=2),
            [heavy("x", 1), heavy("y", 2)],
        )
        # Sharing one memory channel cannot make core 0 faster.
        assert shared.ipc[0] <= alone.ipc[0] * 1.05

    def test_mismatched_trace_count_rejected(self):
        with pytest.raises(ValueError):
            System(small_config(num_cores=2), [compute_trace()])


class TestRunBudget:
    def test_budget_exhaustion_raises(self):
        trace = random_trace(refs=5000, footprint=65536)
        system = System(small_config(), [trace])
        with pytest.raises(RuntimeError):
            system.run(max_events=100)


class TestPkiMetrics:
    def test_tag_lookups_pki_positive(self):
        result = run_system(
            small_config(), [random_trace(refs=400, footprint=65536)]
        )
        assert result.tag_lookups_pki > 0

    def test_bypasses_counted_in_mpki(self):
        trace = random_trace(refs=400, footprint=65536, write_fraction=0.0)
        result = run_system(small_config("dbi+clb",
                                         predictor_epoch_cycles=300), [trace])
        # Whether or not bypasses happened, MPKI must be finite and positive.
        assert result.llc_mpki > 0
