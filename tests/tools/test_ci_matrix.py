"""CI plumbing stays consistent: workflows reference real stages and the
coverage ratchet only ever moves the floor up."""

import json
import os
import re
import subprocess
import sys

import pytest

yaml = pytest.importorskip("yaml")

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
CI_SH = os.path.join(REPO, "tools", "ci.sh")
WORKFLOWS = [
    os.path.join(REPO, ".github", "workflows", "ci.yml"),
    os.path.join(REPO, ".github", "workflows", "nightly.yml"),
]
RATCHET = os.path.join(REPO, "tools", "coverage_ratchet.py")


def script_stages():
    """ALL_STAGES as declared in tools/ci.sh (possibly spanning lines)."""
    text = open(CI_SH).read()
    match = re.search(r"ALL_STAGES=\(([^)]*)\)", text)
    assert match, "ALL_STAGES declaration not found in tools/ci.sh"
    return match.group(1).split()


def workflow_stage_references():
    """Every stage token a workflow passes to tools/ci.sh."""
    referenced = set()
    for path in WORKFLOWS:
        doc = yaml.safe_load(open(path))
        for job in doc.get("jobs", {}).values():
            for include in (
                job.get("strategy", {}).get("matrix", {}).get("include", [])
            ):
                referenced.update(str(include.get("stages", "")).split())
            for step in job.get("steps", []):
                run = step.get("run") or ""
                for line in run.splitlines():
                    line = line.strip()
                    if "ci.sh" not in line:
                        continue
                    tail = line.split("ci.sh", 1)[1]
                    # Template expressions (${{ matrix.stages }}) are
                    # covered by the matrix includes above.
                    tail = re.sub(r"\$\{\{.*?\}\}", "", tail)
                    for token in tail.split():
                        if token.startswith("-"):
                            continue
                        referenced.add(token)
    return referenced


class TestWorkflowStageConsistency:
    def test_referenced_stages_exist(self):
        stages = set(script_stages())
        referenced = workflow_stage_references()
        assert referenced, "no stage references found in workflows"
        unknown = referenced - stages
        assert not unknown, f"workflows reference unknown stages: {unknown}"

    def test_every_stage_is_referenced_somewhere(self):
        stages = set(script_stages())
        referenced = workflow_stage_references()
        orphaned = stages - referenced
        assert not orphaned, (
            f"stages never run by any workflow: {orphaned}"
        )

    def test_list_flag_matches_declaration(self):
        out = subprocess.run(
            ["bash", CI_SH, "--list"], capture_output=True, text=True,
            check=True, cwd=REPO,
        )
        assert out.stdout.split() == script_stages()

    def test_no_duplicate_stages(self):
        stages = script_stages()
        assert len(stages) == len(set(stages))


def run_ratchet(tmp_path, percent, floor):
    coverage = tmp_path / "coverage.json"
    coverage.write_text(
        json.dumps({"totals": {"percent_covered": percent}})
    )
    floor_file = tmp_path / "floor.txt"
    floor_file.write_text(f"{floor}\n")
    proc = subprocess.run(
        [sys.executable, RATCHET, "--coverage-json", str(coverage),
         "--floor-file", str(floor_file)],
        capture_output=True, text=True,
    )
    return proc, int(floor_file.read_text().strip())


class TestCoverageRatchet:
    def test_raises_floor_beyond_margin(self, tmp_path):
        proc, floor = run_ratchet(tmp_path, percent=87.6, floor=80)
        assert proc.returncode == 0
        assert floor == 86  # int(87.6 - 1.0 margin)

    def test_holds_within_margin(self, tmp_path):
        proc, floor = run_ratchet(tmp_path, percent=80.9, floor=80)
        assert proc.returncode == 0
        assert floor == 80

    def test_never_lowers(self, tmp_path):
        proc, floor = run_ratchet(tmp_path, percent=70.0, floor=80)
        assert proc.returncode == 0
        assert floor == 80

    def test_missing_report_is_a_noop(self, tmp_path):
        floor_file = tmp_path / "floor.txt"
        floor_file.write_text("80\n")
        proc = subprocess.run(
            [sys.executable, RATCHET,
             "--coverage-json", str(tmp_path / "absent.json"),
             "--floor-file", str(floor_file)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0
        assert floor_file.read_text().strip() == "80"

    def test_unreadable_report_fails(self, tmp_path):
        coverage = tmp_path / "coverage.json"
        coverage.write_text("{not json")
        floor_file = tmp_path / "floor.txt"
        floor_file.write_text("80\n")
        proc = subprocess.run(
            [sys.executable, RATCHET, "--coverage-json", str(coverage),
             "--floor-file", str(floor_file)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 2
