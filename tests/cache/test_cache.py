"""Unit and property tests for the functional cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.cache.config import CacheConfig


def make_cache(num_blocks=16, associativity=4, replacement="lru"):
    return Cache(
        CacheConfig(
            name="test",
            num_blocks=num_blocks,
            associativity=associativity,
            tag_latency=1,
            data_latency=1,
            replacement=replacement,
        )
    )


class TestBasicOperations:
    def test_insert_then_contains(self):
        cache = make_cache()
        cache.insert(0x10)
        assert cache.contains(0x10)
        assert not cache.contains(0x11)

    def test_lookup_hit_and_miss_counters(self):
        cache = make_cache()
        cache.insert(5)
        assert cache.lookup(5)
        assert not cache.lookup(6)
        flat = cache.stats.as_dict()
        assert flat["test.hits"] == 1
        assert flat["test.misses"] == 1

    def test_insert_existing_is_not_a_fill_eviction(self):
        cache = make_cache()
        cache.insert(5)
        assert cache.insert(5) is None
        assert cache.occupancy == 1

    def test_probe_does_not_touch_stats(self):
        cache = make_cache()
        cache.insert(5)
        cache.probe(5)
        cache.probe(6)
        assert cache.stats.as_dict().get("test.lookups", 0) == 0

    def test_invalidate(self):
        cache = make_cache()
        cache.insert(5, dirty=True)
        state = cache.invalidate(5)
        assert state.addr == 5
        assert state.dirty
        assert not cache.contains(5)
        assert cache.invalidate(5) is None


class TestEvictions:
    def test_fills_all_ways_before_evicting(self):
        cache = make_cache(num_blocks=8, associativity=2)  # 4 sets
        # Addresses 0, 4, 8 all map to set 0 (4 sets).
        assert cache.insert(0) is None
        assert cache.insert(4) is None
        evicted = cache.insert(8)
        assert evicted is not None
        assert evicted.addr == 0  # LRU victim

    def test_eviction_reports_dirty_state(self):
        cache = make_cache(num_blocks=8, associativity=2)
        cache.insert(0, dirty=True)
        cache.insert(4)
        evicted = cache.insert(8)
        assert evicted.addr == 0
        assert evicted.dirty

    def test_hit_changes_victim(self):
        cache = make_cache(num_blocks=8, associativity=2)
        cache.insert(0)
        cache.insert(4)
        cache.lookup(0)  # promote 0
        evicted = cache.insert(8)
        assert evicted.addr == 4

    def test_eviction_counters(self):
        cache = make_cache(num_blocks=8, associativity=2)
        cache.insert(0, dirty=True)
        cache.insert(4)
        cache.insert(8)
        cache.insert(12)
        flat = cache.stats.as_dict()
        assert flat["test.evictions"] == 2
        assert flat["test.dirty_evictions"] == 1

    def test_owner_core_travels_with_eviction(self):
        cache = make_cache(num_blocks=8, associativity=2)
        cache.insert(0, core_id=3)
        cache.insert(4)
        evicted = cache.insert(8)
        assert evicted.owner_core == 3


class TestDirtyBits:
    def test_mark_dirty_and_clean(self):
        cache = make_cache()
        cache.insert(5)
        assert not cache.is_dirty(5)
        assert cache.mark_dirty(5)
        assert cache.is_dirty(5)
        assert cache.mark_clean(5)
        assert not cache.is_dirty(5)

    def test_mark_dirty_absent_block(self):
        cache = make_cache()
        assert not cache.mark_dirty(5)
        assert not cache.is_dirty(5)

    def test_insert_dirty_or_semantics(self):
        cache = make_cache()
        cache.insert(5, dirty=True)
        cache.insert(5, dirty=False)  # re-insert must not clean it
        assert cache.is_dirty(5)

    def test_dirty_count(self):
        cache = make_cache()
        cache.insert(1, dirty=True)
        cache.insert(2)
        cache.insert(3, dirty=True)
        assert cache.dirty_count == 2


class TestTouch:
    def test_touch_promotes_without_stats(self):
        cache = make_cache(num_blocks=8, associativity=2)
        cache.insert(0)
        cache.insert(4)
        assert cache.touch(0)
        cache.insert(8)
        assert cache.contains(0)  # 4 was evicted instead
        assert cache.stats.as_dict().get("test.lookups", 0) == 0

    def test_touch_absent_returns_false(self):
        cache = make_cache()
        assert not cache.touch(99)


class TestLruHalf:
    def test_lru_half_for_stack_policy(self):
        cache = make_cache(num_blocks=8, associativity=4)
        half = cache.lru_half_ways(0)
        assert len(half) == 2

    def test_lru_half_for_non_stack_policy(self):
        cache = make_cache(num_blocks=8, associativity=4, replacement="srrip")
        assert cache.lru_half_ways(0) == [0, 1]


class ReferenceCache:
    """Dict-based reference model for property testing."""

    def __init__(self, num_sets, ways):
        self.num_sets = num_sets
        self.ways = ways
        self.sets = [dict() for _ in range(num_sets)]  # addr -> dirty

    def insert(self, addr, dirty):
        s = self.sets[addr % self.num_sets]
        if addr in s:
            s[addr] = s[addr] or dirty
            return
        if len(s) >= self.ways:
            # We don't model which victim; only occupancy invariants.
            victim = next(iter(s))
            del s[victim]
        s[addr] = dirty

    def occupancy(self):
        return sum(len(s) for s in self.sets)


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=63), st.booleans()),
        max_size=200,
    )
)
def test_structural_invariants_under_random_traffic(ops):
    """Occupancy never exceeds capacity; presence index stays consistent."""
    cache = make_cache(num_blocks=16, associativity=4)
    for addr, dirty in ops:
        cache.insert(addr, dirty=dirty)
        assert cache.occupancy <= 16
        # Every indexed block is valid and in the right set.
        for ways in cache.sets:
            seen = set()
            for block in ways:
                if block.valid:
                    assert block.addr not in seen
                    seen.add(block.addr)
                    assert cache.set_index(block.addr) is not None
        if cache.contains(addr):
            assert cache.probe(addr).addr == addr


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "lookup", "invalidate", "dirty"]),
                  st.integers(min_value=0, max_value=31)),
        max_size=300,
    )
)
def test_presence_matches_shadow_set(ops):
    """The cache's contains() agrees with a shadow model of live addresses."""
    cache = make_cache(num_blocks=64, associativity=64)  # fully associative
    shadow = set()
    for op, addr in ops:
        if op == "insert":
            if len(shadow) < 64 or addr in shadow:
                cache.insert(addr)
                shadow.add(addr)
        elif op == "lookup":
            assert cache.lookup(addr) == (addr in shadow)
        elif op == "invalidate":
            cache.invalidate(addr)
            shadow.discard(addr)
        else:
            assert cache.mark_dirty(addr) == (addr in shadow)
    assert cache.occupancy == len(shadow)
