"""Unit tests for replacement policies."""

import pytest

from repro.cache.replacement import (
    BipPolicy,
    BrripPolicy,
    DipPolicy,
    DrripPolicy,
    DuelingMap,
    LruPolicy,
    PolicySelector,
    RandomPolicy,
    SrripPolicy,
    make_policy,
)
from repro.utils.rng import DeterministicRng


class TestLru:
    def test_initial_victim_is_way_zero(self):
        policy = LruPolicy(num_sets=2, num_ways=4)
        assert policy.victim_way(0) == 0

    def test_hit_promotes_to_mru(self):
        policy = LruPolicy(num_sets=1, num_ways=4)
        policy.on_hit(0, 0)
        assert policy.victim_way(0) == 1

    def test_insert_promotes_to_mru(self):
        policy = LruPolicy(num_sets=1, num_ways=2)
        policy.on_insert(0, 0)
        assert policy.victim_way(0) == 1
        policy.on_insert(0, 1)
        assert policy.victim_way(0) == 0

    def test_classic_sequence(self):
        policy = LruPolicy(num_sets=1, num_ways=3)
        for way in (0, 1, 2):
            policy.on_insert(0, way)
        policy.on_hit(0, 0)  # order now: 1, 2, 0
        assert policy.victim_way(0) == 1

    def test_sets_are_independent(self):
        policy = LruPolicy(num_sets=2, num_ways=2)
        policy.on_hit(0, 0)
        assert policy.victim_way(1) == 0

    def test_invalidate_demotes_to_lru(self):
        policy = LruPolicy(num_sets=1, num_ways=3)
        for way in (0, 1, 2):
            policy.on_insert(0, way)
        policy.on_invalidate(0, 2)
        assert policy.victim_way(0) == 2

    def test_recency_position(self):
        policy = LruPolicy(num_sets=1, num_ways=4)
        for way in (0, 1, 2, 3):
            policy.on_insert(0, way)
        assert policy.recency_position(0, 0) == 0
        assert policy.recency_position(0, 3) == 3

    def test_lru_half_ways(self):
        policy = LruPolicy(num_sets=1, num_ways=4)
        for way in (0, 1, 2, 3):
            policy.on_insert(0, way)
        assert policy.lru_half_ways(0) == [0, 1]


class TestBip:
    def test_mostly_inserts_at_lru(self):
        policy = BipPolicy(num_sets=1, num_ways=4, rng=DeterministicRng(1))
        lru_inserts = 0
        for _ in range(640):
            policy.on_insert(0, 2)
            if policy.victim_way(0) == 2:
                lru_inserts += 1
        # epsilon = 1/64, so ~98% of inserts stay at the LRU position.
        assert lru_inserts > 600

    def test_epsilon_one_behaves_like_lru(self):
        policy = BipPolicy(num_sets=1, num_ways=2, rng=DeterministicRng(1), epsilon=1.0)
        policy.on_insert(0, 0)
        assert policy.victim_way(0) == 1


class TestPolicySelector:
    def test_starts_undecided(self):
        selector = PolicySelector(bits=4)
        assert selector.value == 8
        assert selector.prefers_second

    def test_saturates(self):
        selector = PolicySelector(bits=2)
        for _ in range(10):
            selector.vote_up()
        assert selector.value == 3
        for _ in range(10):
            selector.vote_down()
        assert selector.value == 0
        assert not selector.prefers_second


class TestDuelingMap:
    def test_leader_sets_disjoint_and_present(self):
        dueling = DuelingMap(num_sets=256, num_threads=2, leaders_per_policy=8)
        roles = [dueling.role(s) for s in range(256)]
        a_leaders = [i for i, (r, _t) in enumerate(roles) if r == DuelingMap.LEADER_A]
        b_leaders = [i for i, (r, _t) in enumerate(roles) if r == DuelingMap.LEADER_B]
        assert len(a_leaders) == len(b_leaders) == 16  # 8 per thread per policy
        assert not set(a_leaders) & set(b_leaders)

    def test_each_thread_gets_leaders(self):
        dueling = DuelingMap(num_sets=256, num_threads=4, leaders_per_policy=4)
        owners_a = {t for s in range(256) for r, t in [dueling.role(s)] if r == 1}
        assert owners_a == {0, 1, 2, 3}

    def test_tiny_cache_falls_back_gracefully(self):
        dueling = DuelingMap(num_sets=4, num_threads=8)
        roles = [dueling.role(s)[0] for s in range(4)]
        assert DuelingMap.LEADER_A in roles
        assert DuelingMap.LEADER_B in roles


class TestDip:
    def make(self, num_sets=64, num_ways=4, threads=1):
        return DipPolicy(
            num_sets=num_sets,
            num_ways=num_ways,
            num_threads=threads,
            rng=DeterministicRng(3),
            leaders_per_policy=4,
        )

    def _leader_sets(self, policy, role):
        return [
            s
            for s in range(policy.num_sets)
            if policy.dueling.role(s) == (role, 0)
        ]

    def test_lru_leader_always_inserts_mru(self):
        policy = self.make()
        lru_leader = self._leader_sets(policy, DuelingMap.LEADER_A)[0]
        policy.on_insert(lru_leader, 1)
        assert policy.victim_way(lru_leader) != 1

    def test_misses_in_lru_leader_push_towards_bip(self):
        policy = self.make()
        lru_leader = self._leader_sets(policy, DuelingMap.LEADER_A)[0]
        start = policy.selectors[0].value
        policy.note_miss(lru_leader, core_id=0)
        assert policy.selectors[0].value == start + 1

    def test_misses_in_bip_leader_push_towards_lru(self):
        policy = self.make()
        bip_leader = self._leader_sets(policy, DuelingMap.LEADER_B)[0]
        start = policy.selectors[0].value
        policy.note_miss(bip_leader, core_id=0)
        assert policy.selectors[0].value == start - 1

    def test_follower_misses_do_not_vote(self):
        policy = self.make()
        follower = [
            s
            for s in range(policy.num_sets)
            if policy.dueling.role(s)[0] == DuelingMap.FOLLOWER
        ][0]
        start = policy.selectors[0].value
        policy.note_miss(follower, core_id=0)
        assert policy.selectors[0].value == start

    def test_thread_awareness_separate_selectors(self):
        policy = self.make(threads=2)
        a_leader_t1 = [
            s for s in range(policy.num_sets) if policy.dueling.role(s) == (1, 1)
        ][0]
        policy.note_miss(a_leader_t1, core_id=1)
        assert policy.selectors[0].value == 512  # untouched
        assert policy.selectors[1].value == 513

    def test_other_threads_misses_in_my_leader_ignored(self):
        policy = self.make(threads=2)
        a_leader_t0 = [
            s for s in range(policy.num_sets) if policy.dueling.role(s) == (1, 0)
        ][0]
        policy.note_miss(a_leader_t0, core_id=1)
        assert policy.selectors[0].value == 512


class TestRrip:
    def test_srrip_insert_is_long_not_distant(self):
        policy = SrripPolicy(num_sets=1, num_ways=2)
        policy.on_insert(0, 0)
        # Way 1 was never touched: still distant (max RRPV) -> victim.
        assert policy.victim_way(0) == 1

    def test_hit_promotes_to_zero(self):
        policy = SrripPolicy(num_sets=1, num_ways=2)
        policy.on_insert(0, 0)
        policy.on_insert(0, 1)
        policy.on_hit(0, 0)
        # Aging should evict way 1 (RRPV 2) before way 0 (RRPV 0).
        assert policy.victim_way(0) == 1

    def test_aging_when_no_distant_block(self):
        policy = SrripPolicy(num_sets=1, num_ways=2)
        policy.on_insert(0, 0)
        policy.on_insert(0, 1)
        policy.on_hit(0, 0)
        policy.on_hit(0, 1)
        victim = policy.victim_way(0)  # forces aging loop
        assert victim in (0, 1)

    def test_brrip_mostly_inserts_distant(self):
        policy = BrripPolicy(num_sets=1, num_ways=4, rng=DeterministicRng(5))
        distant = 0
        for _ in range(640):
            policy.on_insert(0, 1)
            if policy._rrpv[0][1] == policy.max_rrpv:
                distant += 1
        assert distant > 600

    def test_drrip_leaders_use_fixed_policies(self):
        policy = DrripPolicy(
            num_sets=64, num_ways=4, rng=DeterministicRng(5), leaders_per_policy=4
        )
        srrip_leader = [
            s for s in range(64) if policy.dueling.role(s) == (DuelingMap.LEADER_A, 0)
        ][0]
        policy.on_insert(srrip_leader, 0)
        assert policy._rrpv[srrip_leader][0] == policy.max_rrpv - 1

    def test_drrip_voting(self):
        policy = DrripPolicy(
            num_sets=64, num_ways=4, rng=DeterministicRng(5), leaders_per_policy=4
        )
        a_leader = [
            s for s in range(64) if policy.dueling.role(s) == (DuelingMap.LEADER_A, 0)
        ][0]
        start = policy.selectors[0].value
        policy.note_miss(a_leader, core_id=0)
        assert policy.selectors[0].value == start + 1


class TestRandomAndFactory:
    def test_random_victim_in_range(self):
        policy = RandomPolicy(num_sets=1, num_ways=8, rng=DeterministicRng(9))
        for _ in range(100):
            assert 0 <= policy.victim_way(0) < 8

    def test_factory_names(self):
        for name, cls in [
            ("lru", LruPolicy),
            ("bip", BipPolicy),
            ("dip", DipPolicy),
            ("tadip", DipPolicy),
            ("srrip", SrripPolicy),
            ("brrip", BrripPolicy),
            ("drrip", DrripPolicy),
            ("random", RandomPolicy),
        ]:
            assert isinstance(make_policy(name, 16, 4), cls)

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_policy("belady", 16, 4)
