"""Unit tests for cache configuration."""

import pytest

from repro.cache.config import (
    CacheConfig,
    paper_l1_config,
    paper_l2_config,
    paper_llc_config,
)


def small(**overrides):
    params = dict(
        name="test", num_blocks=64, associativity=4, tag_latency=2, data_latency=3
    )
    params.update(overrides)
    return CacheConfig(**params)


class TestGeometry:
    def test_num_sets(self):
        assert small().num_sets == 16

    def test_set_index_uses_low_bits(self):
        config = small()
        assert config.set_index(0) == 0
        assert config.set_index(15) == 15
        assert config.set_index(16) == 0
        assert config.set_index(17) == 1

    def test_set_index_bits(self):
        assert small().set_index_bits == 4

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            small(num_blocks=60)
        with pytest.raises(ValueError):
            small(associativity=3)

    def test_associativity_cannot_exceed_capacity(self):
        with pytest.raises(ValueError):
            small(num_blocks=4, associativity=8)

    def test_fully_associative_allowed(self):
        config = small(num_blocks=16, associativity=16)
        assert config.num_sets == 1


class TestLatencies:
    def test_parallel_lookup_hit_latency(self):
        config = small(tag_latency=2, data_latency=3, serial_lookup=False)
        assert config.hit_latency == 3

    def test_serial_lookup_hit_latency(self):
        config = small(tag_latency=10, data_latency=24, serial_lookup=True)
        assert config.hit_latency == 34

    def test_miss_detect_is_tag_latency(self):
        assert small(tag_latency=7).miss_detect_latency == 7

    def test_invalid_latency_rejected(self):
        with pytest.raises(ValueError):
            small(tag_latency=0)


class TestPaperConfigs:
    def test_l1_is_32kb_2way(self):
        config = paper_l1_config()
        assert config.num_blocks * 64 == 32 * 1024
        assert config.associativity == 2
        assert config.mshr_entries == 32

    def test_l2_is_256kb_8way(self):
        config = paper_l2_config()
        assert config.num_blocks * 64 == 256 * 1024
        assert config.associativity == 8

    def test_llc_scales_with_cores(self):
        for cores in (1, 2, 4, 8):
            config = paper_llc_config(cores)
            assert config.num_blocks * 64 == cores * 2 * 1024 * 1024
            assert config.serial_lookup
        assert paper_llc_config(1).associativity == 16
        assert paper_llc_config(8).associativity == 32

    def test_llc_latency_table(self):
        # Paper Table 1: tag 10/12/13/14, data 24/29/31/33.
        assert paper_llc_config(1).tag_latency == 10
        assert paper_llc_config(2).tag_latency == 12
        assert paper_llc_config(4).tag_latency == 13
        assert paper_llc_config(8).tag_latency == 14
        assert paper_llc_config(1).data_latency == 24
        assert paper_llc_config(8).data_latency == 33

    def test_llc_4mb_per_core(self):
        config = paper_llc_config(4, mb_per_core=4)
        assert config.num_blocks * 64 == 16 * 1024 * 1024
        assert config.tag_latency == 14  # slightly slower than the 2MB/core L3
