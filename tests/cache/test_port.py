"""Unit tests for the LLC tag-port contention model."""

import pytest

from repro.cache.port import PortPriority, TagPort
from repro.utils.events import EventQueue


@pytest.fixture
def queue():
    return EventQueue()


def make_port(queue, occupancy=4):
    return TagPort(queue, occupancy=occupancy)


class TestGrantOrdering:
    def test_single_request_granted_immediately(self, queue):
        port = make_port(queue)
        granted = []
        port.request(lambda: granted.append(queue.now))
        queue.run()
        assert granted == [0]

    def test_serialized_by_occupancy(self, queue):
        port = make_port(queue, occupancy=4)
        granted = []
        for _ in range(3):
            port.request(lambda: granted.append(queue.now))
        queue.run()
        assert granted == [0, 4, 8]

    def test_demand_beats_background(self, queue):
        port = make_port(queue, occupancy=4)
        granted = []
        # Occupy the port first so ordering among queued requests matters.
        port.request(lambda: granted.append(("first", queue.now)))
        port.request(
            lambda: granted.append(("bg", queue.now)), PortPriority.BACKGROUND
        )
        port.request(lambda: granted.append(("demand", queue.now)))
        queue.run()
        assert granted[0][0] == "first"
        assert granted[1][0] == "demand"
        assert granted[2][0] == "bg"

    def test_no_preemption_of_inflight_lookup(self, queue):
        port = make_port(queue, occupancy=10)
        granted = []
        port.request(
            lambda: granted.append(("bg", queue.now)), PortPriority.BACKGROUND
        )
        # A demand request arriving at t=1 must wait for the in-flight lookup.
        queue.schedule(1, lambda: port.request(lambda: granted.append(("demand", queue.now))))
        queue.run()
        assert granted == [("bg", 0), ("demand", 10)]

    def test_fifo_within_priority(self, queue):
        port = make_port(queue, occupancy=2)
        granted = []
        for tag in ("a", "b", "c"):
            port.request(
                lambda tag=tag: granted.append(tag), PortPriority.BACKGROUND
            )
        queue.run()
        assert granted == ["a", "b", "c"]


class TestAccounting:
    def test_stats_counters(self, queue):
        port = make_port(queue)
        port.request(lambda: None)
        port.request(lambda: None, PortPriority.BACKGROUND)
        queue.run()
        flat = port.stats.as_dict()
        assert flat["llc_port.requests_demand"] == 1
        assert flat["llc_port.requests_background"] == 1
        assert flat["llc_port.grants"] == 2

    def test_queued_property(self, queue):
        port = make_port(queue)
        port.request(lambda: None)
        port.request(lambda: None)
        assert port.queued == 2
        queue.run()
        assert port.queued == 0

    def test_invalid_occupancy_rejected(self, queue):
        with pytest.raises(ValueError):
            TagPort(queue, occupancy=0)

    def test_requests_during_grant_are_serviced(self, queue):
        port = make_port(queue, occupancy=3)
        granted = []

        def chain():
            granted.append(queue.now)
            if len(granted) < 3:
                port.request(chain)

        port.request(chain)
        queue.run()
        assert granted == [0, 3, 6]
