"""Unit tests for the MSHR file."""

import pytest

from repro.cache.mshr import MshrFile


class TestAllocation:
    def test_new_miss_returns_true(self):
        mshr = MshrFile(capacity=2)
        assert mshr.allocate(5, lambda addr: None)
        assert mshr.outstanding(5)

    def test_merge_returns_false(self):
        mshr = MshrFile(capacity=2)
        mshr.allocate(5, lambda addr: None)
        assert not mshr.allocate(5, lambda addr: None)
        assert len(mshr) == 1

    def test_capacity_enforced(self):
        mshr = MshrFile(capacity=2)
        mshr.allocate(1, lambda addr: None)
        mshr.allocate(2, lambda addr: None)
        assert mshr.is_full
        assert not mshr.can_allocate(3)
        assert mshr.can_allocate(1)  # merge always allowed
        with pytest.raises(RuntimeError):
            mshr.allocate(3, lambda addr: None)

    def test_unlimited_capacity(self):
        mshr = MshrFile(capacity=0)
        for addr in range(1000):
            mshr.allocate(addr, lambda a: None)
        assert not mshr.is_full

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            MshrFile(capacity=-1)


class TestCompletion:
    def test_all_waiters_fire(self):
        mshr = MshrFile(capacity=4)
        woken = []
        mshr.allocate(7, woken.append)
        mshr.allocate(7, woken.append)
        mshr.allocate(7, woken.append)
        count = mshr.complete(7)
        assert count == 3
        assert woken == [7, 7, 7]
        assert not mshr.outstanding(7)

    def test_completion_frees_register(self):
        mshr = MshrFile(capacity=1)
        mshr.allocate(7, lambda a: None)
        mshr.complete(7)
        assert mshr.allocate(8, lambda a: None)

    def test_unknown_completion_rejected(self):
        mshr = MshrFile(capacity=1)
        with pytest.raises(KeyError):
            mshr.complete(9)

    def test_merge_counter(self):
        mshr = MshrFile(capacity=4)
        mshr.allocate(7, lambda a: None)
        mshr.allocate(7, lambda a: None)
        assert mshr.stats.as_dict()["mshr.merged"] == 1
        assert mshr.stats.as_dict()["mshr.allocated"] == 1
