"""Shared fixtures for the checked-mode test suite."""

from repro.cache.config import CacheConfig
from repro.dram.config import DramConfig
from repro.sim.system import SystemConfig
from repro.sim.trace import Trace
from repro.utils.rng import DeterministicRng

SMALL_L1 = CacheConfig(
    name="l1", num_blocks=16, associativity=2, tag_latency=2, data_latency=2,
    mshr_entries=32,
)
SMALL_L2 = CacheConfig(
    name="l2", num_blocks=64, associativity=4, tag_latency=6, data_latency=8,
)
SMALL_LLC = CacheConfig(
    name="llc", num_blocks=256, associativity=4, tag_latency=8, data_latency=16,
    serial_lookup=True, port_occupancy=2,
)
SMALL_DRAM = DramConfig(num_banks=4, row_buffer_blocks=16, write_buffer_entries=16)


def small_config(mechanism="baseline", num_cores=1, **overrides):
    params = dict(
        num_cores=num_cores,
        mechanism=mechanism,
        l1=SMALL_L1,
        l2=SMALL_L2,
        llc=SMALL_LLC,
        dram=SMALL_DRAM,
        dbi_granularity=16,
        predictor_epoch_cycles=5_000,
    )
    params.update(overrides)
    return SystemConfig(**params)


def random_trace(name="random", refs=300, gap=3, footprint=2048, seed=7,
                 write_fraction=0.4):
    rng = DeterministicRng(seed)
    records = [
        (gap, rng.chance(write_fraction), rng.randint(0, footprint - 1))
        for _ in range(refs)
    ]
    return Trace(name, records)
