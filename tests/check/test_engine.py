"""CheckEngine wiring: zero-footprint when off, transparent when on.

The two contracts the ``--check`` flag rests on:

* ``off`` attaches nothing — the observer hooks stay ``None`` class
  attributes and no engine exists;
* ``cheap``/``full`` observe a run without perturbing it — a checked run's
  :meth:`SimulationResult.to_dict` is equal to the unchecked run's.
"""

import pytest

from repro.check.engine import CheckEngine, CheckLevel
from repro.check.errors import InvariantViolation
from repro.sim.system import System, run_system

from tests.check.conftest import random_trace, small_config


class TestCheckLevel:
    def test_parse_accepts_strings_and_levels(self):
        assert CheckLevel.parse("full") is CheckLevel.FULL
        assert CheckLevel.parse("CHEAP") is CheckLevel.CHEAP
        assert CheckLevel.parse(CheckLevel.OFF) is CheckLevel.OFF

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown check level"):
            CheckLevel.parse("paranoid")

    def test_engine_refuses_level_off(self):
        system = System(small_config(), [random_trace()])
        with pytest.raises(ValueError, match="never built"):
            CheckEngine(system, CheckLevel.OFF)


class TestOffIsFree:
    def test_off_attaches_nothing(self):
        system = System(small_config("dbi+awb"), [random_trace()])
        assert system.check_engine is None
        assert system.llc.observer is None
        assert system.mechanism.checker is None
        assert system.mechanism.dbi.observer is None
        # The hooks are *class* attributes: no per-instance dict entries.
        assert "observer" not in vars(system.llc)
        assert "checker" not in vars(system.mechanism)

    def test_full_attaches_engine_and_observers(self):
        system = System(small_config("dbi+awb"), [random_trace()], check="full")
        engine = system.check_engine
        assert isinstance(engine, CheckEngine)
        assert system.llc.observer is engine
        assert system.mechanism.checker is engine
        assert system.mechanism.dbi.observer is engine
        assert engine.ledger is not None

    def test_cheap_attaches_no_observers(self):
        system = System(small_config("dbi+awb"), [random_trace()], check="cheap")
        assert system.check_engine is not None
        assert system.check_engine.ledger is None
        assert system.llc.observer is None
        assert system.mechanism.checker is None


class TestTransparency:
    @pytest.mark.parametrize("mechanism", ["baseline", "dbi+awb", "skipcache"])
    @pytest.mark.parametrize("level", ["cheap", "full"])
    def test_checked_run_results_identical(self, mechanism, level):
        config = small_config(mechanism)
        trace = random_trace(refs=400)
        plain = run_system(config, [trace])
        checked = run_system(config, [trace], check=level)
        assert checked.to_dict() == plain.to_dict()


class TestCheckedRunsPass:
    """A healthy simulation survives full checking (hooks fire consistently)."""

    @pytest.mark.parametrize("mechanism", [
        "baseline", "tadip", "dawb", "vwq", "skipcache",
        "dbi", "dbi+awb", "dbi+clb", "dbi+awb+clb",
    ])
    def test_full_check_clean_run(self, mechanism):
        system = System(
            small_config(mechanism), [random_trace(refs=500)], check="full"
        )
        system.run()
        assert system.check_engine.sweeps >= 1

    def test_multicore_full_check(self):
        traces = [random_trace(f"t{i}", seed=i + 1) for i in range(2)]
        system = System(
            small_config("dbi+awb", num_cores=2), traces, check="full"
        )
        system.run()
        assert system.check_engine.sweeps >= 1

    def test_ledger_actually_observed_traffic(self):
        system = System(
            small_config("dbi+awb"), [random_trace(refs=500)], check="full"
        )
        system.run()
        ledger = system.check_engine.ledger
        assert ledger.dirtied > 0
        assert ledger.writebacks > 0
        assert ledger.outstanding_writebacks == 0


class TestViolationSurfacing:
    def test_corrupted_state_fails_the_sweep(self):
        system = System(small_config("dbi"), [random_trace()], check="cheap")
        system.run()
        system.llc._where[424242] = 0  # stale lookup-map entry
        with pytest.raises(InvariantViolation, match=r"\[cache-structure\]"):
            system.check_engine.run_checks("post-run corruption")

    def test_in_tag_dirty_bit_under_dbi_fails_the_sweep(self):
        system = System(small_config("dbi"), [random_trace()], check="cheap")
        system.run()
        block = next(system.llc.iter_valid_blocks())
        block.dirty = True  # DBI mechanisms must keep tags clean
        with pytest.raises(InvariantViolation, match=r"\[dbi-tag-agreement\]"):
            system.check_engine.run_checks("post-run corruption")
