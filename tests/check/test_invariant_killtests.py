"""Engine-path kill-tests: every registry invariant fires on seeded damage.

``tests/check/test_invariants.py`` proves the *component* checks
discriminate on isolated structures. These tests close the remaining gap:
for each entry in :data:`repro.check.invariants.INVARIANTS`, run a real
:class:`~repro.sim.system.System` to a healthy quiescent state, corrupt
exactly the state that invariant guards, and assert the engine's next sweep
raises naming it — proving the *system-level wrapper* actually reaches the
broken structure (a wrapper that silently returned vacuous would pass the
component tests and still catch nothing in production).

A meta-test pins the kill-test table to the registry, so adding an
invariant without a kill-test fails loudly.
"""

import pytest

from repro.check.differential import DiffGeometry
from repro.check.errors import InvariantViolation
from repro.check.invariants import INVARIANTS
from repro.sim.system import System

from tests.check.conftest import random_trace, small_config


def _absent_block(system) -> int:
    """An address guaranteed outside every structure in the system."""
    return 1 << 30


def _corrupt_dbi_tag_agreement(system):
    # A DBI-dirty block the LLC does not hold.
    system.mechanism.dbi.mark_dirty(_absent_block(system))


def _corrupt_dbi_structure(system):
    system.mechanism.dbi._where[9999] = 0


def _corrupt_cache_structure(system):
    addr = next(iter(system.llc._where))
    del system.llc._where[addr]


def _corrupt_recency_sanity(system):
    stacks = system.llc.policy._stacks
    stacks[0][0] = stacks[0][-1]


def _corrupt_dramcache_structure(system):
    level = system.dram_cache
    addr = next(iter(level.tags._where))
    del level.tags._where[addr]


def _corrupt_dramcache_dirty_domain(system):
    # dbi backend: an in-tag dirty bit usurps the DBI's authority.
    block = next(system.dram_cache.tags.iter_valid_blocks())
    block.dirty = True


def _corrupt_mshr_bounds(system):
    system.hierarchy.l1_mshrs[0]._pending[7] = []


def _corrupt_writebuffer_bounds(system):
    from repro.dram.request import MemoryRequest

    buffer = system.memory.write_buffer
    request = MemoryRequest(block_addr=1, is_write=False)
    buffer._entries.append(request)
    buffer._by_addr[1] = request


def _corrupt_port_sanity(system):
    system.port._waiting[0].append(lambda: None)


def _corrupt_core_bounds(system):
    core = system.cores[0]
    for index in range(core.max_outstanding_loads + 1):
        core._outstanding[index] = 0


#: invariant name -> (config overrides, corruption, expected error regex).
#: ``None`` expects the registry name itself; ``dramcache-structure``'s
#: wrapper reuses the component check, so its violation carries the
#: component name with the level's label — proving the *wrapper* reached
#: the level is what the label asserts. The meta-test below keeps this
#: table in lockstep with the registry.
KILL_TESTS = {
    "dbi-tag-agreement": (
        {"mechanism": "dbi"}, _corrupt_dbi_tag_agreement, None,
    ),
    "dbi-structure": ({"mechanism": "dbi"}, _corrupt_dbi_structure, None),
    "cache-structure": ({}, _corrupt_cache_structure, None),
    "recency-sanity": (
        {"llc_replacement": "lru"}, _corrupt_recency_sanity, None,
    ),
    "dramcache-structure": (
        {"dram_cache": DiffGeometry().dram_cache_config("dbi")},
        _corrupt_dramcache_structure,
        r"\[cache-structure\] dramcache",
    ),
    "dramcache-dirty-domain": (
        {"dram_cache": DiffGeometry().dram_cache_config("dbi")},
        _corrupt_dramcache_dirty_domain,
        None,
    ),
    "mshr-bounds": ({}, _corrupt_mshr_bounds, None),
    "writebuffer-bounds": ({}, _corrupt_writebuffer_bounds, None),
    "port-sanity": ({}, _corrupt_port_sanity, None),
    "core-bounds": ({}, _corrupt_core_bounds, None),
}


def _run_checked_system(overrides):
    config = small_config(**overrides)
    system = System(config, [random_trace(refs=250)], check="cheap")
    system.run()
    return system


class TestRegistryKillTests:
    @pytest.mark.parametrize("name", sorted(KILL_TESTS))
    def test_corruption_fires_through_the_engine_sweep(self, name):
        overrides, corrupt, expected = KILL_TESTS[name]
        system = _run_checked_system(overrides)
        # Healthy precondition: the completed run passed its sweeps and one
        # more on-demand sweep is clean.
        system.check_engine.run_checks("healthy")
        corrupt(system)
        with pytest.raises(InvariantViolation, match=expected or rf"\[{name}\]"):
            system.check_engine.run_checks("post-corruption")

    def test_every_registry_invariant_has_a_kill_test(self):
        assert set(KILL_TESTS) == {inv.name for inv in INVARIANTS}


class TestExercisedCounts:
    """The engine's coverage counters separate exercised from vacuous."""

    def test_vacuous_invariants_are_not_counted(self):
        system = _run_checked_system({})  # baseline, no DBI, no level
        exercised = system.check_engine.invariant_exercised
        assert exercised.get("cache-structure", 0) > 0
        assert "dbi-structure" not in exercised
        assert "dramcache-structure" not in exercised
        assert "dramcache-dirty-domain" not in exercised

    def test_dbi_and_level_invariants_count_when_present(self):
        system = _run_checked_system(
            {
                "mechanism": "dbi",
                "dram_cache": DiffGeometry().dram_cache_config("dbi"),
            }
        )
        exercised = system.check_engine.invariant_exercised
        for name in (
            "dbi-structure",
            "dramcache-structure",
            "dramcache-dirty-domain",
        ):
            assert exercised.get(name, 0) > 0, name
