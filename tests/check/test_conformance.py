"""Unit coverage of the conformance campaign machinery.

The campaign's value rests on four properties tested here: trial generation
is a pure function of the seed, a healthy stack yields a clean trial with
real coverage, a failing trial is shrunk to a small replayable repro, and
the coverage map is byte-stable across identical runs.
"""

import json
import os

import pytest

import repro.check.conformance as conformance
from repro.check.conformance import (
    CampaignConfig,
    FAMILIES,
    GEOMETRIES,
    TrialSpec,
    build_traces,
    replay_finding,
    run_campaign,
    run_trial,
    shrink_failure,
)
from repro.mechanisms.registry import MECHANISM_NAMES
from repro.utils.rng import DeterministicRng


def spec(**overrides):
    params = dict(
        index=0,
        seed=0xBEEF,
        family="uniform",
        mechanism="dbi+awb",
        geometry="default",
        dram_cache=None,
        check_level="cheap",
        cores=1,
        refs=80,
        footprint=512,
        write_fraction=0.6,
    )
    params.update(overrides)
    return TrialSpec(**params)


class TestGeneration:
    def test_traces_are_a_pure_function_of_the_spec(self):
        first, second = build_traces(spec()), build_traces(spec())
        assert [t.records for t in first] == [t.records for t in second]

    def test_different_seeds_differ(self):
        assert (
            build_traces(spec())[0].records
            != build_traces(spec(seed=0xF00D))[0].records
        )

    @pytest.mark.parametrize("family", FAMILIES)
    def test_every_family_generates_runnable_traces(self, family):
        traces = build_traces(spec(family=family, cores=2))
        assert len(traces) == 2
        for trace in traces:
            assert len(trace.records) == 80
            assert all(0 <= addr < 512 for _g, _w, addr in trace.records)

    def test_unknown_family_is_an_error(self):
        with pytest.raises(ValueError, match="unknown generator family"):
            build_traces(spec(family="nope"))

    def test_draw_spec_covers_every_mechanism_in_the_opening(self):
        rng = DeterministicRng(1)
        weights_f = {f: 1.0 for f in FAMILIES}
        weights_m = {m: 1.0 for m in MECHANISM_NAMES}
        drawn = [
            conformance._draw_spec(i, rng, weights_f, weights_m).mechanism
            for i in range(len(MECHANISM_NAMES))
        ]
        assert drawn == list(MECHANISM_NAMES)

    def test_drawn_specs_stay_in_the_declared_space(self):
        rng = DeterministicRng(2)
        weights_f = {f: 1.0 for f in FAMILIES}
        weights_m = {m: 1.0 for m in MECHANISM_NAMES}
        for index in range(30):
            drawn = conformance._draw_spec(index, rng, weights_f, weights_m)
            assert drawn.family in FAMILIES
            assert drawn.mechanism in MECHANISM_NAMES
            assert drawn.geometry in GEOMETRIES
            # tiny-level only makes sense with a level attached.
            if drawn.dram_cache is None:
                assert drawn.geometry != "tiny-level"


class TestTrials:
    def test_healthy_trial_is_clean_and_covers(self):
        outcome = run_trial(spec(dram_cache="dbi", check_level="full"))
        assert outcome.ok
        assert any(
            key.startswith("invariant:") for key in outcome.coverage
        )
        assert any(
            key.startswith("writeback-cause:") for key in outcome.coverage
        )
        assert "family:uniform" in outcome.coverage

    def test_spec_roundtrips_through_dict(self):
        original = spec(dram_cache="tag")
        assert TrialSpec(**original.to_dict()) == original


MAGIC = 0x2A


def _sabotaged_diff(real_diff):
    """A differential that fails whenever the magic address is written."""

    def fake(mechanism_name, traces, geometry, dram_cache=None, recorder=None):
        if any(
            is_write and addr == MAGIC
            for trace in traces
            for _gap, is_write, addr in trace.records
        ):
            report, snapshot = real_diff(
                mechanism_name, traces, geometry,
                dram_cache=dram_cache, recorder=recorder,
            )
            report.failures.append("planted divergence at block 0x2a")
            return report, snapshot
        return real_diff(
            mechanism_name, traces, geometry,
            dram_cache=dram_cache, recorder=recorder,
        )

    return fake


class TestShrinking:
    def test_planted_failure_is_shrunk_and_replayable(
        self, monkeypatch, tmp_path
    ):
        real_diff = conformance.diff_one_mechanism
        monkeypatch.setattr(
            conformance, "diff_one_mechanism", _sabotaged_diff(real_diff)
        )
        failing = spec(mechanism="baseline", refs=40)
        traces = build_traces(failing)
        # Plant the magic write mid-trace so there is fat to trim.
        records = list(traces[0].records)
        records[20] = (1, True, MAGIC)
        traces[0] = type(traces[0])("planted", records)

        outcome = run_trial(failing, traces=traces)
        assert not outcome.ok

        shrunk = shrink_failure(failing, traces)
        total = sum(len(records) for records in shrunk)
        assert total < 40
        assert any(
            addr == MAGIC and is_write
            for records in shrunk
            for _gap, is_write, addr in records
        )

        # The written-finding/replay loop reproduces the shrunk failure.
        path = str(tmp_path / "finding.json")
        with open(path, "w") as handle:
            json.dump(
                {"spec": failing.to_dict(), "traces": shrunk},
                handle,
            )
        replayed = replay_finding(path)
        assert not replayed.ok
        assert any("planted divergence" in f for f in replayed.failures)


class TestCampaign:
    def test_quick_campaign_is_clean_and_byte_stable(self, tmp_path):
        payloads = []
        for leg in ("a", "b"):
            out_dir = str(tmp_path / leg)
            result = run_campaign(
                CampaignConfig(trials=4, seed=0x5EED, out_dir=out_dir)
            )
            assert result.ok
            assert len(result.outcomes) == 4
            with open(os.path.join(out_dir, "coverage.json"), "rb") as handle:
                payloads.append(handle.read())
        assert payloads[0] == payloads[1]

    def test_failing_campaign_writes_findings(self, monkeypatch, tmp_path):
        real_diff = conformance.diff_one_mechanism

        def always_fails(
            mechanism_name, traces, geometry, dram_cache=None, recorder=None
        ):
            report, snapshot = real_diff(
                mechanism_name, traces, geometry,
                dram_cache=dram_cache, recorder=recorder,
            )
            report.failures.append("planted campaign failure")
            return report, snapshot

        monkeypatch.setattr(conformance, "diff_one_mechanism", always_fails)
        out_dir = str(tmp_path / "conf")
        result = run_campaign(
            CampaignConfig(trials=2, seed=1, out_dir=out_dir, shrink=False)
        )
        assert not result.ok
        assert len(result.findings) == 2
        for ordinal, finding in enumerate(result.findings):
            path = os.path.join(out_dir, f"finding-{ordinal:03d}.json")
            assert finding["repro_path"] == path
            with open(path) as handle:
                payload = json.load(handle)
            assert payload["failures"]
            assert TrialSpec(**payload["spec"]).index == ordinal
        assert "FINDINGS: 2" in result.to_text()
