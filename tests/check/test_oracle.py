"""The reference models agree with the real structures they stand in for.

RefLruCache is validated against :class:`repro.cache.cache.Cache` (LRU) and
RefDbi against :class:`repro.core.dbi.DirtyBlockIndex` (LRW) on randomized
operation streams — the differential harness's authority rests on these two
agreements.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.cache.config import CacheConfig
from repro.check.oracle import OracleMechanism, RefDbi, RefLruCache
from repro.core.config import DbiConfig
from repro.core.dbi import DirtyBlockIndex


def real_cache(num_blocks=32, associativity=4):
    return Cache(CacheConfig(
        name="c", num_blocks=num_blocks, associativity=associativity,
        tag_latency=1, data_latency=1, replacement="lru",
    ))


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "insert_dirty", "touch", "clean"]),
            st.integers(min_value=0, max_value=127),
        ),
        max_size=200,
    )
)
def test_ref_cache_matches_real_lru_cache(ops):
    real = real_cache()
    ref = RefLruCache(32, 4)
    for op, addr in ops:
        if op in ("insert", "insert_dirty"):
            dirty = op == "insert_dirty"
            evicted = real.insert(addr, dirty=dirty)
            ref_evicted = ref.insert(addr, dirty=dirty)
            got = (evicted.addr, evicted.dirty) if evicted else None
            assert got == ref_evicted
        elif op == "touch":
            assert real.touch(addr) == ref.touch(addr)
        else:
            if real.contains(addr):
                real.mark_clean(addr)
                ref.mark_clean(addr)
        assert real.contains(addr) == ref.contains(addr)
    blocks = {b.addr for b in real.iter_valid_blocks()}
    dirty = {b.addr for b in real.iter_valid_blocks() if b.dirty}
    assert blocks == ref.blocks()
    assert dirty == ref.dirty_blocks()


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["dirty", "clean", "query"]),
            st.integers(min_value=0, max_value=255),
        ),
        max_size=250,
    )
)
def test_ref_dbi_matches_real_dbi(ops):
    config = DbiConfig(
        cache_blocks=256, alpha=Fraction(1, 2), granularity=8, associativity=4
    )
    real = DirtyBlockIndex(config)
    ref = RefDbi(config.num_entries, config.associativity, config.granularity)
    for op, addr in ops:
        if op == "dirty":
            eviction = real.mark_dirty(addr)
            ref_evicted = ref.mark_dirty(addr)
            got = sorted(eviction.dirty_blocks) if eviction else []
            assert got == ref_evicted
        elif op == "clean":
            if real.is_dirty(addr):
                real.mark_clean(addr)
                ref.mark_clean(addr)
            else:
                with pytest.raises(KeyError):
                    ref.mark_clean(addr)
        else:
            assert real.is_dirty(addr) == ref.is_dirty(addr)
    assert set(real.all_dirty_blocks()) == ref.dirty_blocks()
    assert {
        entry.region_id: entry.bitvector for entry in real.iter_valid_entries()
    } == ref.entries()


class TestRefDbiStrictness:
    def test_mark_clean_on_clean_block_raises(self):
        ref = RefDbi(16, 2, 8)
        with pytest.raises(KeyError):
            ref.mark_clean(5)
        ref.mark_dirty(4)
        with pytest.raises(KeyError):
            ref.mark_clean(5)  # same region, different offset

    def test_last_clean_drops_the_entry(self):
        ref = RefDbi(16, 2, 8)
        ref.mark_dirty(4)
        ref.mark_clean(4)
        assert ref.entries() == {}


class TestOracleMechanismGuards:
    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError, match="unknown mechanism"):
            OracleMechanism("nonsense", RefLruCache(16, 4), 16)

    def test_dbi_mechanism_requires_ref_dbi(self):
        with pytest.raises(ValueError, match="needs a RefDbi"):
            OracleMechanism("dbi", RefLruCache(16, 4), 16)

    def test_only_writethrough_tolerates_unmodelled_llc(self):
        with pytest.raises(ValueError, match="needs a RefLruCache"):
            OracleMechanism("baseline", None, 16)
        OracleMechanism("skipcache", None, 16)  # fine

    def test_writethrough_counts_one_write_per_request(self):
        oracle = OracleMechanism("skipcache", None, 16)
        for addr in (1, 2, 1):
            oracle.writeback(addr)
        oracle.drain_background()
        assert oracle.writebacks == 3
        assert oracle.writeback_requests == 3
