"""Every invariant in the catalogue fires on a deliberately broken structure.

Each test corrupts exactly one internal consistency property and asserts the
matching check raises :class:`InvariantViolation` naming that invariant —
proving the checks actually discriminate, not merely that they pass on
healthy state (each class also has a sanity test for the healthy case).
"""

from fractions import Fraction

import pytest

from repro.cache.cache import Cache
from repro.cache.config import CacheConfig
from repro.cache.mshr import MshrFile
from repro.cache.port import TagPort
from repro.check.errors import InvariantViolation
from repro.check.invariants import (
    check_cache_structure,
    check_core_bounds,
    check_dbi_structure,
    check_dbi_tag_agreement,
    check_mshr,
    check_port_sanity,
    check_recency_stacks,
    check_retry_consistency,
    check_write_buffer,
    invariant_names,
)
from repro.check.ledger import WritebackLedger
from repro.core.config import DbiConfig
from repro.core.dbi import DirtyBlockIndex
from repro.dram.request import MemoryRequest
from repro.dram.writebuffer import WriteBuffer
from repro.utils.events import EventQueue


def make_cache(num_blocks=64, associativity=4, replacement="lru"):
    return Cache(CacheConfig(
        name="llc", num_blocks=num_blocks, associativity=associativity,
        tag_latency=1, data_latency=1, replacement=replacement,
    ))


def make_dbi():
    return DirtyBlockIndex(DbiConfig(
        cache_blocks=256, alpha=Fraction(1, 2), granularity=8, associativity=2,
    ))


def expect(name):
    return pytest.raises(InvariantViolation, match=rf"\[{name}\]")


class TestCacheStructure:
    def test_consistent_cache_passes(self):
        cache = make_cache()
        for addr in range(40):
            cache.insert(addr * 3)
        check_cache_structure(cache)

    def test_lookup_map_pointing_at_wrong_way_detected(self):
        cache = make_cache()
        for addr in range(8):
            cache.insert(addr)
        addr = next(iter(cache._where))
        cache._where[addr] = (cache._where[addr] + 1) % cache.config.associativity
        with expect("cache-structure"):
            check_cache_structure(cache)

    def test_block_in_wrong_set_detected(self):
        cache = make_cache()
        cache.insert(5)
        block = cache.sets[cache.set_index(5)][cache._where[5]]
        # Teleport the block: its address now hashes to a different set.
        block.addr += 1
        cache._where[block.addr] = cache._where.pop(5)
        with expect("cache-structure"):
            check_cache_structure(cache)

    def test_unmapped_valid_block_detected(self):
        cache = make_cache()
        cache.insert(9)
        del cache._where[9]
        with expect("cache-structure"):
            check_cache_structure(cache)

    def test_stale_map_entry_detected(self):
        cache = make_cache()
        cache.insert(9)
        cache._where[1000] = 0
        with expect("cache-structure"):
            check_cache_structure(cache)


class TestRecencySanity:
    def test_permutation_passes(self):
        check_recency_stacks([[2, 0, 1], [0, 1, 2]], 3, "llc")

    def test_duplicate_way_detected(self):
        with expect("recency-sanity"):
            check_recency_stacks([[0, 1, 1]], 3, "llc")

    def test_short_stack_detected(self):
        with expect("recency-sanity"):
            check_recency_stacks([[0, 1]], 3, "llc")


class TestDbiStructure:
    def test_consistent_dbi_passes(self):
        dbi = make_dbi()
        for addr in range(0, 200, 7):
            dbi.mark_dirty(addr)
        check_dbi_structure(dbi)

    def test_valid_entry_with_empty_bitvector_detected(self):
        dbi = make_dbi()
        dbi.mark_dirty(17)
        for ways in dbi.sets:
            for entry in ways:
                if entry.valid:
                    entry.bitvector = 0
        with expect("dbi-structure"):
            check_dbi_structure(dbi)

    def test_invalid_entry_with_residual_bits_detected(self):
        dbi = make_dbi()
        dbi.sets[0][0].bitvector = 0b1
        with expect("dbi-structure"):
            check_dbi_structure(dbi)

    def test_bitvector_wider_than_granularity_detected(self):
        dbi = make_dbi()
        dbi.mark_dirty(17)
        for ways in dbi.sets:
            for entry in ways:
                if entry.valid:
                    entry.bitvector |= 1 << dbi.config.granularity
        with expect("dbi-structure"):
            check_dbi_structure(dbi)

    def test_region_map_desync_detected(self):
        dbi = make_dbi()
        dbi.mark_dirty(17)
        dbi._where[9999] = 0
        with expect("dbi-structure"):
            check_dbi_structure(dbi)


class _StubMechanism:
    """Just the surface check_dbi_tag_agreement consumes."""

    def __init__(self, llc, dbi=None, uses_tag_dirty_bits=True,
                 write_through=False):
        self.name = "stub"
        self.llc = llc
        self.dbi = dbi
        self.uses_tag_dirty_bits = uses_tag_dirty_bits
        self.write_through = write_through


class TestDbiTagAgreement:
    def test_conventional_mechanism_with_dirty_tags_passes(self):
        llc = make_cache()
        llc.insert(3, dirty=True)
        check_dbi_tag_agreement(_StubMechanism(llc), llc)

    def test_in_tag_dirty_bit_under_dbi_detected(self):
        llc = make_cache()
        llc.insert(3, dirty=True)
        mech = _StubMechanism(llc, dbi=make_dbi(), uses_tag_dirty_bits=False)
        with expect("dbi-tag-agreement"):
            check_dbi_tag_agreement(mech, llc)

    def test_in_tag_dirty_bit_under_write_through_detected(self):
        llc = make_cache()
        llc.insert(3, dirty=True)
        mech = _StubMechanism(llc, write_through=True)
        with expect("dbi-tag-agreement"):
            check_dbi_tag_agreement(mech, llc)

    def test_dbi_dirty_block_missing_from_llc_detected(self):
        llc = make_cache()
        dbi = make_dbi()
        dbi.mark_dirty(42)  # never inserted into the LLC
        mech = _StubMechanism(llc, dbi=dbi, uses_tag_dirty_bits=False)
        with expect("dbi-tag-agreement"):
            check_dbi_tag_agreement(mech, llc)

    def test_agreeing_dbi_passes(self):
        llc = make_cache()
        dbi = make_dbi()
        llc.insert(42)
        dbi.mark_dirty(42)
        check_dbi_tag_agreement(
            _StubMechanism(llc, dbi=dbi, uses_tag_dirty_bits=False), llc
        )


class TestMshrBounds:
    def test_healthy_mshr_passes(self):
        mshr = MshrFile(4)
        mshr.allocate(1, lambda _addr: None)
        check_mshr(mshr, "l1mshr0")

    def test_overfull_mshr_detected(self):
        mshr = MshrFile(2)
        for addr in range(3):
            mshr._pending[addr] = [lambda _addr: None]
        with expect("mshr-bounds"):
            check_mshr(mshr, "l1mshr0")

    def test_waiterless_miss_detected(self):
        mshr = MshrFile(4)
        mshr._pending[7] = []
        with expect("mshr-bounds"):
            check_mshr(mshr, "l1mshr0")


class TestWriteBufferBounds:
    def test_healthy_buffer_passes(self):
        buffer = WriteBuffer(4)
        buffer.add(MemoryRequest(block_addr=1, is_write=True))
        check_write_buffer(buffer)

    def test_overfull_buffer_detected(self):
        buffer = WriteBuffer(2)
        for addr in range(3):
            request = MemoryRequest(block_addr=addr, is_write=True)
            buffer._entries.append(request)
            buffer._by_addr[addr] = request
        with expect("writebuffer-bounds"):
            check_write_buffer(buffer)

    def test_fifo_index_desync_detected(self):
        buffer = WriteBuffer(4)
        buffer.add(MemoryRequest(block_addr=1, is_write=True))
        buffer._by_addr[99] = buffer._entries[0]
        with expect("writebuffer-bounds"):
            check_write_buffer(buffer)

    def test_buffered_read_detected(self):
        buffer = WriteBuffer(4)
        request = MemoryRequest(block_addr=1, is_write=False)
        buffer._entries.append(request)
        buffer._by_addr[1] = request
        with expect("writebuffer-bounds"):
            check_write_buffer(buffer)


class TestPortSanity:
    def test_idle_port_passes(self):
        check_port_sanity(TagPort(EventQueue(), occupancy=2))

    def test_queued_work_without_grant_pass_detected(self):
        port = TagPort(EventQueue(), occupancy=2)
        port._waiting[0].append(lambda: None)  # enqueue without _pump()
        with expect("port-sanity"):
            check_port_sanity(port)


class _StubCore:
    def __init__(self, outstanding, limit):
        self.core_id = 0
        self.outstanding_loads = outstanding
        self.max_outstanding_loads = limit


class TestCoreBounds:
    def test_within_bound_passes(self):
        check_core_bounds(_StubCore(4, 32))

    def test_over_bound_detected(self):
        with expect("core-bounds"):
            check_core_bounds(_StubCore(33, 32))


class TestWritebackLedger:
    def test_balanced_lifecycle_passes(self):
        ledger = WritebackLedger()
        ledger.on_block_dirtied(5)
        ledger.assert_agrees([5], "mid-run")
        ledger.on_block_cleaned(5)
        ledger.on_memory_writeback(5)
        ledger.assert_agrees([], "end")
        ledger.assert_quiescent()

    def test_double_dirty_detected(self):
        ledger = WritebackLedger()
        ledger.on_block_dirtied(5)
        with expect("writeback-conservation"):
            ledger.on_block_dirtied(5)

    def test_clean_without_dirty_detected(self):
        ledger = WritebackLedger()
        with expect("writeback-conservation"):
            ledger.on_block_cleaned(5)

    def test_discard_without_dirty_detected(self):
        ledger = WritebackLedger()
        with expect("writeback-conservation"):
            ledger.on_dirty_discarded(5)

    def test_writeback_without_clean_detected(self):
        ledger = WritebackLedger()
        with expect("writeback-conservation"):
            ledger.on_memory_writeback(5)

    def test_lost_writeback_detected_at_quiescence(self):
        ledger = WritebackLedger()
        ledger.on_block_dirtied(5)
        ledger.on_block_cleaned(5)
        with expect("writeback-conservation"):
            ledger.assert_quiescent()

    def test_dirty_set_divergence_detected(self):
        ledger = WritebackLedger()
        ledger.on_block_dirtied(5)
        with expect("writeback-conservation"):
            ledger.assert_agrees([5, 6], "sweep")

    def test_discarded_block_owes_no_writeback(self):
        ledger = WritebackLedger()
        ledger.on_block_dirtied(5)
        ledger.on_dirty_discarded(5)
        ledger.assert_quiescent()
        assert ledger.discarded == 1

    def test_write_through_exempt_from_pending_accounting(self):
        ledger = WritebackLedger(write_through=True)
        ledger.on_memory_writeback(5)  # no preceding clean: fine
        ledger.assert_quiescent()
        assert ledger.writebacks == 1


class TestRetryConsistency:
    """A retried sweep job must reproduce the stored result exactly."""

    RESULT = {
        "mechanism": "dbi",
        "ipc": [1.25],
        "stats": {"dram.dram_writes_performed": 40.0, "mech.tag_lookups": 9.0},
    }

    def test_identical_reruns_pass(self):
        check_retry_consistency("dbi[lbm]", self.RESULT, dict(self.RESULT))

    def test_double_counted_writeback_stat_fires(self):
        doctored = {
            **self.RESULT,
            "stats": {**self.RESULT["stats"], "dram.dram_writes_performed": 80.0},
        }
        with pytest.raises(InvariantViolation) as excinfo:
            check_retry_consistency("dbi[lbm]", self.RESULT, doctored)
        assert "[retry-consistency]" in str(excinfo.value)
        assert "dram.dram_writes_performed" in str(excinfo.value)

    def test_non_stat_divergence_fires_too(self):
        doctored = {**self.RESULT, "ipc": [1.5]}
        with pytest.raises(InvariantViolation) as excinfo:
            check_retry_consistency("dbi[lbm]", self.RESULT, doctored)
        assert "ipc" in str(excinfo.value)


class TestCatalogue:
    def test_every_documented_invariant_is_registered(self):
        assert set(invariant_names()) == {
            "dbi-tag-agreement",
            "dbi-structure",
            "cache-structure",
            "recency-sanity",
            "dramcache-structure",
            "dramcache-dirty-domain",
            "mshr-bounds",
            "writebuffer-bounds",
            "port-sanity",
            "core-bounds",
            "writeback-conservation",
            "retry-consistency",
        }

    def test_violation_message_names_the_invariant(self):
        error = InvariantViolation("cache-structure", "boom")
        assert "[cache-structure]" in str(error)
        assert isinstance(error, AssertionError)
