"""Property-based fuzzing of oracle v2's drain-schedule witness (slow).

The recorder→schedule→replay loop is the trust anchor of the unrestricted
differential: if the witness could drop, reorder or double-count events, a
timing bug could slip through disguised as "the schedule said so". These
properties pin the loop down — recording round-trips losslessly, replay
consumes exactly once, and full recorded runs always leave a fully drained
schedule. Run with ``pytest -m "slow or fuzz"`` (tools/ci.sh does).
"""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check.differential import diff_one_mechanism, DiffGeometry
from repro.check.schedule import (
    DEMAND_CAUSES,
    WRITEBACK_CAUSES,
    DrainRecorder,
    schedule_events,
)
from repro.sim.trace import Trace

pytestmark = [pytest.mark.slow, pytest.mark.fuzz]

FUZZ_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: A synthetic witness log: per op, background writebacks and fetches.
events_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),             # op index
        st.sampled_from(["wb", "fetch"]),                   # event kind
        st.integers(min_value=0, max_value=255),            # block address
        st.sampled_from(WRITEBACK_CAUSES),                  # cause (wb only)
    ),
    max_size=80,
)


def _record(events):
    recorder = DrainRecorder()
    expected_background = []
    expected_fetches = []
    for op, kind, addr, cause in sorted(events, key=lambda e: e[0]):
        recorder.begin_op(op)
        if kind == "wb":
            recorder.on_memory_writeback(addr, cause)
            if cause not in DEMAND_CAUSES:
                expected_background.append((op, "wb", addr))
        else:
            recorder.on_memory_fetch(addr)
            expected_fetches.append((op, "fetch", addr))
    return recorder, expected_background, expected_fetches


@settings(max_examples=50, **FUZZ_SETTINGS)
@given(events=events_strategy)
def test_fuzz_record_roundtrip_is_lossless(events):
    """Everything recorded (minus demand causes) comes back, in op order."""
    recorder, expected_background, expected_fetches = _record(events)
    flattened = schedule_events(recorder.schedule())
    assert [e for e in flattened if e[1] == "wb"] == expected_background
    assert [e for e in flattened if e[1] == "fetch"] == expected_fetches
    # Cause accounting counts every writeback, demand ones included.
    assert sum(recorder.cause_counts.values()) == sum(
        1 for e in events if e[1] == "wb"
    )


@settings(max_examples=50, **FUZZ_SETTINGS)
@given(events=events_strategy)
def test_fuzz_replay_consumes_exactly_once(events):
    """Drain + fetch cursors hand every event out once; then it's spent."""
    recorder, expected_background, expected_fetches = _record(events)
    schedule = recorder.schedule()
    replayed_background = []
    replayed_fetches = []
    for op in range(31):
        replayed_background.extend(
            (op, "wb", addr) for addr in schedule.background_for_op(op)
        )
        replayed_fetches.extend(
            (op, "fetch", addr) for addr in schedule.take_fetches(op)
        )
        # A consumed op yields nothing on the second pass.
        assert schedule.background_for_op(op) == []
        assert schedule.take_fetch(op) is None
    assert replayed_background == expected_background
    assert replayed_fetches == expected_fetches
    assert schedule.leftovers() == []


@settings(max_examples=50, **FUZZ_SETTINGS)
@given(events=events_strategy)
def test_fuzz_partial_replay_reports_leftovers(events):
    """An oracle that stops early owes one leftover line per unconsumed op."""
    recorder, expected_background, expected_fetches = _record(events)
    schedule = recorder.schedule()
    # Consume only the first half of the op range.
    for op in range(16):
        schedule.background_for_op(op)
        schedule.take_fetches(op)
    stranded_wb_ops = {e[0] for e in expected_background if e[0] >= 16}
    stranded_fetch_ops = {e[0] for e in expected_fetches if e[0] >= 16}
    leftovers = schedule.leftovers()
    assert len(leftovers) == len(stranded_wb_ops) + len(stranded_fetch_ops)


@settings(max_examples=10, **FUZZ_SETTINGS)
@given(
    records=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.booleans(),
            st.integers(min_value=0, max_value=511),
        ),
        min_size=30,
        max_size=150,
    ),
    mechanism=st.sampled_from(["dbi+awb", "dawb", "vwq", "skipcache"]),
    backend=st.sampled_from([None, "tag", "dbi"]),
)
def test_fuzz_recorded_runs_drain_their_schedule(records, mechanism, backend):
    """End to end: the oracle consumes the real witness completely.

    Whatever background work a random trace provokes, replay must agree
    with the recording (no schedule failures) and account for every event
    (no leftovers) — with and without a DRAM-cache level attached.
    """
    recorder = DrainRecorder()
    report, _snapshot = diff_one_mechanism(
        mechanism,
        [Trace("fuzz", records)],
        DiffGeometry(),
        dram_cache=backend,
        recorder=recorder,
    )
    assert report.ok, report.failures
    # The recorder's log survives for coverage mining; background events
    # recorded must match causes counted.
    background_total = sum(
        len(addrs) for addrs in recorder.background.values()
    )
    assert background_total == sum(
        count
        for cause, count in recorder.cause_counts.items()
        if cause not in DEMAND_CAUSES
    )
