"""Property-based fuzzing of the whole stack (slow; excluded from tier-1).

Hypothesis generates adversarial little traces and machine shapes and the
checked simulator plus the differential oracle must hold up on every one.
Run with ``pytest -m "slow or fuzz"`` (tools/ci.sh does).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check.differential import DiffGeometry, assert_check_diff
from repro.sim.system import System
from repro.sim.trace import Trace

from tests.check.conftest import random_trace, small_config

pytestmark = [pytest.mark.slow, pytest.mark.fuzz]

FUZZ_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

records_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),       # compute gap
        st.booleans(),                                # is_write
        st.integers(min_value=0, max_value=767),      # block address
    ),
    min_size=20,
    max_size=120,
)


@settings(max_examples=12, **FUZZ_SETTINGS)
@given(records=records_strategy, mechanism=st.sampled_from(
    ["baseline", "dawb", "vwq", "skipcache", "dbi", "dbi+awb", "dbi+awb+clb"]
))
def test_fuzz_differential_oracle(records, mechanism):
    """Random trace, one mechanism: timing and oracle must agree exactly."""
    trace = Trace("fuzz", records)
    assert_check_diff([trace], mechanisms=[mechanism])


@settings(max_examples=8, **FUZZ_SETTINGS)
@given(
    records=records_strategy,
    granularity=st.sampled_from([4, 8, 16]),
    associativity=st.sampled_from([2, 4]),
)
def test_fuzz_differential_dbi_shapes(records, granularity, associativity):
    """DBI agreement holds across region granularities and DBI shapes."""
    geometry = DiffGeometry(
        dbi_granularity=granularity, dbi_associativity=associativity
    )
    trace = Trace("fuzz", records)
    assert_check_diff(
        [trace], mechanisms=["dbi", "dbi+awb"], geometry=geometry
    )


@settings(max_examples=6, **FUZZ_SETTINGS)
@given(
    seed=st.integers(min_value=1, max_value=2**16),
    write_fraction=st.floats(min_value=0.1, max_value=0.9),
    footprint=st.sampled_from([512, 2048, 8192]),
    mechanism=st.sampled_from(["tadip", "dbi+awb+clb", "skipcache"]),
)
def test_fuzz_full_check_system(seed, write_fraction, footprint, mechanism):
    """Random full-timing runs never trip the invariant engine."""
    trace = random_trace(
        refs=400, seed=seed, write_fraction=write_fraction, footprint=footprint
    )
    system = System(small_config(mechanism), [trace], check="full")
    system.run()
    assert system.check_engine.sweeps >= 1
