"""Differential validation: every mechanism agrees with the golden model.

This is the acceptance gate of checked mode: the real mechanism/hierarchy/
DRAM stack, driven one reference at a time, must land on exactly the
architectural state the untimed oracle predicts — for every registered
mechanism — and the harness must actually *notice* when the two sides
disagree.
"""

import pytest

from repro.check.differential import (
    DiffGeometry,
    assert_check_diff,
    diff_one_mechanism,
    run_check_diff,
)
from repro.check.errors import InvariantViolation
from repro.mechanisms.registry import MECHANISM_NAMES

from tests.check.conftest import random_trace

GEOMETRY = DiffGeometry()


def traces(refs=250, cores=1):
    return [
        random_trace(f"t{i}", refs=refs, seed=11 + i, footprint=1024)
        for i in range(cores)
    ]


class TestPerMechanismAgreement:
    @pytest.mark.parametrize("mechanism", MECHANISM_NAMES)
    def test_single_core_agrees(self, mechanism):
        report, _snapshot = diff_one_mechanism(mechanism, traces(), GEOMETRY)
        assert report.ok, "\n".join(report.failures)

    @pytest.mark.parametrize("mechanism", ["baseline", "dbi+awb+clb", "vwq"])
    def test_two_cores_agree(self, mechanism):
        report, _snapshot = diff_one_mechanism(
            mechanism, traces(refs=200, cores=2), GEOMETRY
        )
        assert report.ok, "\n".join(report.failures)


class TestFullReport:
    def test_all_mechanisms_pass_and_report_reads_well(self):
        report = assert_check_diff(traces(refs=200))
        assert report.ok
        text = report.to_text()
        for name in MECHANISM_NAMES:
            assert name in text
        assert "DIVERGED" not in text
        # Real work happened on both sides.
        assert all(r.read_requests > 0 for r in report.reports)
        assert all(r.writebacks > 0 for r in report.reports)

    def test_mechanism_subset_respected(self):
        report = run_check_diff(traces(refs=150), mechanisms=["baseline", "dbi"])
        assert [r.mechanism for r in report.reports] == ["baseline", "dbi"]


class TestDivergenceDetection:
    def test_tampered_oracle_is_caught(self, monkeypatch):
        """A one-writeback miscount on the oracle side must fail the diff."""
        import repro.check.differential as differential

        real_run_oracle = differential.run_oracle

        def tampered(mechanism_name, trace_list, geometry, **kwargs):
            oracle = real_run_oracle(
                mechanism_name, trace_list, geometry, **kwargs
            )
            oracle.mechanism.writebacks += 1
            return oracle

        monkeypatch.setattr(differential, "run_oracle", tampered)
        report = differential.run_check_diff(
            traces(refs=150), mechanisms=["baseline"]
        )
        assert not report.ok
        assert any("memory writebacks" in f for f in report.reports[0].failures)
        with pytest.raises(InvariantViolation, match="differential-oracle"):
            differential.assert_check_diff(
                traces(refs=150), mechanisms=["baseline"]
            )

    def test_tampered_dirty_set_is_caught(self, monkeypatch):
        import repro.check.differential as differential

        real_run_oracle = differential.run_oracle

        def tampered(mechanism_name, trace_list, geometry, **kwargs):
            oracle = real_run_oracle(
                mechanism_name, trace_list, geometry, **kwargs
            )
            oracle.mechanism.llc.sets[0][123456] = True  # ghost dirty block
            return oracle

        monkeypatch.setattr(differential, "run_oracle", tampered)
        report = differential.run_check_diff(
            traces(refs=150), mechanisms=["tadip"]
        )
        assert not report.ok


class TestGeometrySanity:
    def test_default_geometry_builds_valid_configs(self):
        geometry = DiffGeometry()
        assert geometry.llc_config().num_sets > 0
        assert geometry.dbi_config().num_entries > 0
        assert geometry.dram_config().write_buffer_entries > 0
