"""Tests for coherence-protocol adaptation (paper Section 2.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.coherence import CoherenceAdapter


class TestMoesi:
    """The paper's worked example: MOESI -> (M,E), (O,S), (I)."""

    def setup_method(self):
        self.adapter = CoherenceAdapter("moesi")

    def test_dirty_states(self):
        assert set(self.adapter.dirty_states) == {"M", "O"}

    def test_stored_states_drop_dirty_twins(self):
        assert set(self.adapter.stored_states) == {"E", "S", "I"}

    def test_encode_modified(self):
        encoded = self.adapter.encode("M")
        assert encoded.stored_state == "E"
        assert encoded.dbi_dirty

    def test_encode_owned(self):
        encoded = self.adapter.encode("O")
        assert encoded.stored_state == "S"
        assert encoded.dbi_dirty

    def test_encode_clean_states(self):
        for state in ("E", "S", "I"):
            encoded = self.adapter.encode(state)
            assert encoded.stored_state == state
            assert not encoded.dbi_dirty

    def test_decode_round_trip(self):
        for state in self.adapter.states:
            encoded = self.adapter.encode(state)
            assert self.adapter.decode(encoded.stored_state,
                                       encoded.dbi_dirty) == state

    def test_invalid_cannot_be_dirty(self):
        with pytest.raises(ValueError):
            self.adapter.decode("I", dbi_dirty=True)

    def test_tag_bits_saved(self):
        # 5 states (3 bits) -> 3 stored states (2 bits): one bit moved to DBI.
        assert self.adapter.tag_state_bits_saved() == 1


class TestOtherProtocols:
    def test_mesi_split(self):
        adapter = CoherenceAdapter("mesi")
        assert adapter.encode("M").stored_state == "E"
        assert set(adapter.stored_states) == {"E", "S", "I"}

    def test_msi_split(self):
        adapter = CoherenceAdapter("msi")
        assert adapter.encode("M").stored_state == "S"
        assert set(adapter.stored_states) == {"S", "I"}

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            CoherenceAdapter("dragon")

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError):
            CoherenceAdapter("mesi").encode("O")

    def test_decode_rejects_non_stored_state(self):
        with pytest.raises(ValueError):
            CoherenceAdapter("mesi").decode("M", dbi_dirty=False)


@given(
    protocol=st.sampled_from(["msi", "mesi", "moesi"]),
    index=st.integers(min_value=0, max_value=4),
)
def test_round_trip_property(protocol, index):
    """encode/decode is the identity on every state of every protocol."""
    adapter = CoherenceAdapter(protocol)
    state = adapter.states[index % len(adapter.states)]
    encoded = adapter.encode(state)
    assert adapter.decode(encoded.stored_state, encoded.dbi_dirty) == state
    assert encoded.dbi_dirty == adapter.is_dirty_state(state)
