"""Unit and property tests for the Dirty-Block Index."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DbiConfig
from repro.core.dbi import DirtyBlockIndex


def make_dbi(cache_blocks=1024, alpha=Fraction(1, 4), granularity=16,
             associativity=4, replacement="lrw"):
    return DirtyBlockIndex(
        DbiConfig(
            cache_blocks=cache_blocks,
            alpha=alpha,
            granularity=granularity,
            associativity=associativity,
            replacement=replacement,
        )
    )


class TestSemantics:
    """Paper Section 2.1: dirty iff valid entry AND bit set."""

    def test_initially_nothing_dirty(self):
        dbi = make_dbi()
        assert not dbi.is_dirty(0)
        assert dbi.entry_count == 0

    def test_mark_dirty_sets_exactly_one_block(self):
        dbi = make_dbi()
        dbi.mark_dirty(17)
        assert dbi.is_dirty(17)
        assert not dbi.is_dirty(16)
        assert not dbi.is_dirty(18)

    def test_same_region_blocks_share_entry(self):
        dbi = make_dbi(granularity=16)
        dbi.mark_dirty(0)
        dbi.mark_dirty(5)
        dbi.mark_dirty(15)
        assert dbi.entry_count == 1
        assert dbi.dirty_blocks_in_region(3) == [0, 5, 15]

    def test_different_regions_use_different_entries(self):
        dbi = make_dbi(granularity=16)
        dbi.mark_dirty(0)
        dbi.mark_dirty(16)
        assert dbi.entry_count == 2

    def test_mark_clean_clears_bit(self):
        dbi = make_dbi()
        dbi.mark_dirty(17)
        assert dbi.mark_clean(17)
        assert not dbi.is_dirty(17)

    def test_mark_clean_on_clean_block_is_an_error(self):
        """Clearing an unset bit means a stale-state writeback decision.

        Regression test: this used to silently no-op, masking exactly the
        double-writeback bugs checked mode exists to catch.
        """
        dbi = make_dbi()
        with pytest.raises(ValueError, match="not dirty"):
            dbi.mark_clean(17)  # no entry for the region at all
        dbi.mark_dirty(16)
        with pytest.raises(ValueError, match="not dirty"):
            dbi.mark_clean(17)  # same region, different bit
        assert dbi.is_dirty(16)  # the failed cleans disturbed nothing

    def test_last_clean_invalidates_entry(self):
        dbi = make_dbi()
        dbi.mark_dirty(17)
        dbi.mark_dirty(18)
        dbi.mark_clean(17)
        assert dbi.entry_count == 1
        dbi.mark_clean(18)
        assert dbi.entry_count == 0
        assert dbi.stats.as_dict()["dbi.entries_emptied"] == 1

    def test_idempotent_mark_dirty(self):
        dbi = make_dbi()
        dbi.mark_dirty(17)
        dbi.mark_dirty(17)
        assert dbi.entry_count == 1
        assert dbi.tracked_dirty_blocks == 1


class TestEviction:
    """Paper Section 2.2.4: inserting may displace an entry."""

    def _fill_one_set(self, dbi):
        """Mark one block dirty in enough regions to fill DBI set 0."""
        config = dbi.config
        regions = []
        region = 0
        while len(regions) < config.associativity:
            if config.set_of(region) == 0:
                regions.append(region)
            region += 1
        for r in regions:
            assert dbi.mark_dirty(config.block_of(r, 0)) is None
        return regions

    def test_no_eviction_until_set_full(self):
        dbi = make_dbi()
        self._fill_one_set(dbi)
        assert dbi.stats.as_dict().get("dbi.evictions", 0) == 0

    def test_eviction_returns_all_dirty_blocks(self):
        dbi = make_dbi()
        regions = self._fill_one_set(dbi)
        config = dbi.config
        # Dirty two more blocks in the oldest (LRW) region.
        dbi.mark_dirty(config.block_of(regions[0], 3))
        dbi.mark_dirty(config.block_of(regions[0], 7))
        # Second region is now LRW victim... actually region[0] was rewritten,
        # so the LRW victim is regions[1].
        new_region = regions[-1] + 1
        while config.set_of(new_region) != 0:
            new_region += 1
        eviction = dbi.mark_dirty(config.block_of(new_region, 0))
        assert eviction is not None
        assert eviction.region_id == regions[1]
        assert eviction.dirty_blocks == (config.block_of(regions[1], 0),)

    def test_lrw_victim_is_least_recently_written(self):
        dbi = make_dbi()
        regions = self._fill_one_set(dbi)
        config = dbi.config
        # Touch regions[0] so regions[1] becomes LRW.
        dbi.mark_dirty(config.block_of(regions[0], 1))
        new_region = regions[-1] + 1
        while config.set_of(new_region) != 0:
            new_region += 1
        eviction = dbi.mark_dirty(config.block_of(new_region, 0))
        assert eviction.region_id == regions[1]

    def test_evicted_blocks_no_longer_dirty(self):
        dbi = make_dbi()
        regions = self._fill_one_set(dbi)
        config = dbi.config
        new_region = regions[-1] + 1
        while config.set_of(new_region) != 0:
            new_region += 1
        eviction = dbi.mark_dirty(config.block_of(new_region, 0))
        for block in eviction.dirty_blocks:
            assert not dbi.is_dirty(block)

    def test_eviction_stats(self):
        dbi = make_dbi()
        regions = self._fill_one_set(dbi)
        config = dbi.config
        new_region = regions[-1] + 1
        while config.set_of(new_region) != 0:
            new_region += 1
        dbi.mark_dirty(config.block_of(new_region, 0))
        flat = dbi.stats.as_dict()
        assert flat["dbi.evictions"] == 1
        assert flat["dbi.evicted_dirty_blocks"] == 1


class TestDropRegion:
    def test_drop_returns_dirty_blocks(self):
        dbi = make_dbi(granularity=16)
        dbi.mark_dirty(3)
        dbi.mark_dirty(9)
        dropped = dbi.drop_region(0)
        assert dropped == [3, 9]
        assert dbi.entry_count == 0

    def test_drop_absent_region(self):
        dbi = make_dbi()
        assert dbi.drop_region(0) == []


class TestCapacityBound:
    def test_dirty_blocks_never_exceed_alpha_fraction(self):
        """Property 3 from the paper: DBI bounds the dirty working set."""
        dbi = make_dbi(cache_blocks=512, alpha=Fraction(1, 4),
                       granularity=8, associativity=4)
        cap = dbi.config.tracked_blocks
        for addr in range(4096):
            dbi.mark_dirty(addr * 3 % 2048)
            assert dbi.tracked_dirty_blocks <= cap
            assert dbi.entry_count <= dbi.config.num_entries


class TestAllDirtyBlocks:
    def test_flush_list_matches_marks(self):
        dbi = make_dbi()
        marked = {5, 17, 33, 34, 200}
        for addr in marked:
            dbi.mark_dirty(addr)
        assert set(dbi.all_dirty_blocks()) == marked


class ReferenceDbi:
    """Set-associative reference model used by the property tests."""

    def __init__(self, config):
        self.config = config
        # set -> list of (region, set_of_dirty_offsets) in LRW order (old first)
        self.sets = [[] for _ in range(config.num_sets)]

    def _find(self, region):
        s = self.sets[self.config.set_of(region)]
        for i, (r, bits) in enumerate(s):
            if r == region:
                return i
        return None

    def mark_dirty(self, addr):
        region = self.config.region_of(addr)
        offset = self.config.offset_of(addr)
        s = self.sets[self.config.set_of(region)]
        i = self._find(region)
        evicted = None
        if i is not None:
            r, bits = s.pop(i)
            bits.add(offset)
            s.append((r, bits))
        else:
            if len(s) >= self.config.associativity:
                victim_region, victim_bits = s.pop(0)
                evicted = sorted(
                    self.config.block_of(victim_region, b) for b in victim_bits
                )
            s.append((region, {offset}))
        return evicted

    def mark_clean(self, addr):
        region = self.config.region_of(addr)
        i = self._find(region)
        if i is None:
            return False
        s = self.sets[self.config.set_of(region)]
        r, bits = s[i]
        offset = self.config.offset_of(addr)
        if offset not in bits:
            return False
        bits.discard(offset)
        if not bits:
            s.pop(i)
        return True

    def is_dirty(self, addr):
        region = self.config.region_of(addr)
        i = self._find(region)
        if i is None:
            return False
        return self.config.offset_of(addr) in self.sets[self.config.set_of(region)][i][1]

    def all_dirty(self):
        out = set()
        for s in self.sets:
            for region, bits in s:
                out |= {self.config.block_of(region, b) for b in bits}
        return out


@settings(max_examples=100, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["dirty", "clean", "query"]),
            st.integers(min_value=0, max_value=255),
        ),
        max_size=300,
    )
)
def test_dbi_matches_reference_model(ops):
    """The DBI (with LRW) agrees exactly with an executable reference model."""
    config = DbiConfig(
        cache_blocks=256, alpha=Fraction(1, 2), granularity=8, associativity=4
    )
    dbi = DirtyBlockIndex(config)
    reference = ReferenceDbi(config)
    for op, addr in ops:
        if op == "dirty":
            eviction = dbi.mark_dirty(addr)
            ref_eviction = reference.mark_dirty(addr)
            got = sorted(eviction.dirty_blocks) if eviction else None
            assert got == ref_eviction
        elif op == "clean":
            if reference.is_dirty(addr):
                assert dbi.mark_clean(addr)
                assert reference.mark_clean(addr)
            else:
                # Strict contract: cleaning a non-dirty block is an error.
                with pytest.raises(ValueError):
                    dbi.mark_clean(addr)
                assert not reference.mark_clean(addr)
        else:
            assert dbi.is_dirty(addr) == reference.is_dirty(addr)
    assert set(dbi.all_dirty_blocks()) == reference.all_dirty()


@settings(max_examples=100, deadline=None)
@given(
    addrs=st.lists(st.integers(min_value=0, max_value=1023), max_size=400),
    replacement=st.sampled_from(["lrw", "lrw-bip", "rwip", "max-dirty", "min-dirty"]),
)
def test_structural_invariants_all_policies(addrs, replacement):
    """Entry count and capacity invariants hold under every policy."""
    dbi = make_dbi(cache_blocks=512, granularity=8, associativity=4,
                   replacement=replacement)
    written = set()
    evicted_or_cleaned = set()
    for addr in addrs:
        eviction = dbi.mark_dirty(addr)
        written.add(addr)
        if eviction:
            evicted_or_cleaned.update(eviction.dirty_blocks)
            # Evicted blocks must not still be dirty.
            for block in eviction.dirty_blocks:
                assert not dbi.is_dirty(block)
        assert dbi.entry_count <= dbi.config.num_entries
        assert dbi.tracked_dirty_blocks <= dbi.config.tracked_blocks
        assert dbi.is_dirty(addr)  # the block just written is always dirty
    # Every currently-dirty block was written at some point.
    assert set(dbi.all_dirty_blocks()) <= written
