"""Unit tests for DBI replacement policies."""

import pytest

from repro.core.dbi import DbiEntry
from repro.core.replacement import (
    LrwBipPolicy,
    LrwPolicy,
    MaxDirtyPolicy,
    MinDirtyPolicy,
    RwipPolicy,
    make_dbi_policy,
)
from repro.utils.rng import DeterministicRng


def entries_with_counts(counts):
    out = []
    for count in counts:
        entry = DbiEntry()
        entry.install(0)
        entry.bitvector = (1 << count) - 1
        out.append(entry)
    return out


class TestLrw:
    def test_victim_is_least_recently_written(self):
        policy = LrwPolicy(num_sets=1, num_ways=3)
        for way in (0, 1, 2):
            policy.on_insert(0, way)
        policy.on_write(0, 0)
        assert policy.victim_way(0, []) == 1

    def test_insert_is_most_recent(self):
        policy = LrwPolicy(num_sets=1, num_ways=2)
        policy.on_insert(0, 0)
        assert policy.victim_way(0, []) == 1

    def test_invalidate_becomes_next_victim(self):
        policy = LrwPolicy(num_sets=1, num_ways=3)
        for way in (0, 1, 2):
            policy.on_insert(0, way)
        policy.on_invalidate(0, 2)
        assert policy.victim_way(0, []) == 2


class TestLrwBip:
    def test_most_inserts_go_to_lrw_end(self):
        policy = LrwBipPolicy(num_sets=1, num_ways=4, rng=DeterministicRng(2))
        stayed_lrw = 0
        for _ in range(640):
            policy.on_insert(0, 2)
            if policy.victim_way(0, []) == 2:
                stayed_lrw += 1
        assert stayed_lrw > 600

    def test_writes_still_promote(self):
        policy = LrwBipPolicy(num_sets=1, num_ways=2, rng=DeterministicRng(2))
        policy.on_insert(0, 0)
        policy.on_write(0, 0)
        assert policy.victim_way(0, []) == 1


class TestRwip:
    def test_insert_long_not_distant(self):
        policy = RwipPolicy(num_sets=1, num_ways=2)
        policy.on_insert(0, 0)
        assert policy.victim_way(0, []) == 1  # untouched way still distant

    def test_write_promotes(self):
        policy = RwipPolicy(num_sets=1, num_ways=2)
        policy.on_insert(0, 0)
        policy.on_insert(0, 1)
        policy.on_write(0, 0)
        assert policy.victim_way(0, []) == 1

    def test_aging_terminates(self):
        policy = RwipPolicy(num_sets=1, num_ways=2)
        for way in (0, 1):
            policy.on_insert(0, way)
            policy.on_write(0, way)
        assert policy.victim_way(0, []) in (0, 1)


class TestCountPolicies:
    def test_max_dirty_picks_fullest(self):
        policy = MaxDirtyPolicy(num_sets=1, num_ways=3)
        entries = entries_with_counts([2, 7, 4])
        assert policy.victim_way(0, entries) == 1

    def test_min_dirty_picks_emptiest(self):
        policy = MinDirtyPolicy(num_sets=1, num_ways=3)
        entries = entries_with_counts([2, 7, 4])
        assert policy.victim_way(0, entries) == 0

    def test_ties_break_to_first(self):
        policy = MaxDirtyPolicy(num_sets=1, num_ways=3)
        entries = entries_with_counts([5, 5, 5])
        assert policy.victim_way(0, entries) == 0


class TestFactory:
    def test_all_names(self):
        for name, cls in [
            ("lrw", LrwPolicy),
            ("lrw-bip", LrwBipPolicy),
            ("rwip", RwipPolicy),
            ("max-dirty", MaxDirtyPolicy),
            ("min-dirty", MinDirtyPolicy),
        ]:
            assert isinstance(make_dbi_policy(name, 4, 4), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_dbi_policy("belady", 4, 4)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            LrwPolicy(num_sets=0, num_ways=4)
