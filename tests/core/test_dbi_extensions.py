"""Tests for the Section 7 extension queries on the DBI."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DbiConfig
from repro.core.dbi import DirtyBlockIndex


def make_dbi():
    return DirtyBlockIndex(
        DbiConfig(cache_blocks=1024, alpha=Fraction(1, 2), granularity=16,
                  associativity=8)
    )


class TestRegionHasDirty:
    def test_true_only_for_marked_regions(self):
        dbi = make_dbi()
        dbi.mark_dirty(17)  # region 1
        assert dbi.region_has_dirty(1)
        assert not dbi.region_has_dirty(0)
        assert not dbi.region_has_dirty(2)

    def test_cleared_when_last_bit_clears(self):
        dbi = make_dbi()
        dbi.mark_dirty(17)
        dbi.mark_clean(17)
        assert not dbi.region_has_dirty(1)


class TestRangeQuery:
    def test_detects_dirty_inside_range(self):
        dbi = make_dbi()
        dbi.mark_dirty(100)
        assert dbi.any_dirty_in_range(90, 110)
        assert dbi.any_dirty_in_range(100, 101)

    def test_misses_outside_range(self):
        dbi = make_dbi()
        dbi.mark_dirty(100)
        assert not dbi.any_dirty_in_range(0, 100)  # end-exclusive
        assert not dbi.any_dirty_in_range(101, 200)

    def test_spans_multiple_regions(self):
        dbi = make_dbi()
        dbi.mark_dirty(250)
        assert dbi.any_dirty_in_range(0, 1024)

    def test_empty_range(self):
        dbi = make_dbi()
        dbi.mark_dirty(5)
        assert not dbi.any_dirty_in_range(5, 5)
        assert not dbi.any_dirty_in_range(10, 5)

    @settings(max_examples=100, deadline=None)
    @given(
        marks=st.lists(st.integers(min_value=0, max_value=511), max_size=30),
        start=st.integers(min_value=0, max_value=511),
        span=st.integers(min_value=0, max_value=128),
    )
    def test_matches_bruteforce(self, marks, start, span):
        dbi = make_dbi()
        for addr in marks:
            dbi.mark_dirty(addr)
        live = set(dbi.all_dirty_blocks())
        end = start + span
        expected = any(start <= addr < end for addr in live)
        assert dbi.any_dirty_in_range(start, end) == expected


class TestFlush:
    def test_flush_returns_all_dirty_grouped(self):
        dbi = make_dbi()
        for addr in (3, 7, 30, 200):
            dbi.mark_dirty(addr)
        groups = dbi.flush()
        flat = sorted(addr for group in groups for addr in group)
        assert flat == [3, 7, 30, 200]
        # Each group belongs to exactly one region.
        for group in groups:
            assert len({addr // 16 for addr in group}) == 1

    def test_flush_empties_the_dbi(self):
        dbi = make_dbi()
        dbi.mark_dirty(3)
        dbi.flush()
        assert dbi.entry_count == 0
        assert not dbi.is_dirty(3)
        assert dbi.all_dirty_blocks() == []

    def test_flush_empty_dbi(self):
        dbi = make_dbi()
        assert dbi.flush() == []

    def test_dbi_usable_after_flush(self):
        dbi = make_dbi()
        dbi.mark_dirty(3)
        dbi.flush()
        dbi.mark_dirty(99)
        assert dbi.is_dirty(99)
        assert dbi.entry_count == 1

    def test_flush_counters(self):
        dbi = make_dbi()
        dbi.mark_dirty(3)
        dbi.mark_dirty(300)
        dbi.flush()
        flat = dbi.stats.as_dict()
        assert flat["dbi.flushes"] == 1
        assert flat["dbi.flushed_entries"] == 2
