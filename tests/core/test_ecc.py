"""Unit tests for the heterogeneous ECC domains and soft-error injection."""

from fractions import Fraction

from repro.core.config import DbiConfig
from repro.core.dbi import DirtyBlockIndex
from repro.core.ecc import (
    EccDomain,
    SoftErrorConfig,
    SoftErrorInjector,
    UntrackedEccDomain,
)


def make_domain():
    dbi = DirtyBlockIndex(
        DbiConfig(cache_blocks=1024, alpha=Fraction(1, 4), granularity=16,
                  associativity=4)
    )
    return dbi, EccDomain(dbi)


class TestProtectionMapping:
    def test_dirty_blocks_are_ecc_protected(self):
        dbi, domain = make_domain()
        dbi.mark_dirty(42)
        assert domain.is_ecc_protected(42)

    def test_clean_blocks_are_not(self):
        _dbi, domain = make_domain()
        assert not domain.is_ecc_protected(42)

    def test_cleaning_removes_protection(self):
        dbi, domain = make_domain()
        dbi.mark_dirty(42)
        dbi.mark_clean(42)
        assert not domain.is_ecc_protected(42)

    def test_invariant_holds_under_traffic(self):
        dbi, domain = make_domain()
        for addr in range(0, 512, 3):
            dbi.mark_dirty(addr)
            assert domain.protection_invariant_holds()


class TestFaultInjection:
    def test_single_bit_fault_on_dirty_corrected(self):
        dbi, domain = make_domain()
        dbi.mark_dirty(7)
        outcome = domain.inject_single_bit_fault(7)
        assert outcome.detected
        assert outcome.corrected
        assert not outcome.data_loss

    def test_single_bit_fault_on_clean_refetches(self):
        _dbi, domain = make_domain()
        outcome = domain.inject_single_bit_fault(7)
        assert outcome.detected
        assert not outcome.corrected
        assert outcome.needs_refetch
        assert not outcome.data_loss

    def test_double_bit_fault_on_dirty_is_data_loss(self):
        dbi, domain = make_domain()
        dbi.mark_dirty(7)
        outcome = domain.inject_double_bit_fault(7)
        assert outcome.detected
        assert outcome.data_loss

    def test_double_bit_fault_on_clean_is_safe(self):
        _dbi, domain = make_domain()
        outcome = domain.inject_double_bit_fault(7)
        assert not outcome.data_loss

    def test_protection_checks_do_not_perturb_dbi_stats(self):
        """Injection is observational: fault modelling must not inflate the
        DBI's query counters (results stay byte-identical)."""
        dbi, domain = make_domain()
        dbi.mark_dirty(7)
        queries_before = dbi.stats.counter("queries").value
        domain.is_ecc_protected(7)
        domain.inject_single_bit_fault(7)
        domain.inject_double_bit_fault(7)
        domain.protection_invariant_holds()
        assert dbi.stats.counter("queries").value == queries_before


class TestUntrackedDomain:
    """The Section 3.3 contrast: the same ECC budget without a DBI."""

    def make(self, dirty_blocks=(), coverage=Fraction(1, 4), seed=0xECC):
        dirty = set(dirty_blocks)
        return UntrackedEccDomain(
            dirty.__contains__, coverage=coverage, seed=seed
        )

    def _covered_and_uncovered(self, domain):
        covered = next(
            a for a in range(4096) if domain.is_ecc_protected(a)
        )
        uncovered = next(
            a for a in range(4096) if not domain.is_ecc_protected(a)
        )
        return covered, uncovered

    def test_coverage_is_blind_to_dirtiness(self):
        dirty = self.make(dirty_blocks=range(64))
        clean = self.make(dirty_blocks=())
        sample = list(range(256))
        assert [dirty.is_ecc_protected(a) for a in sample] == [
            clean.is_ecc_protected(a) for a in sample
        ]

    def test_coverage_fraction_is_respected(self):
        domain = self.make(coverage=Fraction(1, 4))
        covered = sum(domain.is_ecc_protected(a) for a in range(4096))
        assert 0.18 < covered / 4096 < 0.32  # ~25%, seeded hash subset

    def test_full_coverage_recovers_uniform_secded(self):
        domain = self.make(coverage=Fraction(1))
        assert domain.protection_invariant_holds()
        assert all(domain.is_ecc_protected(a) for a in range(256))

    def test_single_bit_on_covered_block_corrected(self):
        domain = self.make(dirty_blocks=range(4096))
        covered, _ = self._covered_and_uncovered(domain)
        outcome = domain.inject_single_bit_fault(covered)
        assert outcome.detected and outcome.corrected
        assert not outcome.needs_refetch and not outcome.data_loss

    def test_single_bit_on_uncovered_clean_block_refetches(self):
        domain = self.make(dirty_blocks=())
        _, uncovered = self._covered_and_uncovered(domain)
        outcome = domain.inject_single_bit_fault(uncovered)
        assert outcome.detected and not outcome.corrected
        assert outcome.needs_refetch and not outcome.data_loss

    def test_single_bit_on_uncovered_dirty_block_is_data_loss(self):
        """The failure mode the DBI eliminates: a dirty block outside the
        blind SECDED subset has only parity, and memory's copy is stale."""
        domain = self.make(dirty_blocks=range(4096))
        _, uncovered = self._covered_and_uncovered(domain)
        outcome = domain.inject_single_bit_fault(uncovered)
        assert outcome.detected and not outcome.corrected
        assert not outcome.needs_refetch
        assert outcome.data_loss

    def test_double_bit_on_uncovered_dirty_block_is_silent_loss(self):
        domain = self.make(dirty_blocks=range(4096))
        _, uncovered = self._covered_and_uncovered(domain)
        outcome = domain.inject_double_bit_fault(uncovered)
        assert not outcome.detected and outcome.data_loss

    def test_protection_invariant_fails_below_full_coverage(self):
        assert not self.make(coverage=Fraction(1, 4)).protection_invariant_holds()
        assert not self.make(coverage=Fraction(0)).protection_invariant_holds()


class TestLiveInjection:
    """SoftErrorInjector against real simulations."""

    def _run(self, mechanism, soft_errors, refs=6000):
        from repro.analysis.scaling import QUICK_SCALE
        from repro.sim.system import System

        trace = QUICK_SCALE.benchmark_trace("lbm", seed=3, refs=refs)
        config = QUICK_SCALE.system_config(mechanism)
        system = System(config, [trace], soft_errors=soft_errors)
        result = system.run()
        return system, result

    def test_injection_does_not_change_results(self):
        from repro.analysis.scaling import QUICK_SCALE
        from repro.sim.system import run_system

        trace = QUICK_SCALE.benchmark_trace("lbm", seed=3, refs=6000)
        config = QUICK_SCALE.system_config("dbi")
        reference = run_system(config, [trace]).to_dict()
        system, result = self._run(
            "dbi", SoftErrorConfig(faults=40, interval=300, start=100)
        )
        assert result.to_dict() == reference
        assert system.soft_errors.counts["injected"] == 40

    def test_dbi_mechanism_gets_tracked_domain(self):
        system, _ = self._run(
            "dbi", SoftErrorConfig(faults=30, interval=300, start=100)
        )
        injector = system.soft_errors
        assert injector.tracked
        assert isinstance(injector.domain, EccDomain)
        assert injector.counts["data_loss"] == 0
        assert injector.counts["protection_violations"] == 0

    def test_baseline_mechanism_gets_untracked_domain(self):
        system, _ = self._run(
            "baseline", SoftErrorConfig(faults=30, interval=300, start=100)
        )
        injector = system.soft_errors
        assert not injector.tracked
        assert isinstance(injector.domain, UntrackedEccDomain)
        # Budget mirrors the system's DBI alpha when coverage is unset.
        assert injector.domain.coverage == system.config.dbi_alpha

    def test_protection_invariant_survives_live_cache_churn(self):
        """Satellite: after thousands of references dirty and clean blocks
        through DBI evictions and writebacks, every block the DBI tracks as
        dirty must still be ECC-covered."""
        system, _ = self._run(
            "dbi+awb+clb",
            SoftErrorConfig(faults=100, interval=100, start=50),
            refs=8000,
        )
        injector = system.soft_errors
        assert injector.tracked
        assert injector.domain.protection_invariant_holds()
        assert injector.counts["protection_violations"] == 0
        assert injector.counts["injected"] == 100

    def test_zero_coverage_untracked_domain_loses_dirty_blocks(self):
        """coverage=0 (parity everywhere) guarantees any dirty target is a
        data-loss event — the anchor for the reliability experiment."""
        system, _ = self._run(
            "baseline",
            SoftErrorConfig(
                faults=200, interval=50, start=50, coverage=Fraction(0)
            ),
            refs=8000,
        )
        counts = system.soft_errors.counts
        assert counts["dirty_targets"] > 0
        assert counts["data_loss"] == counts["dirty_targets"]
        assert counts["corrected"] == 0
