"""Unit tests for the heterogeneous ECC domain."""

from fractions import Fraction

from repro.core.config import DbiConfig
from repro.core.dbi import DirtyBlockIndex
from repro.core.ecc import EccDomain


def make_domain():
    dbi = DirtyBlockIndex(
        DbiConfig(cache_blocks=1024, alpha=Fraction(1, 4), granularity=16,
                  associativity=4)
    )
    return dbi, EccDomain(dbi)


class TestProtectionMapping:
    def test_dirty_blocks_are_ecc_protected(self):
        dbi, domain = make_domain()
        dbi.mark_dirty(42)
        assert domain.is_ecc_protected(42)

    def test_clean_blocks_are_not(self):
        _dbi, domain = make_domain()
        assert not domain.is_ecc_protected(42)

    def test_cleaning_removes_protection(self):
        dbi, domain = make_domain()
        dbi.mark_dirty(42)
        dbi.mark_clean(42)
        assert not domain.is_ecc_protected(42)

    def test_invariant_holds_under_traffic(self):
        dbi, domain = make_domain()
        for addr in range(0, 512, 3):
            dbi.mark_dirty(addr)
            assert domain.protection_invariant_holds()


class TestFaultInjection:
    def test_single_bit_fault_on_dirty_corrected(self):
        dbi, domain = make_domain()
        dbi.mark_dirty(7)
        outcome = domain.inject_single_bit_fault(7)
        assert outcome.detected
        assert outcome.corrected
        assert not outcome.data_loss

    def test_single_bit_fault_on_clean_refetches(self):
        _dbi, domain = make_domain()
        outcome = domain.inject_single_bit_fault(7)
        assert outcome.detected
        assert not outcome.corrected
        assert outcome.needs_refetch
        assert not outcome.data_loss

    def test_double_bit_fault_on_dirty_is_data_loss(self):
        dbi, domain = make_domain()
        dbi.mark_dirty(7)
        outcome = domain.inject_double_bit_fault(7)
        assert outcome.detected
        assert outcome.data_loss

    def test_double_bit_fault_on_clean_is_safe(self):
        _dbi, domain = make_domain()
        outcome = domain.inject_double_bit_fault(7)
        assert not outcome.data_loss
