"""Unit tests for DbiConfig."""

from fractions import Fraction

import pytest

from repro.core.config import DbiConfig


def make(cache_blocks=4096, alpha=Fraction(1, 4), granularity=16, associativity=4):
    return DbiConfig(
        cache_blocks=cache_blocks,
        alpha=alpha,
        granularity=granularity,
        associativity=associativity,
    )


class TestGeometry:
    def test_paper_default_sizing(self):
        # 2MB cache (32768 blocks), alpha=1/4, granularity=64 -> 128 entries.
        config = DbiConfig(cache_blocks=32768, granularity=64, associativity=16)
        assert config.tracked_blocks == 8192
        assert config.num_entries == 128
        assert config.num_sets == 8

    def test_tracked_blocks_scales_with_alpha(self):
        assert make(alpha=Fraction(1, 2)).tracked_blocks == 2048
        assert make(alpha=Fraction(1, 4)).tracked_blocks == 1024

    def test_float_alpha_converted(self):
        config = make(alpha=0.5)
        assert config.alpha == Fraction(1, 2)

    def test_no_entries_rejected(self):
        with pytest.raises(ValueError):
            DbiConfig(cache_blocks=64, alpha=Fraction(1, 4), granularity=64)

    def test_fewer_entries_than_ways_rejected(self):
        with pytest.raises(ValueError):
            make(cache_blocks=256, granularity=16, associativity=16)

    def test_non_power_of_two_granularity_rejected(self):
        with pytest.raises(ValueError):
            make(granularity=48)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            make(alpha=Fraction(-1, 4))


class TestAddressMath:
    def test_region_and_offset(self):
        config = make(granularity=16)
        assert config.region_of(0) == 0
        assert config.region_of(15) == 0
        assert config.region_of(16) == 1
        assert config.offset_of(17) == 1

    def test_block_of_round_trip(self):
        config = make(granularity=16)
        for addr in (0, 1, 15, 16, 1000, 12345):
            assert config.block_of(config.region_of(addr), config.offset_of(addr)) == addr

    def test_block_of_rejects_bad_offset(self):
        config = make(granularity=16)
        with pytest.raises(ValueError):
            config.block_of(0, 16)

    def test_set_mapping_in_range(self):
        config = make()
        for region in range(1000):
            assert 0 <= config.set_of(region) < config.num_sets
