"""Tests for the DBI-based DRAM-cache dispatcher (paper Section 7)."""

from fractions import Fraction

import pytest

from repro.core.config import DbiConfig
from repro.core.dbi import DirtyBlockIndex
from repro.extensions.dram_cache import (
    DispatchDecision,
    DramCacheDispatcher,
    DramCacheModel,
)


def make_rig(threshold=2):
    dbi = DirtyBlockIndex(
        DbiConfig(cache_blocks=4096, alpha=Fraction(1, 4), granularity=16,
                  associativity=8)
    )
    cache = DramCacheModel(dbi=dbi, capacity_blocks=256)
    return cache, DramCacheDispatcher(cache, queue_penalty_threshold=threshold)


class TestDirtyRouting:
    def test_dirty_block_forced_to_cache(self):
        cache, dispatcher = make_rig()
        cache.write(100)
        # Load the cache queue so balancing would otherwise offload.
        for _ in range(10):
            dispatcher.cache_queue += 1
        assert dispatcher.dispatch_read(100) is DispatchDecision.DRAM_CACHE
        assert dispatcher.stats.as_dict()["dispatch.forced_to_cache"] == 1

    def test_clean_block_can_offload(self):
        cache, dispatcher = make_rig(threshold=2)
        cache.install(100)  # present but clean
        dispatcher.cache_queue = 5
        dispatcher.off_chip_queue = 0
        assert dispatcher.dispatch_read(100) is DispatchDecision.OFF_CHIP

    def test_absent_block_can_offload(self):
        _cache, dispatcher = make_rig(threshold=0)
        assert dispatcher.dispatch_read(999) is DispatchDecision.OFF_CHIP


class TestLoadBalancing:
    def test_balanced_queues_prefer_cache(self):
        _cache, dispatcher = make_rig(threshold=2)
        assert dispatcher.dispatch_read(1) is DispatchDecision.DRAM_CACHE

    def test_offload_engages_past_threshold(self):
        _cache, dispatcher = make_rig(threshold=3)
        decisions = [dispatcher.dispatch_read(i) for i in range(10)]
        assert DispatchDecision.OFF_CHIP in decisions
        # Queues stay within the threshold band.
        assert dispatcher.cache_queue - dispatcher.off_chip_queue <= 3

    def test_off_chip_share_under_write_heavy_traffic(self):
        cache, dispatcher = make_rig(threshold=1)
        for addr in range(64):
            cache.write(addr)
        for addr in range(64):
            dispatcher.dispatch_read(addr)
        # Every read was dirty: nothing could be offloaded.
        assert dispatcher.off_chip_share == 0.0

    def test_off_chip_share_under_clean_traffic(self):
        _cache, dispatcher = make_rig(threshold=1)
        for addr in range(64):
            dispatcher.dispatch_read(addr)
        assert dispatcher.off_chip_share > 0.3


class TestQueueAccounting:
    def test_complete_decrements(self):
        _cache, dispatcher = make_rig()
        decision = dispatcher.dispatch_read(5)
        assert dispatcher.cache_queue == 1
        dispatcher.complete(decision)
        assert dispatcher.cache_queue == 0

    def test_underflow_rejected(self):
        _cache, dispatcher = make_rig()
        with pytest.raises(ValueError):
            dispatcher.complete(DispatchDecision.OFF_CHIP)


class TestDramCacheModel:
    def test_install_and_presence(self):
        cache, _dispatcher = make_rig()
        cache.install(7)
        assert cache.contains(7)
        assert not cache.contains(8)

    def test_capacity_eviction(self):
        dbi = DirtyBlockIndex(
            DbiConfig(cache_blocks=4096, alpha=Fraction(1, 4), granularity=16,
                      associativity=8)
        )
        cache = DramCacheModel(dbi=dbi, capacity_blocks=4)
        for addr in range(5):
            cache.install(addr)
        assert len(cache._present) == 4

    def test_evicted_dirty_block_cleared_in_dbi(self):
        dbi = DirtyBlockIndex(
            DbiConfig(cache_blocks=4096, alpha=Fraction(1, 4), granularity=16,
                      associativity=8)
        )
        cache = DramCacheModel(dbi=dbi, capacity_blocks=2)
        cache.write(0)
        cache.install(1)
        cache.install(2)  # evicts 0 (LRU)
        assert not dbi.is_dirty(0)
        assert cache.stats.as_dict()["dram_cache.dirty_evictions"] == 1

    def test_lru_touch_protects_a_block(self):
        dbi = DirtyBlockIndex(
            DbiConfig(cache_blocks=4096, alpha=Fraction(1, 4), granularity=16,
                      associativity=8)
        )
        cache = DramCacheModel(dbi=dbi, capacity_blocks=2)
        cache.install(0)
        cache.install(1)
        cache.touch(0)  # 1 becomes LRU
        assert cache.install(2) == 1
        assert cache.contains(0)

    def test_write_to_present_block_dirties(self):
        cache, _dispatcher = make_rig()
        cache.install(9)
        cache.write(9)
        assert cache.dbi.is_dirty(9)
