"""Tests for the coherent bulk-DMA engine (paper Section 7)."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DbiConfig
from repro.core.dbi import DirtyBlockIndex
from repro.extensions.bulk_dma import BulkDmaEngine


def make_engine():
    dbi = DirtyBlockIndex(
        DbiConfig(cache_blocks=2048, alpha=Fraction(1, 2), granularity=16,
                  associativity=8)
    )
    return dbi, BulkDmaEngine(dbi)


class TestPrepareRead:
    def test_clean_range_needs_one_query_per_region(self):
        _dbi, engine = make_engine()
        report = engine.prepare_read(start_block=0, num_blocks=64)
        assert report.dirty_blocks_flushed == ()
        assert report.dbi_queries == 4  # 64 blocks / 16-block regions
        assert report.conventional_tag_lookups == 64
        assert report.lookup_reduction == 16.0

    def test_dirty_blocks_in_range_flushed(self):
        dbi, engine = make_engine()
        dbi.mark_dirty(10)
        dbi.mark_dirty(30)
        dbi.mark_dirty(200)  # outside the transfer
        report = engine.prepare_read(start_block=0, num_blocks=64)
        assert report.dirty_blocks_flushed == (10, 30)
        assert not dbi.is_dirty(10)
        assert not dbi.is_dirty(30)
        assert dbi.is_dirty(200)  # untouched

    def test_partial_region_overlap_only_flushes_range(self):
        dbi, engine = make_engine()
        dbi.mark_dirty(15)  # region 0, inside
        dbi.mark_dirty(16)  # region 1, outside transfer [0, 16)
        report = engine.prepare_read(start_block=0, num_blocks=16)
        assert report.dirty_blocks_flushed == (15,)
        assert dbi.is_dirty(16)

    def test_unaligned_transfer(self):
        dbi, engine = make_engine()
        dbi.mark_dirty(20)
        report = engine.prepare_read(start_block=18, num_blocks=10)
        assert report.dirty_blocks_flushed == (20,)

    def test_stats_accumulate(self):
        dbi, engine = make_engine()
        dbi.mark_dirty(5)
        engine.prepare_read(0, 16)
        engine.prepare_read(16, 16)
        flat = engine.stats.as_dict()
        assert flat["dma.transfers"] == 2
        assert flat["dma.blocks_flushed"] == 1


@settings(max_examples=100, deadline=None)
@given(
    marks=st.lists(st.integers(min_value=0, max_value=511), max_size=40),
    start=st.integers(min_value=0, max_value=480),
    span=st.integers(min_value=1, max_value=64),
)
def test_transfer_safety_property(marks, start, span):
    """After prepare_read, no block in the range is dirty, blocks outside
    are untouched, and every flushed block was previously dirty in-range."""
    dbi, engine = make_engine()
    for addr in marks:
        dbi.mark_dirty(addr)
    before = set(dbi.all_dirty_blocks())
    report = engine.prepare_read(start, span)
    after = set(dbi.all_dirty_blocks())
    in_range = {a for a in before if start <= a < start + span}
    assert set(report.dirty_blocks_flushed) == in_range
    assert after == before - in_range
    assert not dbi.any_dirty_in_range(start, start + span)
