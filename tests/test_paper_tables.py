"""Tables 1 and 2 of the paper, pinned as executable configuration facts.

These two tables are configuration inventories rather than results; this
module is their reproduction — if a default drifts away from the paper's
machine, a test here fails.
"""

from fractions import Fraction

from repro.analysis.scaling import FULL_SCALE
from repro.cache.config import paper_l1_config, paper_l2_config, paper_llc_config
from repro.dram.config import DramConfig
from repro.mechanisms.registry import MECHANISM_NAMES, llc_replacement_for
from repro.sim.system import SystemConfig


class TestTable1System:
    """Paper Table 1: the simulated machine."""

    def test_processor(self):
        config = SystemConfig()
        assert config.window == 128  # 128-entry instruction window
        assert config.max_outstanding_loads == 32  # L1 MSHRs

    def test_l1(self):
        l1 = paper_l1_config()
        assert l1.num_blocks * 64 == 32 * 1024
        assert l1.associativity == 2
        assert l1.tag_latency == 2 and l1.data_latency == 2
        assert not l1.serial_lookup  # parallel tag and data

    def test_l2(self):
        l2 = paper_l2_config()
        assert l2.num_blocks * 64 == 256 * 1024
        assert l2.associativity == 8
        assert l2.tag_latency == 12 and l2.data_latency == 14
        assert not l2.serial_lookup

    def test_l3_scaling(self):
        # 2MB/core; 16/32/32/32-way; tag 10/12/13/14; data 24/29/31/33.
        expectations = {
            1: (16, 10, 24),
            2: (32, 12, 29),
            4: (32, 13, 31),
            8: (32, 14, 33),
        }
        for cores, (assoc, tag, data) in expectations.items():
            llc = paper_llc_config(cores)
            assert llc.num_blocks * 64 == cores * 2 * 1024 * 1024
            assert llc.associativity == assoc
            assert llc.tag_latency == tag
            assert llc.data_latency == data
            assert llc.serial_lookup  # serial tag and data lookup

    def test_dbi_row(self):
        # Size alpha=1/4, granularity 64, associativity 16, latency 4, LRW.
        config = SystemConfig()
        assert config.dbi_alpha == Fraction(1, 4)
        assert config.dbi_granularity == 64
        assert config.dbi_replacement == "lrw"
        full = FULL_SCALE.system_config("dbi")
        assert full.dbi_granularity == 64

    def test_dram_row(self):
        # DDR3, 1 channel/rank, 8 banks, 8KB row, 64-entry write buffer,
        # drain-when-full (drain to empty).
        dram = DramConfig()
        assert dram.num_banks == 8
        assert dram.row_buffer_blocks * 64 == 8 * 1024
        assert dram.write_buffer_entries == 64
        assert dram.drain_low_watermark == 0


class TestTable2Mechanisms:
    """Paper Table 2: the evaluated mechanisms and their policies."""

    def test_all_nine_mechanisms(self):
        assert set(MECHANISM_NAMES) == {
            "baseline", "tadip", "dawb", "vwq", "skipcache",
            "dbi", "dbi+awb", "dbi+clb", "dbi+awb+clb",
        }

    def test_baseline_uses_lru_everyone_else_tadip(self):
        assert llc_replacement_for("baseline") == "lru"
        for name in MECHANISM_NAMES:
            if name != "baseline":
                assert llc_replacement_for(name) == "tadip", name

    def test_skip_cache_predictor_defaults(self):
        # Threshold 0.95 (Table 2); epoch length is scaled with run length.
        from repro.mechanisms.misspredictor import MissPredictor

        predictor = MissPredictor(num_cores=1, num_sets=2048)
        assert predictor.threshold == 0.95
