"""Conservation properties: nothing is lost or double-served end to end.

These invariants are mechanism-independent and catch entire classes of
plumbing bugs (dropped fills, duplicated writes, stuck queues).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.config import DramConfig
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest
from repro.sim.system import System
from repro.utils.events import EventQueue
from tests.sim.conftest import random_trace, small_config


class TestMemoryControllerConservation:
    @settings(max_examples=30, deadline=None)
    @given(
        addrs=st.lists(
            st.tuples(st.integers(min_value=0, max_value=512), st.booleans()),
            min_size=1, max_size=60,
        )
    )
    def test_every_read_completes_exactly_once(self, addrs):
        queue = EventQueue()
        controller = MemoryController(
            queue, DramConfig(num_banks=4, row_buffer_blocks=16,
                              write_buffer_entries=8)
        )
        completed = []
        expected_reads = 0
        for addr, is_write in addrs:
            if is_write:
                if controller.can_accept_write():
                    controller.enqueue_write(
                        MemoryRequest(block_addr=addr, is_write=True)
                    )
            else:
                expected_reads += 1
                controller.enqueue_read(
                    MemoryRequest(block_addr=addr, is_write=False,
                                  on_complete=completed.append)
                )
        queue.run()
        assert len(completed) == expected_reads
        assert controller.is_idle()

    @settings(max_examples=30, deadline=None)
    @given(
        addrs=st.lists(st.integers(min_value=0, max_value=256),
                       min_size=1, max_size=40)
    )
    def test_accepted_writes_all_reach_dram_or_coalesce(self, addrs):
        queue = EventQueue()
        controller = MemoryController(
            queue, DramConfig(num_banks=4, row_buffer_blocks=16,
                              write_buffer_entries=64)
        )
        accepted = 0
        coalesced = 0
        for addr in addrs:
            before = controller.stats.as_dict().get("dram.writes_coalesced", 0)
            assert controller.enqueue_write(
                MemoryRequest(block_addr=addr, is_write=True)
            )
            after = controller.stats.as_dict().get("dram.writes_coalesced", 0)
            if after > before:
                coalesced += 1
            else:
                accepted += 1
        queue.run()
        performed = controller.stats.as_dict()["dram.dram_writes_performed"]
        assert performed == accepted
        assert performed + coalesced == len(addrs)


class TestSystemConservation:
    @pytest.mark.parametrize("mechanism", ["baseline", "dbi+awb+clb", "dawb"])
    def test_no_stranded_state_after_run(self, mechanism):
        trace = random_trace(refs=400, footprint=8192, write_fraction=0.4)
        system = System(small_config(mechanism), [trace])
        system.run()
        # Everything quiesced: no queued port work, fills, or DRAM backlog.
        assert system.port.queued == 0
        assert system.mechanism.is_idle()
        assert system.hierarchy.is_idle()
        assert system.memory.is_idle()
        assert len(system.queue) == 0

    def test_loads_issued_equal_loads_completed(self):
        trace = random_trace(refs=500, footprint=4096, write_fraction=0.0)
        system = System(small_config("baseline"), [trace])
        system.run()
        core = system.cores[0]
        assert core.outstanding_loads == 0

    def test_llc_dirty_blocks_accounted_at_end(self):
        """Dirty blocks either reached DRAM or are still tracked, never lost."""
        trace = random_trace(refs=600, footprint=8192, write_fraction=0.5)
        system = System(small_config("dbi"), [trace])
        system.run()
        dbi = system.mechanism.dbi
        # Every DBI-tracked block is genuinely in the cache (no phantom dirt).
        for block in dbi.all_dirty_blocks():
            assert system.llc.contains(block)
