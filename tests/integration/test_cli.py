"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_catalogues(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out
        assert "dbi+awb+clb" in out
        assert "quick" in out


class TestRun:
    def test_run_prints_metrics(self, capsys):
        code = main(["run", "bzip2", "dbi", "--refs", "2000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "memory WPKI" in out

    def test_unknown_benchmark_raises(self):
        with pytest.raises(ValueError):
            main(["run", "gcc", "dbi", "--refs", "100"])


class TestExperiment:
    def test_unknown_experiment_rejected(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
