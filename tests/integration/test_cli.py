"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_catalogues(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out
        assert "dbi+awb+clb" in out
        assert "quick" in out


class TestRun:
    def test_run_prints_metrics(self, capsys):
        code = main(["run", "bzip2", "dbi", "--refs", "2000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "memory WPKI" in out

    def test_unknown_benchmark_raises(self):
        with pytest.raises(ValueError):
            main(["run", "gcc", "dbi", "--refs", "100"])


class TestExperiment:
    def test_unknown_experiment_rejected(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_keep_going_writes_failure_manifest(self, capsys, tmp_path,
                                                monkeypatch):
        """Chaos that kills every attempt: the artifact still renders (all
        cells n/a) and the failure manifest lands in results/."""
        import json
        import os

        monkeypatch.chdir(tmp_path)
        # max-attempts 1: jobs that reach a pool worker fail outright
        # (with retries allowed, inline degradation would rescue them all
        # and nothing would land in the manifest).
        code = main([
            "experiment", "fig6", "--scale", "quick",
            "--benchmarks", "bzip2", "--workers", "2", "--quiet",
            "--keep-going", "--max-attempts", "1", "--no-cache",
            "--chaos", "seed=1,crash=1.0",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "n/a" in captured.out
        assert "jobs failed" in captured.err
        manifest_path = os.path.join("results", "sweep_failures.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        assert manifest["jobs_failed"] > 0
        assert all(f["kind"] == "crash" for f in manifest["failures"])


class TestReliability:
    def test_reliability_reports_the_ecc_contrast(self, capsys):
        """Acceptance smoke: DBI rows report zero data loss; the untracked
        baseline with the same budget appears alongside."""
        code = main([
            "reliability", "--scale", "quick", "--refs", "6000",
            "--mechanisms", "baseline,dbi", "--alphas", "1/4",
            "--faults", "60", "--interval", "150",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "DBI-tracked" in out
        assert "untracked (coverage=1/4)" in out
        assert "data loss" in out
        assert "lost 0 blocks" in out  # tracked domains lose nothing

    def test_reliability_accepts_fraction_alphas(self, capsys):
        code = main([
            "reliability", "--scale", "quick", "--refs", "3000",
            "--mechanisms", "dbi", "--alphas", "1/2", "--faults", "20",
        ])
        assert code == 0
        assert "alpha=1/2" in capsys.readouterr().out
