"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=600):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "IPC" in out
        assert "write row hit rate" in out

    def test_ecc_overhead(self):
        out = run_example("ecc_overhead.py")
        assert "Table 4" in out
        assert "protection invariant holds" in out

    def test_cache_flush(self):
        out = run_example("cache_flush.py")
        assert "lookup reduction" in out

    def test_single_core_study_small(self):
        out = run_example(
            "single_core_study.py", "--benchmarks", "bzip2", "--scale", "quick"
        )
        assert "Figure 6a" in out
        assert "bzip2" in out

    def test_section7_extensions(self):
        out = run_example("section7_extensions.py")
        assert "Self-balancing DRAM-cache dispatch" in out
        assert "lookup reduction" in out

    @pytest.mark.slow
    def test_multicore_interference_small(self):
        out = run_example(
            "multicore_interference.py", "--cores", "2", "--mixes", "1"
        )
        assert "weighted speedup" in out
