"""End-to-end integration tests: full systems, paper-shaped assertions.

These run small-but-real simulations (quick scale, reduced refs) and assert
the *relationships* the paper's evaluation rests on, not absolute numbers.
"""

import pytest

from repro.analysis.scaling import QUICK_SCALE
from repro.sim.system import System, run_system

REFS = 8_000  # enough for steady state at quick scale, fast enough for CI


def bench(name):
    return QUICK_SCALE.benchmark_trace(name, refs=REFS)


def run(mechanism, trace, **overrides):
    return run_system(QUICK_SCALE.system_config(mechanism, **overrides), [trace])


class TestWriteRowLocality:
    """Paper Figure 6b: proactive row writeback lifts write row-hit rate."""

    @pytest.mark.parametrize("mechanism", ["dawb", "vwq", "dbi+awb"])
    def test_write_rhr_improves_on_write_heavy_workload(self, mechanism):
        trace = bench("lbm")
        base = run("tadip", trace)
        ours = run(mechanism, trace)
        assert ours.write_row_hit_rate > base.write_row_hit_rate + 0.1


class TestTagLookupCost:
    """Paper Figure 6c: DAWB/VWQ amplify lookups; DBI does not; CLB reduces."""

    def test_dawb_amplifies_lookups(self):
        trace = bench("lbm")
        base = run("tadip", trace)
        dawb = run("dawb", trace)
        assert dawb.tag_lookups_pki > 1.5 * base.tag_lookups_pki

    def test_dbi_awb_lookups_near_baseline(self):
        trace = bench("lbm")
        base = run("tadip", trace)
        dbi = run("dbi+awb", trace)
        assert dbi.tag_lookups_pki < 1.4 * base.tag_lookups_pki

    def test_clb_reduces_lookups_for_streaming_misses(self):
        trace = bench("libquantum")
        base = run("tadip", trace)
        clb = run("dbi+awb+clb", trace)
        assert clb.tag_lookups_pki < base.tag_lookups_pki
        assert clb.stats.get("mech.bypassed_lookups", 0) > 0


class TestReadPathUnchanged:
    """Paper Section 6.1: DBI does not change the read hit rate."""

    def test_llc_mpki_unchanged_without_clb(self):
        trace = bench("GemsFDTD")
        base = run("tadip", trace)
        dbi = run("dbi+awb", trace)
        assert dbi.llc_mpki == pytest.approx(base.llc_mpki, rel=0.05)


class TestCacheFriendlyWorkloadsUnharmed:
    """Paper Figure 6: no visible impact where the LLC absorbs the traffic."""

    @pytest.mark.parametrize("name", ["bzip2", "astar"])
    def test_ipc_within_three_percent(self, name):
        trace = bench(name)
        base = run("tadip", trace)
        dbi = run("dbi+awb+clb", trace)
        assert dbi.ipc[0] > 0.97 * base.ipc[0]


class TestDbiInvariantsEndToEnd:
    """The paper's DBI semantics hold through a full timing simulation."""

    @pytest.mark.parametrize("name", ["lbm", "mcf", "bzip2"])
    def test_invariants_after_full_run(self, name):
        system = System(
            QUICK_SCALE.system_config("dbi+awb+clb"),
            [QUICK_SCALE.benchmark_trace(name, refs=REFS)],
        )
        system.run()
        system.mechanism.check_invariants()
        assert system.hierarchy.is_idle()
        assert system.memory.is_idle()

    def test_dirty_blocks_bounded_by_alpha(self):
        system = System(
            QUICK_SCALE.system_config("dbi"),
            [QUICK_SCALE.benchmark_trace("lbm", refs=REFS)],
        )
        system.run()
        dbi = system.mechanism.dbi
        assert dbi.tracked_dirty_blocks <= dbi.config.tracked_blocks


class TestSkipCacheWriteThrough:
    """Skip Cache's write-through policy costs write bandwidth (Section 6)."""

    def test_skipcache_writes_more_than_tadip(self):
        trace = bench("cactusADM")
        tadip = run("tadip", trace)
        skip = run("skipcache", trace)
        assert skip.memory_wpki > tadip.memory_wpki


class TestEndToEndDeterminism:
    def test_full_system_bit_identical(self):
        trace = bench("milc")
        a = run("dbi+awb+clb", trace)
        b = run("dbi+awb+clb", trace)
        assert a.stats == b.stats
        assert a.events_processed == b.events_processed
