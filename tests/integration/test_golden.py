"""Golden end-to-end fixtures: full SimulationResults pinned to JSON.

Each case replays a canned trace (checked into ``golden/traces/``) through a
fixed small machine and compares the *entire* ``SimulationResult.to_dict()``
— every stat counter, IPC and event count — against a committed expectation.
Any unintended behavioral change anywhere in the stack shows up as a diff
here; an intended one is re-pinned with::

    pytest tests/integration/test_golden.py --update-golden

The simulator is deterministic by construction, so these are exact-equality
comparisons, not tolerances.
"""

import dataclasses
import json
import pathlib
from fractions import Fraction

import pytest

from repro.cache.config import CacheConfig
from repro.dram.config import DramConfig
from repro.dramcache.config import DramCacheConfig, stacked_dram_config
from repro.sim.system import SystemConfig, run_system
from repro.sim.trace import Trace

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

GOLDEN_L1 = CacheConfig(
    name="l1", num_blocks=16, associativity=2, tag_latency=2, data_latency=2,
    mshr_entries=32,
)
GOLDEN_L2 = CacheConfig(
    name="l2", num_blocks=64, associativity=4, tag_latency=6, data_latency=8,
)
GOLDEN_LLC = CacheConfig(
    name="llc", num_blocks=256, associativity=4, tag_latency=8, data_latency=16,
    serial_lookup=True, port_occupancy=2,
)
GOLDEN_DRAM = DramConfig(
    num_banks=4, row_buffer_blocks=16, write_buffer_entries=16
)

#: (case id, mechanism, trace names). One trace per core.
CASES = [
    ("baseline-mixed", "baseline", ["mixed"]),
    ("tadip-stream", "tadip", ["stream"]),
    ("dawb-mixed", "dawb", ["mixed"]),
    ("skipcache-stream", "skipcache", ["stream"]),
    ("dbi-awb-mixed", "dbi+awb", ["mixed"]),
    ("dbi-awb-clb-dual", "dbi+awb+clb", ["mixed", "stream"]),
]


#: (case id, mechanism, level dirty backend, trace names) — the stacked
#: DRAM-cache level between the LLC and off-chip DRAM, both backends.
DRAMCACHE_CASES = [
    ("dramcache-tag-mixed", "baseline", "tag", ["mixed"]),
    ("dramcache-dbi-dual", "dbi+awb", "dbi", ["mixed", "stream"]),
]


def golden_config(mechanism, num_cores):
    return SystemConfig(
        num_cores=num_cores,
        mechanism=mechanism,
        l1=GOLDEN_L1,
        l2=GOLDEN_L2,
        llc=GOLDEN_LLC,
        dram=GOLDEN_DRAM,
        dbi_granularity=16,
        predictor_epoch_cycles=5_000,
    )


def golden_dramcache_config(mechanism, backend, num_cores):
    return dataclasses.replace(
        golden_config(mechanism, num_cores),
        dram_cache=DramCacheConfig(
            num_blocks=64,
            associativity=4,
            dirty_backend=backend,
            dbi_alpha=Fraction(1, 2),
            dbi_granularity=16,
            dbi_associativity=2,
            stacked=stacked_dram_config(
                row_buffer_blocks=16, write_buffer_entries=16
            ),
        ),
    )


def load_trace(name):
    payload = json.loads((GOLDEN_DIR / "traces" / f"{name}.json").read_text())
    return Trace(name, [tuple(record) for record in payload["records"]])


def run_case(mechanism, trace_names):
    traces = [load_trace(name) for name in trace_names]
    return run_system(golden_config(mechanism, len(traces)), traces)


def assert_matches_golden(case_id, actual, request):
    expected_path = GOLDEN_DIR / "expected" / f"{case_id}.json"
    if request.config.getoption("--update-golden"):
        expected_path.parent.mkdir(parents=True, exist_ok=True)
        expected_path.write_text(
            json.dumps(actual, indent=2, sort_keys=True) + "\n"
        )
    expected = json.loads(expected_path.read_text())
    if actual != expected:
        drifted = sorted(
            key
            for key in set(expected["stats"]) | set(actual["stats"])
            if expected["stats"].get(key) != actual["stats"].get(key)
        )
        top_level = sorted(
            key
            for key in set(expected) | set(actual)
            if key != "stats" and expected.get(key) != actual.get(key)
        )
        pytest.fail(
            f"{case_id}: result drifted from the golden fixture.\n"
            f"  top-level fields changed: {top_level}\n"
            f"  stats changed ({len(drifted)}): {drifted[:12]}\n"
            f"If the change is intended, re-pin with --update-golden."
        )


@pytest.mark.parametrize(
    "case_id,mechanism,trace_names", CASES, ids=[case[0] for case in CASES]
)
def test_golden_result(case_id, mechanism, trace_names, request):
    actual = run_case(mechanism, trace_names).to_dict()
    assert_matches_golden(case_id, actual, request)


@pytest.mark.parametrize(
    "case_id,mechanism,backend,trace_names",
    DRAMCACHE_CASES,
    ids=[case[0] for case in DRAMCACHE_CASES],
)
def test_golden_dramcache_result(
    case_id, mechanism, backend, trace_names, request
):
    traces = [load_trace(name) for name in trace_names]
    actual = run_system(
        golden_dramcache_config(mechanism, backend, len(traces)), traces
    ).to_dict()
    # The level's stat groups must be part of the pinned surface.
    assert any(key.startswith("dramcache.") for key in actual["stats"])
    assert any(key.startswith("stacked.") for key in actual["stats"])
    assert_matches_golden(case_id, actual, request)


def all_case_ids():
    return [case[0] for case in CASES] + [case[0] for case in DRAMCACHE_CASES]


def test_golden_fixture_files_are_normalized():
    """Fixtures stay in the canonical (sorted, indented) JSON form."""
    for case_id in all_case_ids():
        path = GOLDEN_DIR / "expected" / f"{case_id}.json"
        text = path.read_text()
        payload = json.loads(text)
        assert text == json.dumps(payload, indent=2, sort_keys=True) + "\n", (
            f"{path.name} is not normalized; regenerate with --update-golden"
        )


def test_checked_run_matches_golden():
    """`--check full` reproduces a pinned result bit-for-bit (acceptance)."""
    case_id, mechanism, trace_names = CASES[4]  # dbi-awb-mixed
    traces = [load_trace(name) for name in trace_names]
    checked = run_system(
        golden_config(mechanism, len(traces)), traces, check="full"
    ).to_dict()
    expected = json.loads(
        (GOLDEN_DIR / "expected" / f"{case_id}.json").read_text()
    )
    assert checked == expected


def test_checked_dramcache_run_matches_golden():
    """The level's dirty-domain checks are observational too."""
    case_id, mechanism, backend, trace_names = DRAMCACHE_CASES[1]
    traces = [load_trace(name) for name in trace_names]
    checked = run_system(
        golden_dramcache_config(mechanism, backend, len(traces)),
        traces,
        check="full",
    ).to_dict()
    expected = json.loads(
        (GOLDEN_DIR / "expected" / f"{case_id}.json").read_text()
    )
    assert checked == expected
