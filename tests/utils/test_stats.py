"""Unit tests for the statistics primitives."""

from repro.utils.stats import Counter, Distribution, RateStat, StatGroup


class TestCounter:
    def test_increment(self):
        counter = Counter("hits")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_reset(self):
        counter = Counter("hits")
        counter.increment(3)
        counter.reset()
        assert counter.value == 0


class TestRateStat:
    def test_rate(self):
        rate = RateStat("row_hits")
        for hit in (True, True, False, True):
            rate.record(hit)
        assert rate.hits == 3
        assert rate.total == 4
        assert rate.rate == 0.75

    def test_empty_rate_is_zero(self):
        assert RateStat("x").rate == 0.0

    def test_reset(self):
        rate = RateStat("x")
        rate.record(True)
        rate.reset()
        assert rate.total == 0


class TestDistribution:
    def test_streaming_stats(self):
        dist = Distribution("latency")
        for sample in (10, 20, 30):
            dist.record(sample)
        assert dist.count == 3
        assert dist.mean == 20
        assert dist.minimum == 10
        assert dist.maximum == 30

    def test_empty_mean_is_zero(self):
        assert Distribution("x").mean == 0.0

    def test_reset(self):
        dist = Distribution("x")
        dist.record(5)
        dist.reset()
        assert dist.count == 0
        assert dist.minimum is None


class TestStatGroup:
    def test_counter_reuse(self):
        group = StatGroup("llc")
        group.counter("lookups").increment()
        group.counter("lookups").increment()
        assert group.counter("lookups").value == 2

    def test_as_dict_flattening(self):
        group = StatGroup("llc")
        group.counter("lookups").increment(7)
        group.rate("hit_rate").record(True)
        group.rate("hit_rate").record(False)
        group.distribution("latency").record(12)
        flat = group.as_dict()
        assert flat["llc.lookups"] == 7
        assert flat["llc.hit_rate"] == 0.5
        assert flat["llc.hit_rate.hits"] == 1
        assert flat["llc.hit_rate.total"] == 2
        assert flat["llc.latency.mean"] == 12
        assert flat["llc.latency.count"] == 1

    def test_group_reset(self):
        group = StatGroup("g")
        group.counter("c").increment()
        group.rate("r").record(True)
        group.distribution("d").record(1)
        group.reset()
        flat = group.as_dict()
        assert flat["g.c"] == 0
        assert flat["g.r.total"] == 0
        assert flat["g.d.count"] == 0
