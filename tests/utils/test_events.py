"""Unit tests for the event queue kernel."""

import pytest

from repro.utils.events import EventQueue


class TestScheduling:
    def test_fires_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(10, lambda: order.append("b"))
        queue.schedule(5, lambda: order.append("a"))
        queue.schedule(20, lambda: order.append("c"))
        queue.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fires_fifo(self):
        queue = EventQueue()
        order = []
        for label in ("first", "second", "third"):
            queue.schedule(7, lambda lab=label: order.append(lab))
        queue.run()
        assert order == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        queue = EventQueue()
        seen = []
        queue.schedule(42, lambda: seen.append(queue.now))
        queue.run()
        assert seen == [42]
        assert queue.now == 42

    def test_schedule_in_past_rejected(self):
        queue = EventQueue()
        queue.schedule(10, lambda: None)
        queue.run()
        with pytest.raises(ValueError):
            queue.schedule(5, lambda: None)

    def test_schedule_after(self):
        queue = EventQueue()
        times = []
        queue.schedule(10, lambda: queue.schedule_after(5, lambda: times.append(queue.now)))
        queue.run()
        assert times == [15]

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule_after(-1, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule(5, lambda: fired.append(1))
        event.cancel()
        queue.run()
        assert fired == []

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        keep = queue.schedule(5, lambda: None)
        drop = queue.schedule(6, lambda: None)
        drop.cancel()
        assert len(queue) == 1
        assert keep.time == 5


class TestRunBounds:
    def test_run_until_stops_before_later_events(self):
        queue = EventQueue()
        fired = []
        queue.schedule(5, lambda: fired.append(5))
        queue.schedule(50, lambda: fired.append(50))
        queue.run(until=10)
        assert fired == [5]
        assert queue.now == 10
        queue.run()
        assert fired == [5, 50]

    def test_max_events_budget(self):
        queue = EventQueue()
        fired = []
        for t in range(10):
            queue.schedule(t, lambda t=t: fired.append(t))
        queue.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_events_generated_during_run_are_processed(self):
        queue = EventQueue()
        fired = []

        def cascade(depth):
            fired.append(depth)
            if depth < 3:
                queue.schedule_after(1, lambda: cascade(depth + 1))

        queue.schedule(0, lambda: cascade(0))
        queue.run()
        assert fired == [0, 1, 2, 3]

    def test_events_processed_counter(self):
        queue = EventQueue()
        for t in range(4):
            queue.schedule(t, lambda: None)
        queue.run()
        assert queue.events_processed == 4
