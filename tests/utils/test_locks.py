"""Tests for pid+heartbeat file locks, including SIGKILLed owners.

The load-bearing property: a lock whose owner died — even via ``kill -9``,
which runs no cleanup — must be reclaimable by the next waiter instead of
deadlocking it forever (the stale-lock failure mode of plain O_EXCL lock
files).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.utils.locks import (
    FileLock,
    LockHeldError,
    LockOwner,
    pid_alive,
)


class TestPidAlive:
    def test_own_pid_is_alive(self):
        assert pid_alive(os.getpid())

    def test_nonexistent_pid_is_dead(self):
        # Spawn-and-reap gives a pid that provably no longer exists.
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        assert not pid_alive(proc.pid)

    def test_nonpositive_pids_are_dead(self):
        assert not pid_alive(0)
        assert not pid_alive(-1)


class TestFileLock:
    def test_acquire_release_roundtrip(self, tmp_path):
        lock = FileLock(str(tmp_path / "x.lock"))
        with lock:
            assert lock.held
            assert os.path.exists(lock.path)
        assert not lock.held
        assert not os.path.exists(lock.path)

    def test_body_records_owner(self, tmp_path):
        with FileLock(str(tmp_path / "x.lock")) as lock:
            owner = lock.read_owner()
            assert owner == LockOwner(
                pid=os.getpid(), host=owner.host, created=owner.created
            )

    def test_live_owner_blocks_and_times_out(self, tmp_path):
        path = str(tmp_path / "x.lock")
        with FileLock(path):
            waiter = FileLock(path, poll_seconds=0.01)
            with pytest.raises(LockHeldError) as excinfo:
                waiter.acquire(timeout=0.1)
            assert excinfo.value.owner.pid == os.getpid()

    def test_release_is_idempotent(self, tmp_path):
        lock = FileLock(str(tmp_path / "x.lock"))
        lock.acquire()
        lock.release()
        lock.release()

    def test_beat_refreshes_mtime(self, tmp_path):
        with FileLock(str(tmp_path / "x.lock")) as lock:
            past = time.time() - 1_000
            os.utime(lock.path, (past, past))
            lock.beat()
            assert os.stat(lock.path).st_mtime > past + 500

    def test_waiter_sees_lock_released(self, tmp_path):
        path = str(tmp_path / "x.lock")
        first = FileLock(path)
        first.acquire()
        first.release()
        with FileLock(path, poll_seconds=0.01) as second:
            assert second.held

    # ------------------------------------------------------------- reclaim

    def test_dead_pid_is_reclaimed_immediately(self, tmp_path):
        """A lock whose recorded owner no longer exists must not block."""
        path = str(tmp_path / "x.lock")
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        with open(path, "w") as handle:
            json.dump(
                {"format": 1, "pid": proc.pid,
                 "host": __import__("socket").gethostname(),
                 "created": time.time()},
                handle,
            )
        lock = FileLock(path, poll_seconds=0.01)
        with lock.acquire(timeout=5.0):
            assert lock.reclaimed == 1

    def test_sigkilled_owner_mid_build_is_reclaimed(self, tmp_path):
        """kill -9 the owner while it holds the lock; a waiter must recover.

        This is the stale-lock deadlock scenario from long campaigns: the
        orchestrator (or a warm-image builder) is SIGKILLed mid-build and
        its lock file survives. The next process must reclaim by pid death,
        not wait out any TTL.
        """
        path = str(tmp_path / "build.lock")
        script = (
            "import sys, time; sys.path.insert(0, sys.argv[1])\n"
            "from repro.utils.locks import FileLock\n"
            "FileLock(sys.argv[2]).acquire()\n"
            "print('HELD', flush=True)\n"
            "time.sleep(120)\n"
        )
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        proc = subprocess.Popen(
            [sys.executable, "-c", script, os.path.abspath(src), path],
            stdout=subprocess.PIPE,
        )
        try:
            assert proc.stdout.readline().strip() == b"HELD"
            proc.kill()  # SIGKILL: no cleanup handlers run
            proc.wait()
            assert os.path.exists(path), "owner died without releasing"
            lock = FileLock(path, poll_seconds=0.01)
            start = time.monotonic()
            with lock.acquire(timeout=10.0):
                assert lock.reclaimed == 1
            # Reclaim must ride on pid death (fast), not the staleness TTL.
            assert time.monotonic() - start < 5.0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_torn_lock_body_is_reclaimed_after_grace(self, tmp_path):
        """An owner that died inside the body write leaves a torn lock."""
        path = str(tmp_path / "x.lock")
        with open(path, "w") as handle:
            handle.write('{"format": 1, "pid":')  # torn mid-record
        past = time.time() - 60
        os.utime(path, (past, past))
        lock = FileLock(path, poll_seconds=0.01)
        with lock.acquire(timeout=5.0):
            assert lock.reclaimed == 1

    def test_fresh_torn_body_gets_grace_period(self, tmp_path):
        """A just-created lock with an incomplete body is not stolen."""
        path = str(tmp_path / "x.lock")
        with open(path, "w") as handle:
            handle.write("{")
        waiter = FileLock(path, poll_seconds=0.01)
        with pytest.raises(LockHeldError):
            waiter.acquire(timeout=0.2)

    def test_stale_heartbeat_on_foreign_host_is_reclaimed(self, tmp_path):
        """pid probing proves nothing cross-host; the TTL must kick in."""
        path = str(tmp_path / "x.lock")
        with open(path, "w") as handle:
            json.dump(
                {"format": 1, "pid": os.getpid(), "host": "elsewhere",
                 "created": time.time()},
                handle,
            )
        past = time.time() - 3_600
        os.utime(path, (past, past))
        lock = FileLock(path, stale_seconds=60.0, poll_seconds=0.01)
        with lock.acquire(timeout=5.0):
            assert lock.reclaimed == 1

    def test_fresh_heartbeat_on_foreign_host_blocks(self, tmp_path):
        path = str(tmp_path / "x.lock")
        with open(path, "w") as handle:
            json.dump(
                {"format": 1, "pid": 1, "host": "elsewhere",
                 "created": time.time()},
                handle,
            )
        lock = FileLock(path, stale_seconds=600.0, poll_seconds=0.01)
        with pytest.raises(LockHeldError):
            lock.acquire(timeout=0.2)
