"""Tests for the shared atomic-write helper."""

import json
import os

import pytest

from repro.utils.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    publish_file,
)


class TestAtomicWrite:
    def test_writes_bytes(self, tmp_path):
        path = tmp_path / "artifact.bin"
        atomic_write_bytes(str(path), b"\x00\x01payload")
        assert path.read_bytes() == b"\x00\x01payload"

    def test_replaces_existing(self, tmp_path):
        path = tmp_path / "artifact.txt"
        atomic_write_text(str(path), "old")
        atomic_write_text(str(path), "new")
        assert path.read_text() == "new"

    def test_creates_missing_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "artifact.json"
        atomic_write_json(str(path), {"a": 1})
        assert json.loads(path.read_text()) == {"a": 1}

    def test_leaves_no_staging_litter(self, tmp_path):
        path = tmp_path / "artifact.txt"
        atomic_write_text(str(path), "hello", durable=False)
        assert os.listdir(tmp_path) == ["artifact.txt"]

    def test_failed_write_preserves_target_and_cleans_tmp(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_json(str(path), {"ok": True})

        class Unserializable:
            pass

        with pytest.raises(TypeError):
            atomic_write_json(str(path), {"bad": Unserializable()})
        assert json.loads(path.read_text()) == {"ok": True}
        assert os.listdir(tmp_path) == ["artifact.json"]

    def test_sorted_json_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        atomic_write_json(str(a), {"z": 1, "a": 2}, sort_keys=True)
        atomic_write_json(str(b), {"a": 2, "z": 1}, sort_keys=True)
        assert a.read_bytes() == b.read_bytes()


class TestPublishFile:
    def test_promotes_staging_to_final(self, tmp_path):
        staging = tmp_path / "stream.jsonl.partial"
        final = tmp_path / "stream.jsonl"
        staging.write_text("line1\nline2\n")
        publish_file(str(staging), str(final))
        assert final.read_text() == "line1\nline2\n"
        assert not staging.exists()

    def test_missing_staging_raises(self, tmp_path):
        with pytest.raises(OSError):
            publish_file(str(tmp_path / "absent"), str(tmp_path / "final"))
