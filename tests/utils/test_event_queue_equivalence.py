"""Equivalence of the calendar EventQueue with a reference heap-of-events.

The calendar queue (per-timestamp buckets + a heap of distinct timestamps)
replaced a straightforward ``heapq`` of ``(time, seq)``-ordered events. These
tests pin the contract the rest of the simulator relies on: identical firing
order — including same-cycle FIFO, re-entrant scheduling and cancellation —
on randomized schedules, and identical ``until``/``max_events`` semantics.
"""

import heapq
import random

import pytest

from repro.utils.events import EventQueue


class ReferenceQueue:
    """The old implementation's semantics: one heap ordered by (time, seq)."""

    def __init__(self):
        self._heap = []
        self._seq = 0
        self.now = 0

    def schedule(self, time, callback):
        if time < self.now:
            raise ValueError("past")
        entry = [time, self._seq, callback, False]  # [time, seq, cb, cancelled]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return entry

    def run(self, until=None, max_events=None):
        fired = 0
        while self._heap:
            entry = self._heap[0]
            if entry[3]:
                heapq.heappop(self._heap)
                continue
            if until is not None and entry[0] > until:
                self.now = until
                return
            if max_events is not None and fired >= max_events:
                return
            heapq.heappop(self._heap)
            self.now = entry[0]
            entry[2]()
            fired += 1


def random_workload(queue, rng, log, depth=3):
    """Schedule a randomized mix of plain, re-entrant and cancelled events."""
    handles = []
    for i in range(200):
        time = rng.randrange(0, 50)

        def make_cb(tag, time=None):
            def cb():
                log.append((queue.now, tag))

            return cb

        def make_reentrant(tag, offset):
            def cb():
                log.append((queue.now, tag))
                # Same-cycle and future re-entrant scheduling.
                queue.schedule(queue.now + offset, make_cb((tag, "child")))

            return cb

        kind = rng.random()
        if kind < 0.2:
            handles.append(queue.schedule(time, make_cb(i)))
        elif kind < 0.4:
            queue.schedule(time, make_reentrant(i, rng.choice((0, 0, 1, 7))))
        else:
            queue.schedule(time, make_cb(i))
    # Cancel a deterministic subset of the plain events.
    for index, handle in enumerate(handles):
        if index % 3 == 0:
            if isinstance(handle, list):
                handle[3] = True
            else:
                handle.cancel()


@pytest.mark.parametrize("seed", range(10))
def test_randomized_schedules_fire_in_identical_order(seed):
    actual_log, expected_log = [], []
    actual = EventQueue()
    expected = ReferenceQueue()
    random_workload(actual, random.Random(seed), actual_log)
    random_workload(expected, random.Random(seed), expected_log)
    actual.run()
    expected.run()
    assert actual_log == expected_log
    assert actual.now == expected.now


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("until", (0, 13, 49, 200))
def test_until_matches_reference(seed, until):
    actual_log, expected_log = [], []
    actual = EventQueue()
    expected = ReferenceQueue()
    random_workload(actual, random.Random(seed), actual_log)
    random_workload(expected, random.Random(seed), expected_log)
    actual.run(until=until)
    expected.run(until=until)
    assert actual_log == expected_log
    assert actual.now == expected.now


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("max_events", (0, 1, 17, 10_000))
def test_max_events_matches_reference(seed, max_events):
    actual_log, expected_log = [], []
    actual = EventQueue()
    expected = ReferenceQueue()
    random_workload(actual, random.Random(seed), actual_log)
    random_workload(expected, random.Random(seed), expected_log)
    actual.run(max_events=max_events)
    expected.run(max_events=max_events)
    assert actual_log == expected_log


def test_same_cycle_events_fire_fifo_across_bucket_recreation():
    """A callback scheduling at the *current* cycle after its bucket drained
    must still fire this cycle, after everything already scheduled there."""
    queue = EventQueue()
    log = []
    queue.schedule(5, lambda: log.append("a"))
    queue.schedule(
        5, lambda: (log.append("b"), queue.schedule(5, lambda: log.append("d")))
    )
    queue.schedule(5, lambda: log.append("c"))
    queue.run()
    assert log == ["a", "b", "c", "d"]
    assert queue.now == 5


def test_cancelled_tail_does_not_stall_the_queue():
    queue = EventQueue()
    log = []
    keep = queue.schedule(3, lambda: log.append("keep"))
    for _ in range(5):
        queue.schedule(3, lambda: log.append("cancelled")).cancel()
    queue.schedule(9, lambda: log.append("later"))
    queue.run()
    assert log == ["keep", "later"]
    assert not keep.cancelled


def test_interleaved_run_calls_resume_mid_bucket():
    queue = EventQueue()
    log = []
    for i in range(4):
        queue.schedule(2, lambda i=i: log.append(i))
    queue.run(max_events=2)
    assert log == [0, 1]
    queue.run()
    assert log == [0, 1, 2, 3]
    assert queue.events_processed == 4


def test_audit_events_fire_but_are_not_accounted():
    queue = EventQueue()
    log = []
    queue.schedule(1, lambda: log.append("real"))
    queue.schedule(1, lambda: log.append("audit"), audit=True)
    queue.schedule(2, lambda: log.append("real2"))
    queue.run(max_events=2)
    assert log == ["real", "audit", "real2"]
    assert queue.events_processed == 2


def test_len_counts_only_live_pending_events():
    queue = EventQueue()
    queue.schedule(1, lambda: None)
    queue.schedule(1, lambda: None).cancel()
    queue.schedule(4, lambda: None)
    assert len(queue) == 2
    queue.run(max_events=1)
    assert len(queue) == 1
