"""Equivalence of the calendar EventQueue with a reference heap-of-events.

The calendar queue (per-timestamp buckets + a heap of distinct timestamps)
replaced a straightforward ``heapq`` of ``(time, seq)``-ordered events. These
tests pin the contract the rest of the simulator relies on: identical firing
order — including same-cycle FIFO, re-entrant scheduling and cancellation —
on randomized schedules, and identical ``until``/``max_events`` semantics.
"""

import heapq
import random

import pytest

from repro.utils.events import EventQueue


class ReferenceQueue:
    """The old implementation's semantics: one heap ordered by (time, seq).

    The check order inside ``run`` — budget, then cancelled-pop, then
    ``until`` — mirrors the replaced heap implementation exactly, including
    audit events: they fire without consuming the ``max_events`` budget, but
    a spent budget stops them too.
    """

    def __init__(self):
        self._heap = []
        self._seq = 0
        self.now = 0

    def schedule(self, time, callback, audit=False):
        if time < self.now:
            raise ValueError("past")
        # [time, seq, cb, cancelled, audit]
        entry = [time, self._seq, callback, False, audit]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return entry

    def run(self, until=None, max_events=None):
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                return
            entry = self._heap[0]
            if entry[3]:
                heapq.heappop(self._heap)
                continue
            if until is not None and entry[0] > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            self.now = entry[0]
            entry[2]()
            if not entry[4]:
                fired += 1


def random_workload(queue, rng, log, depth=3):
    """Schedule a randomized mix of plain, re-entrant and cancelled events."""
    handles = []
    for i in range(200):
        time = rng.randrange(0, 50)

        def make_cb(tag, time=None):
            def cb():
                log.append((queue.now, tag))

            return cb

        def make_reentrant(tag, offset):
            def cb():
                log.append((queue.now, tag))
                # Same-cycle and future re-entrant scheduling.
                queue.schedule(queue.now + offset, make_cb((tag, "child")))

            return cb

        kind = rng.random()
        if kind < 0.2:
            handles.append(queue.schedule(time, make_cb(i)))
        elif kind < 0.4:
            queue.schedule(time, make_reentrant(i, rng.choice((0, 0, 1, 7))))
        elif kind < 0.55:
            queue.schedule(time, make_cb(("audit", i)), audit=True)
        else:
            queue.schedule(time, make_cb(i))
    # Cancel a deterministic subset of the plain events.
    for index, handle in enumerate(handles):
        if index % 3 == 0:
            if isinstance(handle, list):
                handle[3] = True
            else:
                handle.cancel()


@pytest.mark.parametrize("seed", range(10))
def test_randomized_schedules_fire_in_identical_order(seed):
    actual_log, expected_log = [], []
    actual = EventQueue()
    expected = ReferenceQueue()
    random_workload(actual, random.Random(seed), actual_log)
    random_workload(expected, random.Random(seed), expected_log)
    actual.run()
    expected.run()
    assert actual_log == expected_log
    assert actual.now == expected.now


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("until", (0, 13, 49, 200))
def test_until_matches_reference(seed, until):
    actual_log, expected_log = [], []
    actual = EventQueue()
    expected = ReferenceQueue()
    random_workload(actual, random.Random(seed), actual_log)
    random_workload(expected, random.Random(seed), expected_log)
    actual.run(until=until)
    expected.run(until=until)
    assert actual_log == expected_log
    assert actual.now == expected.now


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("max_events", (0, 1, 17, 10_000))
def test_max_events_matches_reference(seed, max_events):
    actual_log, expected_log = [], []
    actual = EventQueue()
    expected = ReferenceQueue()
    random_workload(actual, random.Random(seed), actual_log)
    random_workload(expected, random.Random(seed), expected_log)
    actual.run(max_events=max_events)
    expected.run(max_events=max_events)
    assert actual_log == expected_log


def test_same_cycle_events_fire_fifo_across_bucket_recreation():
    """A callback scheduling at the *current* cycle after its bucket drained
    must still fire this cycle, after everything already scheduled there."""
    queue = EventQueue()
    log = []
    queue.schedule(5, lambda: log.append("a"))
    queue.schedule(
        5, lambda: (log.append("b"), queue.schedule(5, lambda: log.append("d")))
    )
    queue.schedule(5, lambda: log.append("c"))
    queue.run()
    assert log == ["a", "b", "c", "d"]
    assert queue.now == 5


def test_cancelled_tail_does_not_stall_the_queue():
    queue = EventQueue()
    log = []
    keep = queue.schedule(3, lambda: log.append("keep"))
    for _ in range(5):
        queue.schedule(3, lambda: log.append("cancelled")).cancel()
    queue.schedule(9, lambda: log.append("later"))
    queue.run()
    assert log == ["keep", "later"]
    assert not keep.cancelled


def test_interleaved_run_calls_resume_mid_bucket():
    queue = EventQueue()
    log = []
    for i in range(4):
        queue.schedule(2, lambda i=i: log.append(i))
    queue.run(max_events=2)
    assert log == [0, 1]
    queue.run()
    assert log == [0, 1, 2, 3]
    assert queue.events_processed == 4


def test_audit_events_fire_but_are_not_accounted():
    queue = EventQueue()
    log = []
    queue.schedule(1, lambda: log.append("real"))
    queue.schedule(1, lambda: log.append("audit"), audit=True)
    queue.schedule(2, lambda: log.append("real2"))
    queue.run(max_events=2)
    assert log == ["real", "audit", "real2"]
    assert queue.events_processed == 2


def test_schedule_earlier_than_head_after_until_stop_fires():
    """Regression: run(until=...) that skipped a cancelled head-bucket prefix
    must not apply that cursor to a *different* bucket scheduled afterwards
    at an earlier timestamp — the new event would be silently dropped."""
    queue = EventQueue()
    log = []
    first = queue.schedule(100, lambda: log.append("a"))
    queue.schedule(100, lambda: log.append("b"))
    first.cancel()
    queue.run(until=50)
    assert len(queue) == 1
    queue.schedule(60, lambda: log.append("c"))
    assert len(queue) == 2
    queue.run()
    assert log == ["c", "b"]
    assert queue.events_processed == 2


def test_step_after_until_stop_with_earlier_scheduling():
    """Same stale-cursor scenario, resumed through step() instead of run()."""
    queue = EventQueue()
    log = []
    first = queue.schedule(100, lambda: log.append("a"))
    queue.schedule(100, lambda: log.append("b"))
    first.cancel()
    queue.run(until=50)
    queue.schedule(60, lambda: log.append("c"))
    while queue.step():
        pass
    assert log == ["c", "b"]


@pytest.mark.parametrize("seed", range(5))
def test_interleaved_until_and_scheduling_matches_reference(seed):
    """Alternate run(until=...) stops with fresh scheduling — including times
    *earlier* than the stopped-at head bucket — and compare firing order."""
    actual_log, expected_log = [], []
    actual = EventQueue()
    expected = ReferenceQueue()

    def round_trip(queue, rng, log):
        handles = []
        for i in range(40):
            handles.append(
                queue.schedule(rng.randrange(0, 120), lambda i=i: log.append(i))
            )
        for index, handle in enumerate(handles):
            if index % 4 == 0:
                if isinstance(handle, list):
                    handle[3] = True
                else:
                    handle.cancel()
        for stop in (10, 35, 60):
            queue.run(until=stop)
            # Earlier-than-head scheduling: anywhere from `now` upward.
            for j in range(6):
                queue.schedule(
                    queue.now + rng.randrange(0, 30),
                    lambda j=j, stop=stop: log.append(("late", stop, j)),
                )
        queue.run()

    round_trip(actual, random.Random(seed), actual_log)
    round_trip(expected, random.Random(seed), expected_log)
    assert actual_log == expected_log
    assert actual.now == expected.now


def test_audit_event_not_fired_once_budget_is_spent():
    """Regression: a run truncated by max_events must stop *before* a pending
    audit event, exactly like the replaced heap implementation — a checked
    run must not execute an extra invariant sweep at the truncation point."""
    queue = EventQueue()
    log = []
    queue.schedule(1, lambda: log.append("e1"))
    queue.schedule(1, lambda: log.append("audit"), audit=True)
    queue.run(max_events=1)
    assert log == ["e1"]
    queue.run()
    assert log == ["e1", "audit"]


def test_len_counts_only_live_pending_events():
    queue = EventQueue()
    queue.schedule(1, lambda: None)
    queue.schedule(1, lambda: None).cancel()
    queue.schedule(4, lambda: None)
    assert len(queue) == 2
    queue.run(max_events=1)
    assert len(queue) == 1
