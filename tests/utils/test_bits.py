"""Unit tests for repro.utils.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import (
    bit_length_of,
    ceil_div,
    ilog2,
    is_power_of_two,
    iter_set_bits,
    mask,
    popcount,
)


class TestIsPowerOfTwo:
    def test_powers_are_recognized(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_non_powers_rejected(self):
        for value in (0, -1, -2, 3, 5, 6, 7, 9, 12, 100):
            assert not is_power_of_two(value)


class TestIlog2:
    def test_round_trip(self):
        for exponent in range(30):
            assert ilog2(1 << exponent) == exponent

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            ilog2(3)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ilog2(0)


class TestMask:
    def test_small_masks(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(8) == 0xFF

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestPopcount:
    def test_examples(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount(mask(64)) == 64

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount(-1)

    @given(st.integers(min_value=0, max_value=2**128))
    def test_matches_bin_count(self, value):
        assert popcount(value) == bin(value).count("1")


class TestIterSetBits:
    def test_empty(self):
        assert list(iter_set_bits(0)) == []

    def test_example(self):
        assert list(iter_set_bits(0b101001)) == [0, 3, 5]

    @given(st.integers(min_value=0, max_value=2**128))
    def test_reconstructs_value(self, value):
        reconstructed = 0
        for position in iter_set_bits(value):
            reconstructed |= 1 << position
        assert reconstructed == value

    @given(st.integers(min_value=0, max_value=2**128))
    def test_ascending_order(self, value):
        positions = list(iter_set_bits(value))
        assert positions == sorted(positions)


class TestCeilDiv:
    def test_examples(self):
        assert ceil_div(0, 4) == 0
        assert ceil_div(1, 4) == 1
        assert ceil_div(4, 4) == 1
        assert ceil_div(5, 4) == 2

    def test_rejects_bad_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)


class TestBitLengthOf:
    def test_examples(self):
        assert bit_length_of(1) == 1
        assert bit_length_of(2) == 1
        assert bit_length_of(3) == 2
        assert bit_length_of(256) == 8
        assert bit_length_of(257) == 9

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            bit_length_of(0)
