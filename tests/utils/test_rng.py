"""Unit tests for the deterministic RNG."""

import pytest

from repro.utils.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(seed=123)
        b = DeterministicRng(seed=123)
        assert [a.next_u64() for _ in range(100)] == [b.next_u64() for _ in range(100)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(seed=1)
        b = DeterministicRng(seed=2)
        assert [a.next_u64() for _ in range(10)] != [b.next_u64() for _ in range(10)]

    def test_derive_is_deterministic(self):
        parent = DeterministicRng(seed=7)
        x = parent.derive("workload:mcf").next_u64()
        y = DeterministicRng(seed=7).derive("workload:mcf").next_u64()
        assert x == y

    def test_derive_labels_independent(self):
        parent = DeterministicRng(seed=7)
        a = parent.derive("a")
        b = parent.derive("b")
        assert a.next_u64() != b.next_u64()

    def test_zero_seed_still_works(self):
        rng = DeterministicRng(seed=0)
        assert rng.next_u64() != 0


class TestDistributions:
    def test_random_in_unit_interval(self):
        rng = DeterministicRng(seed=42)
        for _ in range(1000):
            value = rng.random()
            assert 0.0 <= value < 1.0

    def test_randint_bounds(self):
        rng = DeterministicRng(seed=42)
        values = [rng.randint(3, 9) for _ in range(1000)]
        assert min(values) == 3
        assert max(values) == 9

    def test_randint_single_value(self):
        rng = DeterministicRng(seed=42)
        assert rng.randint(5, 5) == 5

    def test_randint_empty_range_rejected(self):
        rng = DeterministicRng(seed=42)
        with pytest.raises(ValueError):
            rng.randint(5, 4)

    def test_chance_extremes(self):
        rng = DeterministicRng(seed=42)
        assert not any(rng.chance(0.0) for _ in range(100))
        assert all(rng.chance(1.0) for _ in range(100))

    def test_chance_validates_probability(self):
        rng = DeterministicRng(seed=42)
        with pytest.raises(ValueError):
            rng.chance(1.5)

    def test_choice(self):
        rng = DeterministicRng(seed=42)
        items = ["a", "b", "c"]
        picks = {rng.choice(items) for _ in range(200)}
        assert picks == {"a", "b", "c"}

    def test_choice_empty_rejected(self):
        rng = DeterministicRng(seed=42)
        with pytest.raises(ValueError):
            rng.choice([])

    def test_shuffle_is_permutation(self):
        rng = DeterministicRng(seed=42)
        items = list(range(50))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # vanishingly unlikely to be identity

    def test_geometric_mean_approximation(self):
        rng = DeterministicRng(seed=42)
        samples = [rng.geometric(10.0) for _ in range(20000)]
        mean = sum(samples) / len(samples)
        assert 9.0 < mean < 11.0
        assert min(samples) >= 0

    def test_geometric_zero_mean(self):
        rng = DeterministicRng(seed=42)
        assert all(rng.geometric(0.0) == 0 for _ in range(10))

    def test_geometric_negative_rejected(self):
        rng = DeterministicRng(seed=42)
        with pytest.raises(ValueError):
            rng.geometric(-1.0)
