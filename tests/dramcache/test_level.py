"""Unit tests for the timed DRAM-cache level's datapath and dirty backends."""

import pytest

from repro.dramcache.backends import make_backend
from repro.dramcache.config import DIRTY_BACKENDS, DramCacheConfig

from tests.dramcache.conftest import (
    Completions,
    make_level,
    read,
    small_level_config,
    write,
)


def counter(level, name):
    return level.stats.counter(name).value


class TestReadPath:
    def test_miss_fetches_offchip_then_hit_stays_stacked(self):
        queue, level, offchip = make_level("tag")
        done = Completions()
        read(queue, level, 0x40, done)
        queue.run()
        assert counter(level, "reads") == 1
        assert counter(level, "read_misses") == 1
        assert counter(level, "offchip_reads") == 1
        assert level.tags.contains(0x40)
        assert len(done.done) == 1

        read(queue, level, 0x40, done)
        queue.run()
        assert counter(level, "read_hits") == 1
        assert counter(level, "offchip_reads") == 1  # unchanged
        assert len(done.done) == 2

    def test_concurrent_misses_merge_onto_one_fetch(self):
        queue, level, offchip = make_level("tag")
        done = Completions()
        read(queue, level, 0x80, done)
        read(queue, level, 0x80, done)
        read(queue, level, 0x80, done)
        queue.run()
        assert counter(level, "offchip_reads") == 1
        assert counter(level, "read_merges") == 2
        assert len(done.done) == 3
        assert level.is_idle()

    def test_fire_and_forget_read_completes_without_callback(self):
        queue, level, _ = make_level("tag")
        read(queue, level, 0x11, on_complete=None)
        queue.run()
        assert level.tags.contains(0x11)
        assert level.is_idle()


class TestWritePath:
    def test_write_allocates_and_marks_dirty(self):
        for backend in DIRTY_BACKENDS:
            queue, level, _ = make_level(backend)
            write(queue, level, 0x21)
            queue.run()
            assert counter(level, "write_fills") == 1
            assert level.tags.contains(0x21)
            assert level.peek_dirty(0x21)
            assert level.dirty_blocks() == {0x21}

    def test_write_hit_updates_in_place(self):
        queue, level, _ = make_level("tag")
        done = Completions()
        read(queue, level, 0x22, done)
        queue.run()
        assert not level.peek_dirty(0x22)
        write(queue, level, 0x22)
        queue.run()
        assert counter(level, "write_hits") == 1
        assert level.peek_dirty(0x22)

    def test_tag_backend_keeps_dirty_bits_in_tags(self):
        queue, level, _ = make_level("tag")
        write(queue, level, 0x5)
        queue.run()
        assert level.dbi is None
        assert level.tags.dirty_count == 1

    def test_dbi_backend_keeps_tag_array_clean(self):
        queue, level, _ = make_level("dbi")
        write(queue, level, 0x5)
        queue.run()
        assert level.tags.dirty_count == 0
        assert level.dbi.is_dirty(0x5)
        level.check_invariants()


class TestEvictions:
    def fill_one_set(self, queue, level, stride, count, start=0):
        """Write ``count`` blocks mapping to one tag set."""
        addrs = [start + i * stride for i in range(count)]
        for addr in addrs:
            write(queue, level, addr)
            queue.run()
        return addrs

    def test_tag_backend_evicts_dirty_victim_offchip(self):
        queue, level, _ = make_level("tag")
        num_sets = level.tags.config.num_sets
        self.fill_one_set(queue, level, num_sets, count=5)
        assert counter(level, "dirty_evictions") == 1
        assert counter(level, "offchip_writes") == 1
        assert level.is_idle()

    def test_dbi_backend_drains_dirty_rowmates_on_eviction(self):
        # Granularity 8 with a 16-set tag array: blocks 0 and 1 share a DBI
        # region but live in different tag sets, so evicting 0 must also
        # drain 1. The set is filled with clean reads so no DBI displacement
        # can clean block 0 before its eviction.
        queue, level, _ = make_level("dbi")
        num_sets = level.tags.config.num_sets
        write(queue, level, 0)
        queue.run()
        write(queue, level, 1)
        queue.run()
        for i in range(1, 5):
            read(queue, level, i * num_sets)
            queue.run()
        assert counter(level, "dirty_evictions") == 1
        assert counter(level, "awb_drains") == 1
        # Both the victim and its row-mate went off-chip; the row-mate
        # stays cached but clean.
        assert counter(level, "offchip_writes") == 2
        assert level.tags.contains(1)
        assert not level.peek_dirty(1)
        level.check_invariants()

    def test_dbi_displacement_forces_writebacks(self):
        # 64 blocks * alpha 1/2 / granularity 8 = 4 entries, assoc 2 =
        # 2 sets. Dirtying blocks in 3 regions of one DBI set displaces the
        # least-recently-written entry; its blocks stay cached, now clean.
        queue, level, _ = make_level("dbi")
        for region in (0, 2, 4):
            write(queue, level, region * 8)
            queue.run()
        assert counter(level, "dbi_forced_writebacks") == 1
        assert level.tags.contains(0)
        assert not level.peek_dirty(0)
        assert level.peek_dirty(2 * 8) and level.peek_dirty(4 * 8)
        level.check_invariants()


class TestConfig:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="dirty_backend"):
            small_level_config("sticky-notes")

    def test_stacked_timing_is_faster_than_offchip(self):
        config = small_level_config()
        from tests.dramcache.conftest import SMALL_DRAM

        assert config.stacked.t_rcd < SMALL_DRAM.t_rcd
        assert config.stacked.t_burst < SMALL_DRAM.t_burst

    def test_backend_factory_matches_config(self):
        for name in DIRTY_BACKENDS:
            queue, level, _ = make_level(name)
            assert level.backend.name == name
            assert (level.dbi is None) == (name == "tag")


class TestInterface:
    def test_level_speaks_the_memory_controller_interface(self):
        """The hierarchy/mechanisms must not care which one they talk to."""
        queue, level, offchip = make_level("tag")
        assert level.mapper is offchip.mapper
        assert level.can_accept_write()
        assert level.is_idle()
