"""Shared helpers for the DRAM-cache level suite."""

from fractions import Fraction

from repro.dram.config import DramConfig
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest
from repro.dramcache.config import DramCacheConfig
from repro.dramcache.level import DramCacheLevel
from repro.utils.events import EventQueue
from repro.utils.rng import DeterministicRng

SMALL_DRAM = DramConfig(
    num_banks=4, row_buffer_blocks=16, write_buffer_entries=16
)


def small_level_config(backend="tag", **overrides):
    params = dict(
        num_blocks=64,
        associativity=4,
        dirty_backend=backend,
        dbi_alpha=Fraction(1, 2),
        dbi_granularity=8,
        dbi_associativity=2,
    )
    params.update(overrides)
    return DramCacheConfig(**params)


def make_level(backend="tag", **overrides):
    """A standalone level over a small off-chip controller."""
    queue = EventQueue()
    offchip = MemoryController(queue, SMALL_DRAM)
    level = DramCacheLevel(
        queue,
        small_level_config(backend, **overrides),
        offchip,
        rng=DeterministicRng(0xD3A),
    )
    return queue, level, offchip


class Completions:
    """Collects (addr, complete_time) pairs from level reads."""

    def __init__(self):
        self.done = []

    def __call__(self, request):
        self.done.append((request.block_addr, request.complete_time))


def read(queue, level, addr, on_complete=None, core_id=0):
    level.enqueue_read(
        MemoryRequest(
            block_addr=addr,
            is_write=False,
            core_id=core_id,
            on_complete=on_complete,
        )
    )


def write(queue, level, addr, core_id=0):
    assert level.enqueue_write(
        MemoryRequest(block_addr=addr, is_write=True, core_id=core_id)
    )
