"""Differential proof: timed DRAM-cache systems match the untimed oracle.

Satellite of the level's test campaign — the serialized timing stack with a
DRAM-cache level attached must land on exactly the same level contents,
dirty sets, DBI entries and off-chip write traffic as
:class:`repro.check.oracle.RefDramCache`.
"""

import pytest

from repro.check.differential import (
    DiffGeometry,
    assert_check_diff,
    run_check_diff,
)
from repro.check.errors import InvariantViolation
from repro.mechanisms.registry import MECHANISM_NAMES
from repro.sim.trace import Trace
from repro.utils.rng import DeterministicRng


def traces(refs=600, cores=2, footprint=1024, write_fraction=0.45, seed=11):
    rng = DeterministicRng(seed)
    result = []
    for core in range(cores):
        records = [
            (3, rng.chance(write_fraction), rng.randint(0, footprint - 1))
            for _ in range(refs)
        ]
        result.append(Trace(f"t{core}", records))
    return result


class TestDramCacheDifferential:
    @pytest.mark.parametrize("backend", ["tag", "dbi"])
    def test_level_matches_oracle_for_every_mechanism(self, backend):
        report = assert_check_diff(traces(refs=300), dram_cache=backend)
        assert report.dram_cache == backend
        # Oracle v2: no demand-only restriction — the drain schedule lets
        # every mechanism family validate below the level.
        assert {r.mechanism for r in report.reports} == set(MECHANISM_NAMES)

    def test_write_heavy_stream_exercises_awb_drains(self):
        """High write fraction → evictions find dirty rows to drain."""
        report = assert_check_diff(
            traces(write_fraction=0.8, footprint=2048), dram_cache="dbi"
        )
        assert report.ok

    def test_tiny_level_thrashes_and_still_matches(self):
        geometry = DiffGeometry(
            dramcache_blocks=16,
            dramcache_associativity=2,
            dramcache_dbi_granularity=4,
        )
        for backend in ("tag", "dbi"):
            assert_check_diff(
                traces(refs=400), geometry=geometry, dram_cache=backend
            )

    @pytest.mark.parametrize("mechanism", ["dbi+awb", "dawb", "dbi+awb+clb"])
    def test_background_writeback_mechanisms_validate(self, mechanism):
        """The formerly rejected path: AWB/probe drains below the level."""
        report = run_check_diff(
            traces(refs=400, write_fraction=0.7),
            mechanisms=[mechanism],
            dram_cache="dbi",
        )
        assert report.ok, report.to_text()

    def test_tampered_level_state_is_caught(self, monkeypatch):
        """A ghost dirty block in the reference level must fail the diff."""
        import repro.check.differential as differential

        real_run_oracle = differential.run_oracle

        def tampered(mechanism_name, trace_list, geometry, **kwargs):
            oracle = real_run_oracle(
                mechanism_name, trace_list, geometry, **kwargs
            )
            oracle.mechanism.dram_cache.offchip_writes += 1
            return oracle

        monkeypatch.setattr(differential, "run_oracle", tampered)
        report = differential.run_check_diff(
            traces(refs=120), mechanisms=["baseline"], dram_cache="tag"
        )
        assert not report.ok
        assert any(
            "off-chip writes" in failure
            for failure in report.reports[0].failures
        )
        with pytest.raises(InvariantViolation, match="differential-oracle"):
            differential.assert_check_diff(
                traces(refs=120), mechanisms=["baseline"], dram_cache="tag"
            )
