"""Property-based campaign over the DRAM-cache level (slow; fuzz-marked).

Three families of properties, run with ``pytest -m "slow or fuzz"``:

* **backend agreement** — the tag-dirty and DBI backends are different
  bookkeeping over the same datapath: identical serialized request streams
  must leave identical tag-array contents, and a block the DBI still calls
  dirty must be dirty under the tag backend too (the DBI only ever cleans
  *earlier*, by writing the data off-chip).
* **zero data loss** — every clean→dirty transition is balanced by exactly
  one off-chip write by the time the level drains, whatever mix of demand
  evictions, AWB row drains and DBI displacements did the cleaning.
* **whole-system agreement** — random traces through a full checked system
  with the level attached never trip the invariant engine, and random
  serialized streams match the untimed oracle exactly.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check.differential import assert_check_diff
from repro.dram.request import MemoryRequest
from repro.sim.system import System
from repro.sim.trace import Trace

from tests.check.conftest import random_trace, small_config
from tests.dramcache.conftest import make_level, small_level_config

pytestmark = [pytest.mark.slow, pytest.mark.fuzz]

FUZZ_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: (is_write, block address) — footprint a few times the level's capacity
#: so evictions, AWB drains and DBI displacements all fire.
ops_strategy = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=255)),
    min_size=10,
    max_size=150,
)


def drive_serialized(level, queue, ops):
    for is_write, addr in ops:
        if is_write:
            level.enqueue_write(MemoryRequest(block_addr=addr, is_write=True))
        else:
            level.enqueue_read(MemoryRequest(block_addr=addr, is_write=False))
        queue.run()
    assert level.is_idle()


class Recorder:
    """Counts dirty transitions via the standard observer protocol."""

    def __init__(self):
        self.dirtied = 0

    def on_block_dirtied(self, addr):
        self.dirtied += 1

    def on_block_cleaned(self, addr):
        pass

    def on_dirty_evicted(self, addr):
        pass

    def on_dirty_invalidated(self, addr):
        pass


@settings(max_examples=30, **FUZZ_SETTINGS)
@given(ops=ops_strategy)
def test_backend_presence_and_dirtiness_agreement(ops):
    queue_tag, tag_level, _ = make_level("tag")
    queue_dbi, dbi_level, _ = make_level("dbi")
    drive_serialized(tag_level, queue_tag, ops)
    drive_serialized(dbi_level, queue_dbi, ops)

    tag_contents = {b.addr for b in tag_level.tags.iter_valid_blocks()}
    dbi_contents = {b.addr for b in dbi_level.tags.iter_valid_blocks()}
    assert tag_contents == dbi_contents
    # The DBI cleans early (displacement, AWB) but never invents dirtiness.
    assert dbi_level.dirty_blocks() <= tag_level.dirty_blocks()
    tag_level.check_invariants()
    dbi_level.check_invariants()


@settings(max_examples=30, **FUZZ_SETTINGS)
@given(
    ops=ops_strategy,
    backend=st.sampled_from(["tag", "dbi"]),
    granularity=st.sampled_from([4, 8]),
)
def test_no_dirty_data_is_ever_lost(ops, backend, granularity):
    """dirtied == written off-chip + still dirty, at every drain point."""
    queue, level, _ = make_level(backend, dbi_granularity=granularity)
    recorder = Recorder()
    level.tags.observer = recorder
    if level.dbi is not None:
        level.dbi.observer = recorder
    drive_serialized(level, queue, ops)
    offchip_writes = level.stats.counter("offchip_writes").value
    assert recorder.dirtied == offchip_writes + len(level.dirty_blocks())
    # Dirtiness only ever refers to blocks the level actually holds.
    contents = {b.addr for b in level.tags.iter_valid_blocks()}
    assert level.dirty_blocks() <= contents


@settings(max_examples=10, **FUZZ_SETTINGS)
@given(
    records=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=6),
            st.booleans(),
            st.integers(min_value=0, max_value=767),
        ),
        min_size=20,
        max_size=100,
    ),
    backend=st.sampled_from(["tag", "dbi"]),
)
def test_fuzz_level_differential(records, backend):
    """Random serialized stream: timing level and RefDramCache must agree."""
    trace = Trace("fuzz", records)
    assert_check_diff([trace], mechanisms=["baseline"], dram_cache=backend)


@settings(max_examples=8, **FUZZ_SETTINGS)
@given(
    seed=st.integers(min_value=1, max_value=2**16),
    write_fraction=st.floats(min_value=0.1, max_value=0.9),
    backend=st.sampled_from(["tag", "dbi"]),
    mechanism=st.sampled_from(["baseline", "dbi+awb"]),
)
def test_fuzz_full_check_system_with_level(
    seed, write_fraction, backend, mechanism
):
    """Full-timing runs with the level never trip the invariant engine."""
    trace = random_trace(
        refs=400, seed=seed, write_fraction=write_fraction, footprint=4096
    )
    config = small_config(
        mechanism, dram_cache=small_level_config(backend)
    )
    system = System(config, [trace], check="full")
    system.run()
    assert system.check_engine.sweeps >= 1
    assert system.dram_cache.is_idle()
