"""Regression: the Section-7 dispatch model vs the timed level's authority.

``repro.extensions.dram_cache`` models a die-stacked DRAM cache
functionally (presence + DBI, no cycle timing) to study self-balancing
dispatch. Since the timed level landed, the model's replacement and
dirty-writeback semantics are defined to *mirror* it — LRU with promotion
on touch, DBI as sole dirtiness authority, whole-row drains on dirty
eviction. This suite drives identical serialized streams through both and
checks they agree block for block, so the dispatcher's "must this read go
to the cache?" answer is exactly the timed level's.

The one documented divergence is associativity (the model is fully
associative), so the timed side here runs with a single tag set.
"""

from fractions import Fraction

from repro.core.dbi import DirtyBlockIndex
from repro.extensions.dram_cache import (
    DispatchDecision,
    DramCacheDispatcher,
    DramCacheModel,
)
from repro.utils.rng import DeterministicRng

from tests.dramcache.conftest import make_level, read, write

FOOTPRINT = 64


def make_pair(num_blocks=16, granularity=4, dbi_associativity=2):
    """A fully-associative timed level and a model with the same geometry."""
    queue, level, _ = make_level(
        "dbi",
        num_blocks=num_blocks,
        associativity=num_blocks,  # one set: matches the model
        dbi_granularity=granularity,
        dbi_alpha=Fraction(1, 2),
        dbi_associativity=dbi_associativity,
    )
    model = DramCacheModel(
        dbi=DirtyBlockIndex(level.config.dbi_config()),
        capacity_blocks=level.config.num_blocks,
    )
    return queue, level, model


def drive_both(queue, level, model, ops):
    """One op stream through both sides; serialized so timing cannot skew."""
    for is_write, addr in ops:
        if is_write:
            write(queue, level, addr)
            model.write(addr)
        else:
            read(queue, level, addr)
            # The model has no read datapath: a hit promotes, a miss fills.
            if model.contains(addr):
                model.touch(addr)
            else:
                model.install(addr)
        queue.run()
    assert level.is_idle()


def random_ops(count=400, write_fraction=0.5, seed=0x5D1):
    rng = DeterministicRng(seed)
    return [
        (rng.chance(write_fraction), rng.randint(0, FOOTPRINT - 1))
        for _ in range(count)
    ]


class TestModelAgreesWithTimedLevel:
    def test_contents_and_dirty_sets_agree(self):
        queue, level, model = make_pair()
        drive_both(queue, level, model, random_ops())
        level_contents = {b.addr for b in level.tags.iter_valid_blocks()}
        assert set(model._present) == level_contents
        assert set(model.dbi.all_dirty_blocks()) == level.dirty_blocks()
        level.check_invariants()

    def test_writeback_counters_agree(self):
        queue, level, model = make_pair()
        # Writes confined to two DBI regions (so dirty blocks survive to
        # eviction instead of all being displaced), reads thrash the tags.
        rng = DeterministicRng(0x5D2)
        ops = [
            (True, rng.randint(0, 7))
            if rng.chance(0.5)
            else (False, rng.randint(0, FOOTPRINT - 1))
            for _ in range(400)
        ]
        drive_both(queue, level, model, ops)
        level_stats = level.stats.as_dict()
        model_stats = model.stats.as_dict()
        for name in ("dirty_evictions", "awb_drains", "dbi_forced_writebacks"):
            assert model_stats.get(f"dram_cache.{name}", 0) == (
                level_stats.get(f"dramcache.{name}", 0)
            ), name
        # Something must actually have happened for this to mean anything.
        assert model_stats.get("dram_cache.dirty_evictions", 0) > 0

    def test_lru_victims_agree(self):
        queue, level, model = make_pair(
            num_blocks=8, granularity=4, dbi_associativity=1
        )
        # Fill both, protect block 0 with a touch, then overflow: the
        # untouched LRU block must fall out of both sides.
        for addr in range(8):
            drive_both(queue, level, model, [(False, addr)])
        drive_both(queue, level, model, [(False, 0)])
        victim = model.install(100)
        read(queue, level, 100)
        queue.run()
        assert victim == 1
        assert not level.tags.contains(1)
        assert level.tags.contains(0)

    def test_dispatcher_routing_matches_level_dirtiness(self):
        queue, level, model = make_pair()
        drive_both(queue, level, model, random_ops(write_fraction=0.6))
        # Block-for-block, the dispatcher's authority is the level's.
        for addr in range(FOOTPRINT):
            assert model.dbi.peek_dirty(addr) == level.peek_dirty(addr), addr
        dirty = sorted(level.dirty_blocks())
        clean = sorted(set(range(FOOTPRINT)) - set(dirty))
        assert dirty, "stream should leave some blocks dirty"
        dispatcher = DramCacheDispatcher(model, queue_penalty_threshold=0)
        dispatcher.cache_queue = 10  # loaded: every clean read offloads
        assert (
            dispatcher.dispatch_read(dirty[0]) is DispatchDecision.DRAM_CACHE
        )
        assert dispatcher.dispatch_read(clean[0]) is DispatchDecision.OFF_CHIP
