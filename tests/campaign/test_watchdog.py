"""Watchdog heartbeats: stale-worker detection and beacon reaping."""

import os
import time

from repro.campaign.watchdog import (
    heartbeat_dir,
    orchestrator_beacon_path,
    reap_dead_beacons,
    scan_heartbeats,
)
from repro.utils.heartbeat import write_heartbeat


def _write_beacon(directory, name, pid, age_seconds=0.0):
    path = os.path.join(heartbeat_dir(directory), name)
    write_heartbeat(path, pid=pid, role="worker")
    if age_seconds:
        # Staleness is judged by mtime; backdate it.
        stamp = time.time() - age_seconds
        os.utime(path, (stamp, stamp))
    return path


class TestScanHeartbeats:
    def test_fresh_live_worker_not_stale(self, tmp_path):
        directory = str(tmp_path)
        _write_beacon(directory, "worker-1.json", pid=os.getpid())
        report = scan_heartbeats(directory, worker_ttl=60.0)
        assert len(report.workers) == 1
        assert report.stale_workers == []

    def test_dead_pid_is_stale(self, tmp_path):
        directory = str(tmp_path)
        # PID 1 exists but isn't ours; fabricate a certainly-dead pid by
        # spawning and reaping a child.
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        _write_beacon(directory, "worker-1.json", pid=pid)
        report = scan_heartbeats(directory, worker_ttl=3600.0)
        assert len(report.stale_workers) == 1

    def test_old_heartbeat_is_stale_even_if_pid_alive(self, tmp_path):
        directory = str(tmp_path)
        _write_beacon(
            directory, "worker-1.json", pid=os.getpid(), age_seconds=7200.0
        )
        report = scan_heartbeats(directory, worker_ttl=60.0)
        assert len(report.stale_workers) == 1

    def test_orchestrator_beacon_surfaces(self, tmp_path):
        directory = str(tmp_path)
        write_heartbeat(
            orchestrator_beacon_path(directory),
            pid=os.getpid(),
            role="orchestrator",
        )
        report = scan_heartbeats(directory, worker_ttl=60.0)
        assert report.orchestrator is not None
        assert not report.orchestrator_stale(ttl=60.0)


class TestReapDeadBeacons:
    def test_reaps_only_dead_pids(self, tmp_path):
        directory = str(tmp_path)
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        dead = _write_beacon(directory, "worker-dead.json", pid=pid)
        live = _write_beacon(directory, "worker-live.json", pid=os.getpid())
        reaped = reap_dead_beacons(directory)
        assert reaped == 1
        assert not os.path.exists(dead)
        assert os.path.exists(live)

    def test_no_heartbeat_dir_is_noop(self, tmp_path):
        assert reap_dead_beacons(str(tmp_path / "nowhere")) == 0
