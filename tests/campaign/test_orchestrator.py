"""Campaign orchestrator: completion, recovery, and signal drain.

These tests run real (tiny) campaigns inline — quick scale, one
benchmark, two mechanisms, ``workers=0`` — so journal offsets are
deterministic. SIGKILL-grade chaos (which would take pytest down with
it) lives in the subprocess-based ``test_chaos_proof.py``.
"""

import filecmp
import glob
import json
import os
import signal

import pytest

from repro.analysis.chaos import CampaignChaosConfig, CampaignFaultInjector
from repro.campaign.journal import (
    CampaignJournal,
    encode_record,
    scan_journal,
)
from repro.campaign.orchestrator import (
    Campaign,
    CampaignConfig,
    CampaignError,
    campaign_status,
    manifest_path,
    render_status,
    report_path,
    results_path,
)

REFS = 300


def make_config(**overrides):
    base = dict(
        scale="quick",
        benchmarks=("lbm",),
        mechanisms=("baseline", "dbi"),
        core_counts=(1,),
        refs=REFS,
        workers=0,
    )
    base.update(overrides)
    return CampaignConfig(**base)


def run_campaign(directory, config=None, chaos=None):
    if os.path.exists(os.path.join(directory, "journal.jsonl")):
        campaign = Campaign.open(directory)
    else:
        campaign = Campaign.create(directory, config or make_config())
    with campaign:
        return campaign.run(progress=None, chaos=chaos)


def assert_no_litter(directory):
    """No atomic-write staging or partial files survive a finished run."""
    litter = [
        path
        for pattern in ("**/*.partial", "**/*.tmp.*")
        for path in glob.glob(
            os.path.join(directory, pattern), recursive=True
        )
    ]
    assert litter == [], f"staging litter left behind: {litter}"


class TestCompletion:
    def test_run_to_complete(self, tmp_path):
        directory = str(tmp_path / "camp")
        outcome = run_campaign(directory)
        assert outcome.status == "complete"
        assert outcome.exit_code == 0
        assert outcome.cells_done == outcome.cells_total == 2
        assert os.path.exists(results_path(directory))
        assert os.path.exists(report_path(directory))
        manifest = json.load(open(manifest_path(directory)))
        assert manifest["status"] == "complete"
        scan = scan_journal(os.path.join(directory, "journal.jsonl"))
        assert scan.records[-1]["kind"] == "complete"
        assert_no_litter(directory)

    def test_rerun_is_idempotent(self, tmp_path):
        directory = str(tmp_path / "camp")
        run_campaign(directory)
        results_before = open(results_path(directory), "rb").read()
        report_before = open(report_path(directory), "rb").read()
        outcome = run_campaign(directory)  # opens the completed campaign
        assert outcome.status == "complete"
        assert open(results_path(directory), "rb").read() == results_before
        assert open(report_path(directory), "rb").read() == report_before

    def test_results_payload_shape(self, tmp_path):
        directory = str(tmp_path / "camp")
        run_campaign(directory)
        payload = json.load(open(results_path(directory)))
        assert set(payload["cells"]) == {
            "1c/lbm/baseline", "1c/lbm/dbi",
        }
        for entry in payload["cells"].values():
            assert entry["key"]
            assert "ipc" in entry["result"]

    def test_live_lock_refuses_second_orchestrator(self, tmp_path):
        directory = str(tmp_path / "camp")
        campaign = Campaign.create(directory, make_config())
        try:
            with pytest.raises(CampaignError, match="another orchestrator"):
                Campaign.open(directory)
        finally:
            campaign.close()

    def test_create_refuses_existing_journal(self, tmp_path):
        directory = str(tmp_path / "camp")
        Campaign.create(directory, make_config()).close()
        with pytest.raises(CampaignError, match="already exists"):
            Campaign.create(directory, make_config())


class TestRecovery:
    def test_resume_after_torn_tail_is_byte_identical(self, tmp_path):
        reference = str(tmp_path / "reference")
        run_campaign(reference)
        directory = str(tmp_path / "torn")
        Campaign.create(directory, make_config()).close()
        journal = os.path.join(directory, "journal.jsonl")
        with open(journal, "ab") as handle:
            handle.write(b'{"kind": "dispatch", "cell": "1c/lbm/ba')
        campaign = Campaign.open(directory)
        assert campaign.recovered_torn == journal + ".torn"
        with campaign:
            outcome = campaign.run(progress=None)
        assert outcome.status == "complete"
        assert filecmp.cmp(
            results_path(reference), results_path(directory), shallow=False
        )
        assert filecmp.cmp(
            report_path(reference), report_path(directory), shallow=False
        )
        assert_no_litter(directory)

    def test_mid_plan_journal_refused(self, tmp_path):
        directory = str(tmp_path / "camp")
        Campaign.create(directory, make_config()).close()
        journal = os.path.join(directory, "journal.jsonl")
        lines = open(journal, "rb").read().splitlines(keepends=True)
        # Drop the trailing "planned" commit record: died mid-plan.
        with open(journal, "wb") as handle:
            handle.writelines(lines[:-1])
        with pytest.raises(CampaignError, match="mid-plan"):
            Campaign.open(directory)

    def test_fingerprint_mismatch_refused(self, tmp_path):
        directory = str(tmp_path / "camp")
        Campaign.create(directory, make_config()).close()
        journal = os.path.join(directory, "journal.jsonl")
        scan = scan_journal(journal)
        header = dict(scan.records[0])
        header.pop("sum")
        header["config"] = dict(header["config"], refs=REFS + 1)
        rewritten = [encode_record(header) + "\n"]
        for record in scan.records[1:]:
            body = dict(record)
            body.pop("sum")
            rewritten.append(encode_record(body) + "\n")
        with open(journal, "w") as handle:
            handle.writelines(rewritten)
        with pytest.raises(CampaignError, match="fingerprint"):
            Campaign.open(directory)


class TestSignalDrain:
    """Satellite: SIGTERM/SIGINT during an active sweep drain cleanly."""

    def _assert_drained(self, directory, outcome, signum):
        assert outcome.status == "drained"
        assert outcome.exit_code == 128 + signum
        assert outcome.signal == signum
        manifest = json.load(open(manifest_path(directory)))
        assert manifest["status"] == "drained"
        scan = scan_journal(os.path.join(directory, "journal.jsonl"))
        assert scan.records[-1]["kind"] == "drain"
        # In-flight work was collected, not abandoned: the drain must not
        # strand partial artifacts anywhere under the campaign.
        assert_no_litter(directory)

    def test_sigterm_drains_and_resume_is_byte_identical(self, tmp_path):
        reference = str(tmp_path / "reference")
        run_campaign(reference)
        directory = str(tmp_path / "drained")
        # Deterministic delivery: SIGTERM right after the first dispatch
        # record (seq 4) becomes durable, while that cell is in flight.
        chaos = CampaignFaultInjector(
            CampaignChaosConfig(kill_seq=4, mode="term")
        )
        outcome = run_campaign(directory, chaos=chaos)
        self._assert_drained(directory, outcome, signal.SIGTERM)
        assert outcome.cells_done == 1  # the in-flight cell was drained
        assert outcome.pending == ["1c/lbm/dbi"]
        resumed = run_campaign(directory)
        assert resumed.status == "complete"
        assert filecmp.cmp(
            results_path(reference), results_path(directory), shallow=False
        )
        assert filecmp.cmp(
            report_path(reference), report_path(directory), shallow=False
        )

    def test_sigint_drains_and_resume_completes(self, tmp_path):
        directory = str(tmp_path / "camp")
        campaign = Campaign.create(directory, make_config())
        fired = []

        def interrupt_on_first_done(line):
            if " done " in line and not fired:
                fired.append(line)
                os.kill(os.getpid(), signal.SIGINT)

        with campaign:
            outcome = campaign.run(progress=interrupt_on_first_done)
        assert fired, "progress callback never saw a completed cell"
        self._assert_drained(directory, outcome, signal.SIGINT)
        resumed = run_campaign(directory)
        assert resumed.status == "complete"
        assert resumed.cells_done == 2


class TestStatus:
    def test_status_reads_without_lock(self, tmp_path):
        directory = str(tmp_path / "camp")
        campaign = Campaign.create(directory, make_config())
        try:
            status = campaign_status(directory)
            assert status["cells_total"] == 2
            assert status["cells_done"] == 0
            assert render_status(status)
        finally:
            campaign.close()

    def test_status_after_completion(self, tmp_path):
        directory = str(tmp_path / "camp")
        run_campaign(directory)
        status = campaign_status(directory)
        assert status["cells_done"] == 2
        assert status["completed"] is True
