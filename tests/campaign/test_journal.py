"""Journal WAL: checksummed appends, torn-tail recovery, corruption."""

import json
import os

import pytest

from repro.campaign.journal import (
    JOURNAL_FORMAT,
    CampaignJournal,
    JournalError,
    decode_line,
    encode_record,
    recover_journal,
    scan_journal,
)


def make_journal(path, extra_records=2):
    journal = CampaignJournal(str(path))
    journal.append("header", format=JOURNAL_FORMAT, config={"scale": "quick"})
    for index in range(extra_records):
        journal.append("cell", cell_id=f"c{index}")
    journal.close()
    return journal


class TestRecordCodec:
    def test_roundtrip(self):
        line = encode_record({"kind": "done", "seq": 3, "cell": "x"})
        record = decode_line(line, 1)
        assert record["kind"] == "done"
        assert record["cell"] == "x"
        assert len(record["sum"]) == 16

    def test_checksum_rejects_tamper(self):
        line = encode_record({"kind": "done", "seq": 3, "cell": "x"})
        tampered = line.replace('"cell": "x"', '"cell": "y"')
        with pytest.raises(JournalError, match="checksum"):
            decode_line(tampered, 1)

    def test_unparseable_line_rejected(self):
        with pytest.raises(JournalError, match="unparseable"):
            decode_line('{"kind": "done", "seq":', 1)


class TestScan:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path, extra_records=3)
        scan = scan_journal(str(path))
        assert [r["kind"] for r in scan.records] == [
            "header", "cell", "cell", "cell",
        ]
        assert scan.torn == b""
        assert scan.good_bytes == os.path.getsize(path)
        assert scan.next_seq == 4

    def test_unterminated_tail_is_torn(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path)
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "done", "seq": 3, "ce')
        scan = scan_journal(str(path))
        assert len(scan.records) == 3
        assert scan.torn.startswith(b'{"kind": "done"')

    def test_terminated_garbage_tail_is_torn(self, tmp_path):
        """Even a newline-terminated bad final line counts as torn."""
        path = tmp_path / "j.jsonl"
        make_journal(path)
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "done", "seq": 3, "sum": "0000"}\n')
        scan = scan_journal(str(path))
        assert len(scan.records) == 3
        assert scan.torn

    def test_bad_record_before_tail_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path)
        data = open(path, "rb").read().splitlines(keepends=True)
        # Corrupt the middle record, keeping valid records after it.
        data[1] = data[1][: len(data[1]) // 2].rstrip(b"\n") + b"\n"
        with open(path, "wb") as handle:
            handle.writelines(data)
        with pytest.raises(JournalError):
            scan_journal(str(path))

    def test_sequence_break_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(str(path))
        journal.append("header", format=JOURNAL_FORMAT)
        journal.next_seq = 5  # simulate a lost record
        journal.append("cell", cell_id="x")
        journal.close()
        with pytest.raises(JournalError, match="sequence break"):
            scan_journal(str(path))

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(str(path))
        journal.append("cell", cell_id="x")  # kind != header at seq 0
        journal.close()
        with pytest.raises(JournalError, match="header"):
            scan_journal(str(path))

    def test_newer_format_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(str(path))
        journal.append("header", format=JOURNAL_FORMAT + 1)
        journal.close()
        with pytest.raises(JournalError, match="newer"):
            scan_journal(str(path))

    def test_empty_journal_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(b"")
        with pytest.raises(JournalError, match="empty"):
            scan_journal(str(path))

    def test_torn_at_creation_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(b'{"kind": "head')
        with pytest.raises(JournalError, match="torn at creation"):
            scan_journal(str(path))


class TestRecovery:
    def test_clean_journal_untouched(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path)
        before = path.read_bytes()
        scan, torn_path = recover_journal(str(path))
        assert torn_path is None
        assert path.read_bytes() == before
        assert len(scan.records) == 3

    def test_torn_tail_quarantined_and_truncated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path)
        good = path.read_bytes()
        fragment = b'{"kind": "done", "seq": 3, "ce'
        with open(path, "ab") as handle:
            handle.write(fragment)
        scan, torn_path = recover_journal(str(path))
        assert torn_path == str(path) + ".torn"
        assert open(torn_path, "rb").read() == fragment
        assert path.read_bytes() == good  # truncated back to the prefix
        # The recovered journal scans clean and appends continue the seq.
        journal = CampaignJournal(str(path), next_seq=scan.next_seq)
        journal.append("done", cell="c0")
        journal.close()
        rescan = scan_journal(str(path))
        assert rescan.records[-1]["kind"] == "done"
        assert rescan.records[-1]["seq"] == 3

    def test_append_after_recovery_roundtrips(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path, extra_records=1)
        with open(path, "ab") as handle:
            handle.write(b"garbage-no-newline")
        scan, _ = recover_journal(str(path))
        journal = CampaignJournal(str(path), next_seq=scan.next_seq)
        record = journal.append("drain", signal=15)
        journal.close()
        assert record["sum"]
        final = scan_journal(str(path))
        assert [r["seq"] for r in final.records] == [0, 1, 2]


class TestAppendDurability:
    def test_append_is_immediately_scannable(self, tmp_path):
        """Every append must be complete on disk when append() returns."""
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(str(path))
        journal.append("header", format=JOURNAL_FORMAT)
        # Read through a separate handle without closing the writer.
        scan = scan_journal(str(path))
        assert scan.records[0]["kind"] == "header"
        journal.close()

    def test_reserved_field_rejected(self, tmp_path):
        journal = CampaignJournal(str(tmp_path / "j.jsonl"))
        journal.append("header", format=JOURNAL_FORMAT)
        with pytest.raises(ValueError, match="reserved"):
            journal.append("done", seq=99)
        journal.close()

    def test_lines_are_sorted_key_json(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path, extra_records=1)
        for line in open(path):
            parsed = json.loads(line)
            assert line.strip() == json.dumps(parsed, sort_keys=True)
