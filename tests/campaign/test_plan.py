"""Campaign planning: deterministic cell grids and fingerprints."""

import pytest

from repro.analysis.scaling import SCALES
from repro.campaign.plan import (
    CampaignCell,
    cell_config,
    cell_traces,
    plan_cells,
    plan_fingerprint,
)

QUICK = SCALES["quick"]


class TestPlanCells:
    def test_single_core_grid(self):
        cells = plan_cells(QUICK, ["lbm", "mcf"], ["baseline", "dbi"], [1])
        ids = [cell.cell_id for cell in cells]
        assert ids == [
            "1c/lbm/baseline",
            "1c/lbm/dbi",
            "1c/mcf/baseline",
            "1c/mcf/dbi",
        ]
        assert all(cell.mix_index is None for cell in cells)

    def test_multicore_cells_record_mix_identity(self):
        cells = plan_cells(QUICK, ["lbm"], ["dbi"], [2])
        multicore = [cell for cell in cells if cell.num_cores == 2]
        assert multicore, "expected 2-core cells in the plan"
        for cell in multicore:
            assert cell.mix_index is not None
            assert cell.mix_name
            assert cell.cell_id.startswith("2c/")

    def test_plan_is_deterministic(self):
        first = plan_cells(QUICK, ["lbm"], ["baseline", "dbi"], [1, 2])
        second = plan_cells(QUICK, ["lbm"], ["baseline", "dbi"], [1, 2])
        assert [c.to_dict() for c in first] == [c.to_dict() for c in second]

    def test_cell_roundtrip(self):
        cells = plan_cells(QUICK, ["lbm"], ["dbi"], [1, 2])
        for cell in cells:
            assert CampaignCell.from_dict(cell.to_dict()) == cell


class TestCellTraces:
    def test_single_core_traces(self):
        cell = plan_cells(QUICK, ["lbm"], ["baseline"], [1])[0]
        traces = cell_traces(QUICK, cell, refs=500)
        assert len(traces) == 1

    def test_multicore_traces_match_mix(self):
        cell = next(
            c
            for c in plan_cells(QUICK, ["lbm"], ["dbi"], [2])
            if c.num_cores == 2
        )
        traces = cell_traces(QUICK, cell, refs=500)
        assert len(traces) == 2

    def test_mix_name_drift_detected(self):
        cell = next(
            c
            for c in plan_cells(QUICK, ["lbm"], ["dbi"], [2])
            if c.num_cores == 2
        )
        drifted = CampaignCell.from_dict(
            {**cell.to_dict(), "mix_name": "not_the_real_mix"}
        )
        with pytest.raises(ValueError, match="mix"):
            cell_traces(QUICK, drifted, refs=500)

    def test_cell_config_mechanism(self):
        cell = plan_cells(QUICK, ["lbm"], ["dbi+awb"], [1])[0]
        config = cell_config(QUICK, cell)
        assert config is not None


class TestFingerprint:
    def test_stable_across_calls(self):
        cells = plan_cells(QUICK, ["lbm"], ["baseline"], [1])
        identity = {"scale": "quick", "refs": 500}
        assert plan_fingerprint(identity, cells) == plan_fingerprint(
            identity, cells
        )

    def test_sensitive_to_identity(self):
        cells = plan_cells(QUICK, ["lbm"], ["baseline"], [1])
        a = plan_fingerprint({"scale": "quick"}, cells)
        b = plan_fingerprint({"scale": "default"}, cells)
        assert a != b

    def test_sensitive_to_cells(self):
        base = plan_cells(QUICK, ["lbm"], ["baseline"], [1])
        more = plan_cells(QUICK, ["lbm"], ["baseline", "dbi"], [1])
        identity = {"scale": "quick"}
        assert plan_fingerprint(identity, base) != plan_fingerprint(
            identity, more
        )
