"""Campaign planning: deterministic cell grids and fingerprints."""

import pytest

from repro.analysis.scaling import SCALES
from repro.campaign.plan import (
    CampaignCell,
    cell_config,
    cell_traces,
    plan_cells,
    plan_fingerprint,
)

QUICK = SCALES["quick"]


class TestPlanCells:
    def test_single_core_grid(self):
        cells = plan_cells(QUICK, ["lbm", "mcf"], ["baseline", "dbi"], [1])
        ids = [cell.cell_id for cell in cells]
        assert ids == [
            "1c/lbm/baseline",
            "1c/lbm/dbi",
            "1c/mcf/baseline",
            "1c/mcf/dbi",
        ]
        assert all(cell.mix_index is None for cell in cells)

    def test_multicore_cells_record_mix_identity(self):
        cells = plan_cells(QUICK, ["lbm"], ["dbi"], [2])
        multicore = [cell for cell in cells if cell.num_cores == 2]
        assert multicore, "expected 2-core cells in the plan"
        for cell in multicore:
            assert cell.mix_index is not None
            assert cell.mix_name
            assert cell.cell_id.startswith("2c/")

    def test_plan_is_deterministic(self):
        first = plan_cells(QUICK, ["lbm"], ["baseline", "dbi"], [1, 2])
        second = plan_cells(QUICK, ["lbm"], ["baseline", "dbi"], [1, 2])
        assert [c.to_dict() for c in first] == [c.to_dict() for c in second]

    def test_cell_roundtrip(self):
        cells = plan_cells(QUICK, ["lbm"], ["dbi"], [1, 2])
        for cell in cells:
            assert CampaignCell.from_dict(cell.to_dict()) == cell


class TestCellTraces:
    def test_single_core_traces(self):
        cell = plan_cells(QUICK, ["lbm"], ["baseline"], [1])[0]
        traces = cell_traces(QUICK, cell, refs=500)
        assert len(traces) == 1

    def test_multicore_traces_match_mix(self):
        cell = next(
            c
            for c in plan_cells(QUICK, ["lbm"], ["dbi"], [2])
            if c.num_cores == 2
        )
        traces = cell_traces(QUICK, cell, refs=500)
        assert len(traces) == 2

    def test_mix_name_drift_detected(self):
        cell = next(
            c
            for c in plan_cells(QUICK, ["lbm"], ["dbi"], [2])
            if c.num_cores == 2
        )
        drifted = CampaignCell.from_dict(
            {**cell.to_dict(), "mix_name": "not_the_real_mix"}
        )
        with pytest.raises(ValueError, match="mix"):
            cell_traces(QUICK, drifted, refs=500)

    def test_cell_config_mechanism(self):
        cell = plan_cells(QUICK, ["lbm"], ["dbi+awb"], [1])[0]
        config = cell_config(QUICK, cell)
        assert config is not None


class TestFingerprint:
    def test_stable_across_calls(self):
        cells = plan_cells(QUICK, ["lbm"], ["baseline"], [1])
        identity = {"scale": "quick", "refs": 500}
        assert plan_fingerprint(identity, cells) == plan_fingerprint(
            identity, cells
        )

    def test_sensitive_to_identity(self):
        cells = plan_cells(QUICK, ["lbm"], ["baseline"], [1])
        a = plan_fingerprint({"scale": "quick"}, cells)
        b = plan_fingerprint({"scale": "default"}, cells)
        assert a != b

    def test_sensitive_to_cells(self):
        base = plan_cells(QUICK, ["lbm"], ["baseline"], [1])
        more = plan_cells(QUICK, ["lbm"], ["baseline", "dbi"], [1])
        identity = {"scale": "quick"}
        assert plan_fingerprint(identity, base) != plan_fingerprint(
            identity, more
        )


class TestFullWidthPlans:
    def test_full_width_covers_paper_mix_table(self):
        from repro.workloads.mix import paper_mix_count

        cells = plan_cells(
            QUICK, ["lbm"], ["baseline"], [2], full_width=True
        )
        mixes = [c for c in cells if c.category == "mix"]
        assert len(mixes) == paper_mix_count(2)

    def test_full_width_adds_alone_normalizers(self):
        from repro.workloads.mix import paper_mix_count

        cells = plan_cells(
            QUICK, ["lbm"], ["baseline"], [2], full_width=True
        )
        alone = [c for c in cells if c.category == "alone"]
        assert alone, "full-width plans schedule alone normalizers"
        assert all(c.mechanism == "baseline" for c in alone)
        specs = QUICK.mix_specs(2, paper_mix_count(2))
        mix_benchmarks = {
            name
            for c in cells
            if c.category == "mix"
            for name in specs[c.mix_index].benchmark_names
        }
        assert {c.benchmark for c in alone} >= mix_benchmarks

    def test_ingested_and_sensitivity_cells(self):
        cells = plan_cells(
            QUICK, ["lbm"], ["baseline", "dbi"], [1],
            ingested=[("ext", "a" * 64)],
            sensitivity=[1, 2],
            sensitivity_benchmarks=["lbm"],
        )
        traces = [c for c in cells if c.category == "trace"]
        assert [c.cell_id for c in traces] == [
            "trace/ext/baseline", "trace/ext/dbi",
        ]
        assert all(c.trace_sha == "a" * 64 for c in traces)
        sens = [c for c in cells if c.category == "sens"]
        assert {(c.backend, c.bandwidth) for c in sens} == {
            ("tag", 1), ("tag", 2), ("dbi", 1), ("dbi", 2),
        }

    def test_sensitivity_without_benchmarks_rejected(self):
        with pytest.raises(ValueError, match="sensitivity"):
            plan_cells(QUICK, ["lbm"], ["baseline"], [1], sensitivity=[2])

    def test_kind_survives_roundtrip_without_journal_collision(self):
        cells = plan_cells(
            QUICK, ["lbm"], ["baseline"], [1],
            ingested=[("ext", "b" * 64)],
            sensitivity=[2], sensitivity_benchmarks=["lbm"],
        )
        for cell in cells:
            data = cell.to_dict()
            assert "kind" not in data  # reserved by the journal record type
            assert CampaignCell.from_dict(data) == cell

    def test_trace_cell_sha_drift_refused(self, tmp_path):
        from repro.sim.ingest import ingest_trace

        import os

        fixture = os.path.join(
            os.path.dirname(__file__), "..", "sim", "fixtures",
            "gem5_sample.trace",
        )
        registry = str(tmp_path / "traces")
        entry = ingest_trace(fixture, registry, name="ext")
        cells = plan_cells(
            QUICK, [], ["baseline"], [1],
            ingested=[("ext", entry["sha256"])],
        )
        assert cell_traces(
            QUICK, cells[0], ingest_dir=registry
        )[0].name == "ext"
        drifted = plan_cells(
            QUICK, [], ["baseline"], [1], ingested=[("ext", "0" * 64)]
        )
        with pytest.raises(ValueError, match="sha"):
            cell_traces(QUICK, drifted[0], ingest_dir=registry)

    def test_trace_cell_needs_ingest_dir(self):
        cells = plan_cells(
            QUICK, [], ["baseline"], [1], ingested=[("ext", "c" * 64)]
        )
        with pytest.raises(ValueError, match="ingest"):
            cell_traces(QUICK, cells[0])
