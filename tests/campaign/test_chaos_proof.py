"""Kill-and-resume chaos proof (slow: real orchestrator subprocesses).

Each test SIGKILLs (or SIGTERM-drains) a campaign subprocess at an exact
scheduled point, resumes it with plain ``repro campaign run``, and
asserts the recovered artifacts are byte-identical to an uninterrupted
reference run. SIGKILL cannot be exercised in-process (it would take
pytest down too), hence the subprocess harness. The same proof gates CI
through ``tools/soak_gate.py``.

Journal seq layout for the 2-cell inline campaign (``--workers 0``):
0 header, 1-2 cell, 3 planned, 4-5 dispatch, 6-7 done, 8 complete.
"""

import pytest

from repro.campaign.proof import KillPoint, kill_and_resume_proof

pytestmark = pytest.mark.slow


class TestTelemetryCampaignProof:
    def test_kill_points_recover_byte_identically(self, tmp_path):
        report = kill_and_resume_proof(
            str(tmp_path),
            variant="telemetry",
            kill_points=[
                # SIGKILL mid-journal-append: half the first "done" record
                # is durable when the process dies.
                KillPoint("torn-mid-append", "kill=6,mode=torn"),
                # SIGKILL right after the first dispatch became durable.
                KillPoint("kill-after-dispatch", "kill=4,mode=kill"),
                # SIGTERM: graceful drain of the in-flight cell.
                KillPoint("term-drain", "kill=4,mode=term", expect="drain"),
            ],
            telemetry=True,
        )
        assert report.ok, report.to_text()


class TestCheckpointCampaignProof:
    def test_kill_mid_warm_build_recovers(self, tmp_path):
        report = kill_and_resume_proof(
            str(tmp_path),
            variant="checkpoint",
            kill_points=[
                # SIGKILL while the warm-image build lock is held and
                # partial staging litter is on disk: the resume must
                # reclaim the dead owner's lock and rebuild.
                KillPoint("kill-mid-warm-build", "warm_kill=1"),
            ],
            checkpoint=True,
        )
        assert report.ok, report.to_text()
