"""Virtual Write Queue (VWQ) [51].

Like DAWB, VWQ writes back row-mates of an evicted dirty block, but it first
consults a *Set State Vector* (SSV): one bit per cache set indicating whether
the set holds any dirty block in its LRU ways. A row-mate's set is probed
only when its SSV bit is on, and the probe inspects only the LRU half —
dirty blocks in the MRU half are deliberately left alone (they may be
rewritten soon).

The SSV filter removes some useless lookups, but because most sets contain
*some* dirty LRU-half block under write-heavy workloads, the paper finds VWQ
is barely cheaper than DAWB (1.88× vs 1.95× tag lookups, Section 6.1) —
behaviour this implementation reproduces.
"""

from __future__ import annotations

from functools import partial

from repro.cache.port import PortPriority
from repro.mechanisms.base import LlcMechanism


class VwqMechanism(LlcMechanism):
    """TA-DIP cache + SSV-filtered LRU-way probing on dirty evictions."""

    name = "vwq"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Rows with a probe round in flight (same coalescing as DAWB).
        self._rows_in_flight = set()

    def telemetry_gauges(self):
        gauges = super().telemetry_gauges()
        gauges["probe_rows_in_flight"] = lambda: len(self._rows_in_flight)
        return gauges

    def _ssv_bit(self, set_idx: int) -> bool:
        """Does this set hold a dirty block in an LRU-half way?

        The SSV is a separate small structure kept coherent with the tag
        store by hardware; consulting it costs no tag-port bandwidth, so we
        model it as a free functional check.
        """
        ways = self.llc.sets[set_idx]
        return any(ways[way].dirty for way in self.llc.lru_valid_ways(set_idx))

    def _after_dirty_eviction(self, addr: int) -> None:
        row = self.mapper.global_row_id(addr)
        if row in self._rows_in_flight:
            self.stats.counter("coalesced_rounds").increment()
            return
        probes = []
        for other in self.mapper.row_span(addr):
            if other == addr:
                continue
            if not self._ssv_bit(self.llc.set_index(other)):
                self.stats.counter("ssv_filtered").increment()
                continue
            probes.append(other)
        if not probes:
            return
        self._rows_in_flight.add(row)
        last = probes[-1]
        for other in probes:
            self.port.request(
                partial(self._probe_lru_ways, other, row, other == last),
                PortPriority.BACKGROUND,
            )

    def _probe_lru_ways(self, addr: int, row: int, last_of_round: bool) -> None:
        """Background lookup restricted to the set's LRU half."""
        self._count_tag_lookup(-1)
        self.stats.counter("row_probes").increment()
        set_idx = self.llc.set_index(addr)
        ways = self.llc.sets[set_idx]
        found = False
        for way in self.llc.lru_valid_ways(set_idx):
            block = ways[way]
            if block.addr == addr and block.dirty:
                self.llc.mark_clean(addr)
                found = True
                self.stats.counter("proactive_writebacks").increment()
                self._send_memory_write(addr, "vwq-probe")
                break
        if not found:
            self.stats.counter("wasted_probes").increment()
        if last_of_round:
            self._rows_in_flight.discard(row)
