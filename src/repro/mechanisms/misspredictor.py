"""Skip Cache's epoch-based miss predictor [44].

Execution is divided into fixed-length epochs. During each epoch the
predictor observes the LLC hit/miss outcomes of each core's accesses to a
small sample of *monitor sets* (set sampling [41]). If a core's sampled miss
rate exceeded the threshold (0.95 in the paper) in the previous epoch, all of
that core's accesses in the current epoch — except those mapping to monitor
sets, which keep training the predictor — are predicted to miss.

Both the Skip Cache mechanism and the DBI's CLB optimization use this
predictor (paper Table 2 and Section 3.2).
"""

from __future__ import annotations

from typing import List

from repro.utils.stats import StatGroup
from repro.utils.validation import check_positive, check_range


class MissPredictor:
    """Per-core epoch miss-rate monitor with set sampling."""

    def __init__(
        self,
        num_cores: int,
        num_sets: int,
        threshold: float = 0.95,
        epoch_cycles: int = 250_000,
        sample_modulus: int = 32,
        sample_offset: int = 7,
    ) -> None:
        check_positive("num_cores", num_cores)
        check_positive("num_sets", num_sets)
        check_range("threshold", threshold, 0.0, 1.0)
        check_positive("epoch_cycles", epoch_cycles)
        check_positive("sample_modulus", sample_modulus)
        self.num_cores = num_cores
        self.num_sets = num_sets
        self.threshold = threshold
        self.epoch_cycles = epoch_cycles
        self.sample_modulus = min(sample_modulus, num_sets)
        self.sample_offset = sample_offset % self.sample_modulus
        self.stats = StatGroup("predictor")
        self._epoch_start = 0
        self._misses: List[int] = [0] * num_cores
        self._accesses: List[int] = [0] * num_cores
        self._predict_miss: List[bool] = [False] * num_cores

    @property
    def bypassing_cores(self) -> int:
        """Cores whose accesses are currently predicted to miss (stat-free;
        telemetry reads this without rolling the epoch forward)."""
        return sum(self._predict_miss)

    def is_monitor_set(self, set_idx: int) -> bool:
        """Monitor sets are never bypassed; they keep training the predictor."""
        return set_idx % self.sample_modulus == self.sample_offset

    def _maybe_roll_epoch(self, now: int) -> None:
        if now - self._epoch_start < self.epoch_cycles:
            return
        for core in range(self.num_cores):
            accesses = self._accesses[core]
            if accesses > 0:
                # Epochs with no sampled accesses keep the previous verdict.
                miss_rate = self._misses[core] / accesses
                self._predict_miss[core] = miss_rate > self.threshold
            self._misses[core] = 0
            self._accesses[core] = 0
        self._epoch_start = now
        self.stats.counter("epochs").increment()

    def record_outcome(self, core_id: int, set_idx: int, hit: bool, now: int) -> None:
        """Train on an observed lookup outcome (monitor sets only)."""
        self._maybe_roll_epoch(now)
        if core_id < 0 or not self.is_monitor_set(set_idx):
            return
        self._accesses[core_id] += 1
        if not hit:
            self._misses[core_id] += 1

    def predicts_miss(self, core_id: int, set_idx: int, now: int) -> bool:
        """Should this access skip the tag lookup?"""
        self._maybe_roll_epoch(now)
        if core_id < 0 or self.is_monitor_set(set_idx):
            return False
        prediction = self._predict_miss[core_id]
        if prediction:
            self.stats.counter("miss_predictions").increment()
        return prediction
