"""Shared machinery for LLC mechanisms.

:class:`LlcMechanism` implements the conventional read/writeback paths —
tag-port arbitration, MSHR-style fill merging, dirty evictions, and
back-pressured memory writebacks — and exposes the hooks the paper's
mechanisms specialize:

* how a block is *marked dirty* (in-tag bit vs. DBI entry),
* how dirtiness of an *evicted* block is determined,
* what happens *after* a dirty eviction (DAWB/VWQ/AWB row probing),
* whether a read may *bypass* the tag lookup (Skip Cache / CLB).

Every tag lookup — demand read, writeback request, or background row probe —
goes through the tag port and increments ``tag_lookups``; Figure 6c's
lookups-per-kilo-instruction comparison falls directly out of this counter.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Callable, Deque, Dict, List

from repro.cache.cache import Cache, EvictedBlock
from repro.cache.port import PortPriority, TagPort
from repro.dram.address import AddressMapper
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest
from repro.utils.events import EventQueue
from repro.utils.stats import StatGroup

#: Cycles between attempts to re-enqueue a writeback the controller rejected.
WRITEBACK_RETRY_INTERVAL = 50


def _invoke(callback: Callable[[int], None], addr: int) -> None:
    """Module-level trampoline so deferred data deliveries pickle.

    ``partial(_invoke, on_data, addr)`` replaces ``lambda: on_data(addr)``:
    the event graph must contain no closures or a checkpoint cannot
    serialize it (see :mod:`repro.checkpoint`).
    """
    callback(addr)


def _deliver_block(on_data: Callable[[int], None], request) -> None:
    """Picklable ``MemoryRequest.on_complete`` that forwards the block."""
    on_data(request.block_addr)


class LlcMechanism:
    """Conventional LLC behaviour (the paper's Baseline when LRU is used)."""

    name = "baseline"
    #: False for DBI mechanisms, which must never set in-tag dirty bits.
    uses_tag_dirty_bits = True
    #: True for write-through mechanisms (skipcache): a memory write per
    #: writeback request, never any dirty state to conserve.
    write_through = False
    #: Optional CheckEngine tap on memory writebacks (full checked mode).
    checker = None
    #: Optional DrainRecorder witness (oracle-v2 differential runs only).
    recorder = None

    def __init__(
        self,
        queue: EventQueue,
        llc: Cache,
        port: TagPort,
        memory: MemoryController,
        mapper: AddressMapper,
    ) -> None:
        self.queue = queue
        self.llc = llc
        self.port = port
        self.memory = memory
        self.mapper = mapper
        self.stats = StatGroup("mech")
        self._pending_fills: Dict[int, List[Callable[[int], None]]] = {}
        self._writeback_overflow: Deque[int] = deque()
        self._retry_pending = False
        # Hot-path counters, bound lazily so the exported stat set stays
        # byte-identical to creation-on-first-increment.
        self._c_read_requests = None
        self._c_read_hits = None
        self._c_read_misses = None
        self._c_writeback_requests = None
        self._c_memory_writebacks = None
        self._c_tag_lookups = None
        self._c_tag_lookups_core: Dict[int, object] = {}

    # ------------------------------------------------------------ read path

    def read(self, core_id: int, addr: int, on_data: Callable[[int], None]) -> None:
        """Demand read from an L2 miss; ``on_data(addr)`` fires when served."""
        counter = self._c_read_requests
        if counter is None:
            counter = self._c_read_requests = self.stats.counter("read_requests")
        counter.value += 1
        self._lookup_for_read(core_id, addr, on_data)

    def _lookup_for_read(
        self, core_id: int, addr: int, on_data: Callable[[int], None]
    ) -> None:
        self.port.request(
            partial(self._read_granted, core_id, addr, on_data),
            PortPriority.DEMAND,
        )

    def _read_granted(
        self, core_id: int, addr: int, on_data: Callable[[int], None]
    ) -> None:
        self._count_tag_lookup(core_id)
        if self.llc.lookup(addr, core_id):
            counter = self._c_read_hits
            if counter is None:
                counter = self._c_read_hits = self.stats.counter("read_hits")
            counter.value += 1
            self._train_predictor(core_id, addr, hit=True)
            self.queue.schedule_after(
                self.llc.config.hit_latency, partial(_invoke, on_data, addr)
            )
            return
        counter = self._c_read_misses
        if counter is None:
            counter = self._c_read_misses = self.stats.counter("read_misses")
        counter.value += 1
        self._train_predictor(core_id, addr, hit=False)
        self.queue.schedule_after(
            self.llc.config.miss_detect_latency,
            partial(self._fetch_block, core_id, addr, on_data),
        )

    def _fetch_block(
        self, core_id: int, addr: int, on_data: Callable[[int], None]
    ) -> None:
        """Read ``addr`` from memory and fill the LLC, merging duplicates."""
        waiters = self._pending_fills.get(addr)
        if waiters is not None:
            waiters.append(on_data)
            self.stats.counter("fill_merges").increment()
            return
        self._pending_fills[addr] = [on_data]
        if self.recorder is not None:
            self.recorder.on_memory_fetch(addr)
        self.memory.enqueue_read(
            MemoryRequest(
                block_addr=addr,
                is_write=False,
                core_id=core_id,
                on_complete=partial(self._fill_request_done, core_id),
            )
        )

    def _fill_request_done(self, core_id: int, request: MemoryRequest) -> None:
        self._fill_arrived(core_id, request.block_addr)

    def _fill_arrived(self, core_id: int, addr: int) -> None:
        waiters = self._pending_fills.pop(addr, [])
        evicted = self.llc.insert(addr, core_id=core_id, dirty=False)
        if evicted is not None:
            self._handle_cache_eviction(evicted)
        for on_data in waiters:
            on_data(addr)

    def _fetch_without_fill(
        self, core_id: int, addr: int, on_data: Callable[[int], None]
    ) -> None:
        """Serve a bypassed read straight from memory, without LLC pollution."""
        if self.recorder is not None:
            self.recorder.on_memory_fetch(addr)
        self.memory.enqueue_read(
            MemoryRequest(
                block_addr=addr,
                is_write=False,
                core_id=core_id,
                on_complete=partial(_deliver_block, on_data),
            )
        )

    # ------------------------------------------------------- writeback path

    def writeback(self, core_id: int, addr: int) -> None:
        """Writeback request from the previous cache level (L2 dirty evict)."""
        counter = self._c_writeback_requests
        if counter is None:
            counter = self._c_writeback_requests = self.stats.counter(
                "writeback_requests"
            )
        counter.value += 1
        self.port.request(
            partial(self._writeback_granted, core_id, addr), PortPriority.DEMAND
        )

    def _writeback_granted(self, core_id: int, addr: int) -> None:
        self._count_tag_lookup(core_id)
        if self.llc.contains(addr):
            self.llc.touch(addr, core_id)
            self._mark_dirty(addr)
            return
        evicted = self._insert_dirty(addr, core_id)
        if evicted is not None:
            self._handle_cache_eviction(evicted)

    # ------------------------------------------- hooks mechanisms specialize

    def _mark_dirty(self, addr: int) -> None:
        """Record that a cached block now holds modified data."""
        self.llc.mark_dirty(addr)

    def _insert_dirty(self, addr: int, core_id: int):
        """Install a written-back block that was absent from the LLC."""
        return self.llc.insert(addr, core_id=core_id, dirty=True)

    def _handle_cache_eviction(self, evicted: EvictedBlock) -> None:
        """A block fell out of the LLC; write it back if dirty."""
        if evicted.dirty:
            self._send_memory_write(evicted.addr)
            self._after_dirty_eviction(evicted.addr)

    def _after_dirty_eviction(self, addr: int) -> None:
        """Hook for proactive row writeback (DAWB/VWQ/AWB). Default: none."""

    def _train_predictor(self, core_id: int, addr: int, hit: bool) -> None:
        """Hook for miss-predictor training (Skip Cache / CLB)."""

    # ------------------------------------------------------- memory writes

    def _send_memory_write(self, addr: int, cause: str = "evict") -> None:
        """Queue a block writeback to memory, retrying under back-pressure.

        ``cause`` is one of :data:`repro.check.schedule.WRITEBACK_CAUSES`;
        the ledger counts it and the drain recorder uses it to tell demand
        writebacks from background drains.
        """
        counter = self._c_memory_writebacks
        if counter is None:
            counter = self._c_memory_writebacks = self.stats.counter(
                "memory_writebacks"
            )
        counter.value += 1
        if self.checker is not None:
            self.checker.on_memory_writeback(addr, cause)
        if self.recorder is not None:
            self.recorder.on_memory_writeback(addr, cause)
        accepted = self.memory.enqueue_write(
            MemoryRequest(block_addr=addr, is_write=True)
        )
        if not accepted:
            self._writeback_overflow.append(addr)
            self._schedule_writeback_retry()

    def _schedule_writeback_retry(self) -> None:
        if self._retry_pending:
            return
        self._retry_pending = True
        self.queue.schedule_after(WRITEBACK_RETRY_INTERVAL, self._retry_writebacks)

    def _retry_writebacks(self) -> None:
        self._retry_pending = False
        while self._writeback_overflow:
            addr = self._writeback_overflow[0]
            if self.memory.enqueue_write(MemoryRequest(block_addr=addr, is_write=True)):
                self._writeback_overflow.popleft()
            else:
                self._schedule_writeback_retry()
                return

    # -------------------------------------------------------------- stats

    def _count_tag_lookup(self, core_id: int) -> None:
        counter = self._c_tag_lookups
        if counter is None:
            counter = self._c_tag_lookups = self.stats.counter("tag_lookups")
        counter.value += 1
        if core_id >= 0:
            per_core = self._c_tag_lookups_core.get(core_id)
            if per_core is None:
                per_core = self._c_tag_lookups_core[core_id] = self.stats.counter(
                    f"tag_lookups_core{core_id}"
                )
            per_core.value += 1

    def telemetry_gauges(self) -> Dict[str, Callable[[], float]]:
        """Instantaneous probes for the epoch sampler (stat-free reads only).

        Subclasses extend the dict with mechanism-specific state (DBI
        occupancy, probe rounds in flight, bypassing cores). Every probe
        must be purely observational — reading it cannot touch a counter.
        """
        return {
            "pending_fills": lambda: len(self._pending_fills),
            "writeback_overflow": lambda: len(self._writeback_overflow),
            "llc_dirty_blocks": lambda: self.llc.dirty_count,
        }

    def is_idle(self) -> bool:
        """No fills in flight and no writebacks waiting (end-of-run check)."""
        return (
            not self._pending_fills
            and not self._writeback_overflow
            and self.port.queued == 0
        )

    # ------------------------------------------------- invariant inspection

    def check_invariants(self) -> None:
        """Raise AssertionError on internal inconsistency (used by tests)."""
        # Conventional caches: nothing beyond cache-internal consistency.
