"""The DBI-based LLC mechanism (paper Sections 2-3).

One class covers the four DBI rows of Table 2 via two feature flags:

* ``enable_awb`` — Aggressive Writeback (Section 3.1): on a dirty cache
  eviction, the DBI's bit vector lists every other dirty block of the DRAM
  row; only those blocks get (background-priority) tag lookups, so there are
  no wasted probes, unlike DAWB/VWQ.
* ``enable_clb`` — Cache Lookup Bypass (Section 3.2, Figure 4): predicted
  misses consult the small DBI first; if the block is not dirty the LLC tag
  lookup is skipped and the access goes straight to memory. Works with any
  predictor because the DBI is authoritative about dirtiness.

Even with both flags off, plain DBI gets DRAM-aware writeback "for free":
a DBI *entry* eviction (Section 2.2.4) writes back a whole row's dirty
blocks in one burst — which is why DBI alone already beats DAWB in the
paper's case study (Section 6.2).

Invariants maintained (and checked by :meth:`check_invariants`):
the tag store's dirty bits are never set; every DBI-dirty block is present
in the cache; the dirty working set never exceeds α × cache blocks.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Optional

from repro.cache.cache import EvictedBlock
from repro.cache.port import PortPriority
from repro.core.dbi import DbiEviction, DirtyBlockIndex
from repro.mechanisms.base import LlcMechanism
from repro.mechanisms.misspredictor import MissPredictor


class DbiMechanism(LlcMechanism):
    """TA-DIP cache whose dirty bits live in a Dirty-Block Index."""

    name = "dbi"
    uses_tag_dirty_bits = False

    def __init__(
        self,
        *args,
        dbi: DirtyBlockIndex,
        enable_awb: bool = False,
        enable_clb: bool = False,
        predictor: Optional[MissPredictor] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.dbi = dbi
        self.enable_awb = enable_awb
        self.enable_clb = enable_clb
        self.predictor = predictor
        if enable_clb and predictor is None:
            raise ValueError("CLB requires a miss predictor")
        parts = ["dbi"]
        if enable_awb:
            parts.append("awb")
        if enable_clb:
            parts.append("clb")
        self.name = "+".join(parts)

    def telemetry_gauges(self):
        gauges = super().telemetry_gauges()
        gauges["dbi_occupancy"] = lambda: self.dbi.live_entries
        gauges["dbi_dirty_blocks"] = lambda: self.dbi.live_dirty_blocks
        if self.predictor is not None:
            gauges["bypassing_cores"] = lambda: self.predictor.bypassing_cores
        return gauges

    # ------------------------------------------------------------ read path

    def read(self, core_id: int, addr: int, on_data: Callable[[int], None]) -> None:
        self.stats.counter("read_requests").increment()
        if not self.enable_clb:
            self._lookup_for_read(core_id, addr, on_data)
            return
        set_idx = self.llc.set_index(addr)
        if not self.predictor.predicts_miss(core_id, set_idx, self.queue.now):
            self._lookup_for_read(core_id, addr, on_data)
            return
        # Predicted miss: consult the DBI (small, fast, off the tag port)
        # before daring to bypass — dirty blocks must be served by the cache.
        self.stats.counter("clb_predicted_misses").increment()
        self.queue.schedule_after(
            self.dbi.config.latency,
            partial(self._clb_dbi_checked, core_id, addr, on_data),
        )

    def _clb_dbi_checked(
        self, core_id: int, addr: int, on_data: Callable[[int], None]
    ) -> None:
        if self.dbi.is_dirty(addr):
            # Figure 4's "block is dirty?" yes-arm: access the cache normally.
            self.stats.counter("clb_dirty_aborts").increment()
            self._lookup_for_read(core_id, addr, on_data)
            return
        # Clean or absent: memory's copy is usable either way. Bypass the
        # critical-path tag lookup and go straight to memory. The response
        # still fills the LLC off the critical path — the paper reports CLB
        # leaves LLC MPKI unchanged (Section 6.1), so bypass skips the
        # *lookup*, not the allocation. Installing the fill touches the tags
        # anyway, so presence is discovered then: replacement state keeps
        # its reuse signal and set-dueling PSELs keep their (true) miss
        # votes — starving or polluting either silently flips follower sets
        # to the wrong insertion policy.
        self.stats.counter("bypassed_lookups").increment()
        if self.llc.contains(addr):
            # Bypassed-but-resident: the lookup was skipped but no reload
            # was needed, so this is not an LLC miss. Counted separately so
            # llc_mpki can exclude it (CLB leaves MPKI unchanged, Sec 6.1).
            self.stats.counter("bypassed_hits").increment()
            self.llc.touch(addr, core_id)
        else:
            self.llc.policy.note_miss(self.llc.set_index(addr), core_id)
        self._fetch_block(core_id, addr, on_data)

    def _train_predictor(self, core_id: int, addr: int, hit: bool) -> None:
        if self.predictor is not None:
            self.predictor.record_outcome(
                core_id, self.llc.set_index(addr), hit, self.queue.now
            )

    # ------------------------------------------------------- dirty tracking

    def _mark_dirty(self, addr: int) -> None:
        eviction = self.dbi.mark_dirty(addr)
        if eviction is not None:
            self._handle_dbi_eviction(eviction)

    def _insert_dirty(self, addr: int, core_id: int):
        # The block enters the tag store *clean*; the DBI records dirtiness.
        evicted = self.llc.insert(addr, core_id=core_id, dirty=False)
        if evicted is not None:
            # Process the displaced block before touching the DBI for the
            # incoming one, mirroring the hardware's eviction-then-update.
            self._handle_cache_eviction(evicted)
        self._mark_dirty(addr)
        return None  # eviction already handled here

    def _handle_cache_eviction(self, evicted: EvictedBlock) -> None:
        assert not evicted.dirty, "DBI cache must not use in-tag dirty bits"
        if not self.dbi.is_dirty(evicted.addr):
            return
        # Section 2.2.3: consult DBI, write back, clear the bit.
        self.dbi.mark_clean(evicted.addr)
        self._send_memory_write(evicted.addr)
        if self.enable_awb:
            self._aggressive_writeback(evicted.addr)

    # -------------------------------------------------- AWB (Section 3.1)

    def _aggressive_writeback(self, addr: int) -> None:
        """Write back the evicted block's still-dirty row-mates.

        The DBI bit vector names them exactly, so every background lookup
        hits a truly dirty block (Figure 3) — contrast DAWB's full-row scan.
        """
        for other in self.dbi.dirty_blocks_in_region(addr):
            # Clear eagerly so overlapping evictions cannot double-write.
            self.dbi.mark_clean(other)
            self.stats.counter("awb_writebacks").increment()
            self.port.request(
                partial(self._writeback_probe, other, "awb"),
                PortPriority.BACKGROUND,
            )

    def _writeback_probe(self, addr: int, cause: str) -> None:
        """Background tag lookup that reads a dirty block's data out."""
        self._count_tag_lookup(-1)
        self._send_memory_write(addr, cause)

    # ------------------------------------------- DBI evictions (Sec 2.2.4)

    def _handle_dbi_eviction(self, eviction: DbiEviction) -> None:
        """An entry was displaced: write back all blocks it marked dirty.

        The blocks stay cached and are now clean — the DBI already dropped
        their bits. Each writeback needs one (background) tag lookup to read
        the data; this is the "free" DRAM-aware writeback of plain DBI.
        """
        self.stats.counter("dbi_evictions").increment()
        self.stats.counter("dbi_eviction_writebacks").increment(
            len(eviction.dirty_blocks)
        )
        for block in eviction.dirty_blocks:
            self.port.request(
                partial(self._writeback_probe, block, "dbi-displace"),
                PortPriority.BACKGROUND,
            )

    # ------------------------------------------------- invariant inspection

    def check_invariants(self) -> None:
        assert self.llc.dirty_count == 0, "in-tag dirty bit set under DBI"
        limit = self.dbi.config.tracked_blocks
        assert self.dbi.tracked_dirty_blocks <= limit, "DBI over capacity"
        for block in self.dbi.all_dirty_blocks():
            assert self.llc.contains(block), (
                f"DBI marks block {block} dirty but it is not cached"
            )
