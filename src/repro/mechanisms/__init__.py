"""LLC mechanisms evaluated in the paper (Table 2).

Each mechanism plugs into the shared last-level cache and decides how dirty
blocks are tracked and written back, and whether read lookups can be
bypassed:

=================  =====================================================
``baseline``       LRU cache, dirty bits in the tag store
``tadip``          Baseline + thread-aware DIP insertion [18, 42]
``dawb``           DRAM-aware writeback [27]: probe a whole DRAM row on
                   every dirty eviction (many wasted tag lookups)
``vwq``            Virtual Write Queue [51]: Set State Vector filters
                   probes down to sets with dirty LRU-half blocks
``skipcache``      Skip Cache [44]: write-through LLC + miss-predictor
                   lookup bypass
``dbi``            Dirty-Block Index, no optimizations: DBI evictions
                   already batch row writebacks
``dbi+awb``        DBI + aggressive writeback (Section 3.1)
``dbi+clb``        DBI + cache lookup bypass (Section 3.2)
``dbi+awb+clb``    the paper's full mechanism
=================  =====================================================
"""

from repro.mechanisms.base import LlcMechanism
from repro.mechanisms.conventional import BaselineMechanism, TaDipMechanism
from repro.mechanisms.dawb import DawbMechanism
from repro.mechanisms.dbi_mech import DbiMechanism
from repro.mechanisms.misspredictor import MissPredictor
from repro.mechanisms.registry import MECHANISM_NAMES, make_mechanism
from repro.mechanisms.skipcache import SkipCacheMechanism
from repro.mechanisms.vwq import VwqMechanism

__all__ = [
    "LlcMechanism",
    "BaselineMechanism",
    "TaDipMechanism",
    "DawbMechanism",
    "VwqMechanism",
    "SkipCacheMechanism",
    "DbiMechanism",
    "MissPredictor",
    "MECHANISM_NAMES",
    "make_mechanism",
]
