"""Mechanism factory.

Builds any Table 2 mechanism from its name plus the shared LLC substrate
(cache, tag port, memory controller, address mapper). Used by the system
builder and by the experiment harness, so every figure/table script selects
mechanisms by the same names the paper uses.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro.cache.cache import Cache
from repro.cache.port import TagPort
from repro.core.config import DbiConfig
from repro.core.dbi import DirtyBlockIndex
from repro.dram.address import AddressMapper
from repro.dram.controller import MemoryController
from repro.mechanisms.base import LlcMechanism
from repro.mechanisms.conventional import BaselineMechanism, TaDipMechanism
from repro.mechanisms.dawb import DawbMechanism
from repro.mechanisms.dbi_mech import DbiMechanism
from repro.mechanisms.misspredictor import MissPredictor
from repro.mechanisms.skipcache import SkipCacheMechanism
from repro.mechanisms.vwq import VwqMechanism
from repro.utils.events import EventQueue
from repro.utils.rng import DeterministicRng

#: Every mechanism evaluated in the paper, by its Table 2 label.
MECHANISM_NAMES = (
    "baseline",
    "tadip",
    "dawb",
    "vwq",
    "skipcache",
    "dbi",
    "dbi+awb",
    "dbi+clb",
    "dbi+awb+clb",
)

#: Mechanisms that need the LLC to use TA-DIP insertion (all but Baseline).
TADIP_MECHANISMS = frozenset(MECHANISM_NAMES) - {"baseline"}


def llc_replacement_for(mechanism_name: str, override: Optional[str] = None) -> str:
    """The cache replacement policy a mechanism expects (Table 2)."""
    if override is not None:
        return override
    return "lru" if mechanism_name == "baseline" else "tadip"


def make_mechanism(
    name: str,
    queue: EventQueue,
    llc: Cache,
    port: TagPort,
    memory: MemoryController,
    mapper: AddressMapper,
    num_cores: int = 1,
    dbi_config: Optional[DbiConfig] = None,
    dbi_alpha: Fraction = Fraction(1, 4),
    dbi_granularity: int = 64,
    dbi_replacement: str = "lrw",
    predictor: Optional[MissPredictor] = None,
    predictor_epoch_cycles: int = 250_000,
    predictor_threshold: float = 0.95,
    rng: Optional[DeterministicRng] = None,
) -> LlcMechanism:
    """Construct the named mechanism over a shared LLC substrate.

    Args:
        name: one of :data:`MECHANISM_NAMES`.
        dbi_config: full DBI configuration; if omitted, one is derived from
            ``dbi_alpha`` / ``dbi_granularity`` / ``dbi_replacement`` and the
            cache's size with the paper's defaults (Table 1).
        predictor: shared miss predictor; built on demand for mechanisms
            that bypass lookups (skipcache, dbi+clb variants).
    """
    key = name.lower()
    if key not in MECHANISM_NAMES:
        raise ValueError(f"unknown mechanism {name!r}; choose from {MECHANISM_NAMES}")

    common = dict(queue=queue, llc=llc, port=port, memory=memory, mapper=mapper)

    if key == "baseline":
        return BaselineMechanism(**common)
    if key == "tadip":
        return TaDipMechanism(**common)
    if key == "dawb":
        return DawbMechanism(**common)
    if key == "vwq":
        return VwqMechanism(**common)

    needs_predictor = key in ("skipcache", "dbi+clb", "dbi+awb+clb")
    if needs_predictor and predictor is None:
        predictor = MissPredictor(
            num_cores=num_cores,
            num_sets=llc.config.num_sets,
            threshold=predictor_threshold,
            epoch_cycles=predictor_epoch_cycles,
        )

    if key == "skipcache":
        return SkipCacheMechanism(predictor=predictor, **common)

    if dbi_config is None:
        associativity = min(16, max(1, llc.config.num_blocks * dbi_alpha
                                    // dbi_granularity))
        dbi_config = DbiConfig(
            cache_blocks=llc.config.num_blocks,
            alpha=dbi_alpha,
            granularity=dbi_granularity,
            associativity=int(associativity),
            replacement=dbi_replacement,
        )
    dbi = DirtyBlockIndex(dbi_config, rng=rng)
    return DbiMechanism(
        dbi=dbi,
        enable_awb="awb" in key,
        enable_clb="clb" in key,
        predictor=predictor,
        **common,
    )
