"""Skip Cache [44].

Bypasses LLC tag lookups for accesses of applications whose miss rate
exceeded a threshold in the previous epoch. Because a bypassed access must
never skip a block that is dirty in the cache, Skip Cache keeps the LLC
**write-through**: writebacks from the L2 update the LLC *and* go straight
to memory, so no LLC block is ever dirty and bypassing is always safe.

The price is write bandwidth: every L2 writeback becomes a memory write,
which is why the paper finds Skip Cache performs comparably to or worse
than TA-DIP (Section 6, "we do not present detailed results for Skip
Cache...") — a behaviour this implementation reproduces and that the DBI's
CLB optimization avoids.
"""

from __future__ import annotations

from typing import Callable

from repro.mechanisms.base import LlcMechanism
from repro.mechanisms.misspredictor import MissPredictor


class SkipCacheMechanism(LlcMechanism):
    """Write-through TA-DIP cache + miss-predictor lookup bypass."""

    name = "skipcache"
    write_through = True

    def __init__(self, *args, predictor: MissPredictor, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.predictor = predictor

    def telemetry_gauges(self):
        gauges = super().telemetry_gauges()
        gauges["bypassing_cores"] = lambda: self.predictor.bypassing_cores
        return gauges

    # ------------------------------------------------------------ read path

    def read(self, core_id: int, addr: int, on_data: Callable[[int], None]) -> None:
        self.stats.counter("read_requests").increment()
        set_idx = self.llc.set_index(addr)
        if self.predictor.predicts_miss(core_id, set_idx, self.queue.now):
            # Write-through guarantees memory is never stale: bypass safely.
            self.stats.counter("bypassed_lookups").increment()
            self._fetch_without_fill(core_id, addr, on_data)
            return
        self._lookup_for_read(core_id, addr, on_data)

    def _train_predictor(self, core_id: int, addr: int, hit: bool) -> None:
        self.predictor.record_outcome(
            core_id, self.llc.set_index(addr), hit, self.queue.now
        )

    # ------------------------------------------------------- writeback path

    def _mark_dirty(self, addr: int) -> None:
        """Write-through: the block stays clean; the data goes to memory."""
        self._send_memory_write(addr, "writethrough")

    def _insert_dirty(self, addr: int, core_id: int):
        evicted = self.llc.insert(addr, core_id=core_id, dirty=False)
        self._send_memory_write(addr, "writethrough")
        return evicted

    def check_invariants(self) -> None:
        """Write-through LLC must never hold a dirty block."""
        assert self.llc.dirty_count == 0, "write-through LLC has dirty blocks"
