"""DRAM-Aware Writeback (DAWB) [27].

When a dirty block is evicted, DAWB proactively writes back every *other*
dirty block of the same DRAM row so the memory controller's write buffer
fills with row hits. Without a DBI, finding those blocks means probing the
tag store for **every** block of the row — most probes find clean or absent
blocks, which is exactly the 1.95× tag-lookup blowup of Figure 6c.
"""

from __future__ import annotations

from functools import partial

from repro.cache.port import PortPriority
from repro.mechanisms.base import LlcMechanism


class DawbMechanism(LlcMechanism):
    """TA-DIP cache + indiscriminate row probing on dirty evictions."""

    name = "dawb"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Rows with a probe round already queued: a second dirty eviction
        # from the same row adds nothing until the first round completes
        # (the writeback-queue coalescing of [27]).
        self._rows_in_flight = set()

    def telemetry_gauges(self):
        gauges = super().telemetry_gauges()
        gauges["probe_rows_in_flight"] = lambda: len(self._rows_in_flight)
        return gauges

    def _after_dirty_eviction(self, addr: int) -> None:
        row = self.mapper.global_row_id(addr)
        if row in self._rows_in_flight:
            self.stats.counter("coalesced_rounds").increment()
            return
        self._rows_in_flight.add(row)
        span = [other for other in self.mapper.row_span(addr) if other != addr]
        last = span[-1]
        for other in span:
            self.port.request(
                partial(self._probe_for_writeback, other, row, other == last),
                PortPriority.BACKGROUND,
            )

    def _probe_for_writeback(self, addr: int, row: int, last_of_round: bool) -> None:
        """One background tag lookup; write the block back iff dirty."""
        self._count_tag_lookup(-1)
        self.stats.counter("row_probes").increment()
        block = self.llc.probe(addr)
        if block is not None and block.dirty:
            self.llc.mark_clean(addr)
            self.stats.counter("proactive_writebacks").increment()
            self._send_memory_write(addr, "dawb-probe")
        else:
            self.stats.counter("wasted_probes").increment()
        if last_of_round:
            self._rows_in_flight.discard(row)
