"""Baseline and TA-DIP mechanisms.

Both use the conventional in-tag dirty-bit organization; they differ only in
the LLC insertion policy, which is selected by the cache's replacement policy
(``lru`` for Baseline, ``tadip`` for TA-DIP). These classes exist so every
row of paper Table 2 has a named mechanism with its own defaults.
"""

from __future__ import annotations

from repro.mechanisms.base import LlcMechanism


class BaselineMechanism(LlcMechanism):
    """Paper's Baseline: LRU cache, dirty bits in the tag store.

    Telemetry note: the inherited ``llc_dirty_blocks`` gauge *is* this
    mechanism's whole dirty-tracking state — in-tag bits have no separate
    structure to sample, unlike the DBI's occupancy gauges.
    """

    name = "baseline"


class TaDipMechanism(LlcMechanism):
    """Thread-aware DIP [18, 42]; identical datapath to Baseline."""

    name = "tadip"
