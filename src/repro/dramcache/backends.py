"""Dirty-tracking backends for the DRAM-cache level.

Both backends answer the same three questions the level asks — "this block
was written", "this block is being evicted; what must go off-chip?", and
"which blocks are dirty right now?" — but keep the dirty state in different
places:

* :class:`TagDirtyBackend` — conventional per-line dirty bits in the tag
  array. Writebacks leave the level one line at a time, in eviction order,
  which scatters them across off-chip DRAM rows.
* :class:`DbiDirtyBackend` — a DBI whose granularity matches the *off-chip*
  row, plus aggressive writeback: evicting one dirty block drains every
  other dirty block of its row that is still cached, so the off-chip write
  stream arrives row-batched (TicToc/Banshee's bandwidth argument; paper
  Section 3.1 ported to the stacked level). The tag array stays clean — the
  DBI is the sole dirtiness authority.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.cache.cache import Cache, EvictedBlock
from repro.core.dbi import DirtyBlockIndex
from repro.utils.rng import DeterministicRng


class TagDirtyBackend:
    """Per-line dirty bits in the level's tag array."""

    name = "tag"
    #: The tag array carries the dirty bits (level installs with dirty=True).
    tag_dirty = True

    def __init__(self, tags: Cache) -> None:
        self.tags = tags
        self.dbi: Optional[DirtyBlockIndex] = None

    def mark_dirty(self, addr: int) -> List[int]:
        """Record a write to a present block; never forces writebacks."""
        self.tags.mark_dirty(addr)
        return []

    def on_evict(self, victim: EvictedBlock) -> Tuple[List[int], List[int]]:
        """(demand writebacks, row drains) for one tag-array eviction."""
        if victim.dirty:
            return [victim.addr], []
        return [], []

    def is_dirty(self, addr: int) -> bool:
        return self.tags.is_dirty(addr)

    peek_dirty = is_dirty

    @property
    def dirty_count(self) -> int:
        return self.tags.dirty_count

    def dirty_blocks(self) -> Set[int]:
        return {
            block.addr for block in self.tags.iter_valid_blocks() if block.dirty
        }


class DbiDirtyBackend:
    """Row-granularity DBI + aggressive writeback of whole dirty rows."""

    name = "dbi"
    #: Tag-array dirty bits stay clear; the DBI owns all dirty state.
    tag_dirty = False

    def __init__(
        self, tags: Cache, dbi: DirtyBlockIndex, rng: Optional[DeterministicRng]
    ) -> None:
        self.tags = tags
        self.dbi = dbi

    def mark_dirty(self, addr: int) -> List[int]:
        """Record a write; a displaced DBI entry forces its blocks off-chip.

        The forced blocks stay cached (and clean); the caller must write
        their data off-chip now — DBI capacity, not data-array capacity, is
        what bounds dirtiness under this backend (paper Section 2.2.4).
        """
        eviction = self.dbi.mark_dirty(addr)
        if eviction is None:
            return []
        return list(eviction.dirty_blocks)

    def on_evict(self, victim: EvictedBlock) -> Tuple[List[int], List[int]]:
        """(demand writebacks, AWB row drains) for one tag-array eviction.

        If the victim is dirty, every *other* dirty block of its off-chip
        row still present in the level is proactively cleaned and written
        back alongside it — the whole row leaves in one off-chip batch.
        """
        if not self.dbi.is_dirty(victim.addr):
            return [], []
        self.dbi.mark_clean(victim.addr)
        drains = []
        for addr in self.dbi.dirty_blocks_in_region(victim.addr):
            # Invariant: the DBI only tracks cached blocks, so every
            # row-mate is still in the tag array.
            self.dbi.mark_clean(addr)
            drains.append(addr)
        return [victim.addr], drains

    def is_dirty(self, addr: int) -> bool:
        return self.dbi.is_dirty(addr)

    def peek_dirty(self, addr: int) -> bool:
        return self.dbi.peek_dirty(addr)

    @property
    def dirty_count(self) -> int:
        return self.dbi.live_dirty_blocks

    def dirty_blocks(self) -> Set[int]:
        return set(self.dbi.all_dirty_blocks())


def make_backend(config, tags: Cache, rng: Optional[DeterministicRng]):
    """Instantiate the configured backend for a level's tag array."""
    if config.dirty_backend == "tag":
        return TagDirtyBackend(tags)
    dbi = DirtyBlockIndex(
        config.dbi_config(), rng=rng, stat_name=f"{config.name}_dbi"
    )
    return DbiDirtyBackend(tags, dbi, rng)
