"""Die-stacked DRAM-cache configuration.

Geometry of the tag array, choice of dirty-tracking backend, and the timing
of the stacked data array. The stacked array reuses :class:`DramConfig`
verbatim — it *is* DRAM, just closer: roughly half the latency, twice the
banks, and a much wider data path than the off-chip channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from repro.cache.config import CacheConfig
from repro.core.config import DbiConfig
from repro.dram.config import DramConfig
from repro.utils.validation import check_positive, check_power_of_two

#: Dirty-tracking backends the level supports.
DIRTY_BACKENDS = ("tag", "dbi")


def stacked_dram_config(
    row_buffer_blocks: int = 32, write_buffer_entries: int = 32
) -> DramConfig:
    """Timing of one die-stacked channel (HBM-like, in CPU cycles).

    Relative to the off-chip defaults: ~half the bank latencies (shorter
    wires, smaller 2 KB rows), twice the banks, and a 4x-wider bus so a
    block transfer occupies the data bus for 5 cycles instead of 20.
    """
    return DramConfig(
        num_banks=16,
        row_buffer_blocks=row_buffer_blocks,
        t_rcd=18,
        t_rp=18,
        t_cas=18,
        t_burst=5,
        t_wr=20,
        t_turnaround=7,
        t_rrd=10,
        t_faw=50,
        write_buffer_entries=write_buffer_entries,
        bus_queue_latency=4,
    )


@dataclass(frozen=True)
class DramCacheConfig:
    """Parameters of the die-stacked DRAM-cache level.

    Attributes:
        name: stat-group prefix ("dramcache").
        num_blocks: data-array capacity in cache blocks.
        associativity: tag-array set associativity.
        tag_latency: SRAM tag-lookup latency in cycles (paid by every read
            and writeback before the stacked data array is touched).
        dirty_backend: "tag" for conventional per-line dirty bits, "dbi" for
            a row-granularity DBI feeding aggressive whole-row writeback.
        dbi_alpha: DBI size as a fraction of ``num_blocks`` (dbi backend).
        dbi_granularity: blocks per DBI entry; set to the *off-chip* DRAM
            row size so an AWB drain is one off-chip row batch.
        dbi_associativity: DBI set associativity.
        dbi_replacement: DBI replacement policy (see ``core.replacement``).
        stacked: stacked-array timing; None resolves to
            :func:`stacked_dram_config` defaults.
    """

    name: str = "dramcache"
    num_blocks: int = 1 << 17
    associativity: int = 8
    tag_latency: int = 4
    dirty_backend: str = "dbi"
    dbi_alpha: Fraction = Fraction(1, 2)
    dbi_granularity: int = 128
    dbi_associativity: int = 16
    dbi_replacement: str = "lrw"
    stacked: Optional[DramConfig] = None

    def __post_init__(self) -> None:
        check_power_of_two("num_blocks", self.num_blocks)
        check_power_of_two("associativity", self.associativity)
        check_positive("tag_latency", self.tag_latency)
        if self.dirty_backend not in DIRTY_BACKENDS:
            raise ValueError(
                f"dirty_backend must be one of {DIRTY_BACKENDS}, "
                f"got {self.dirty_backend!r}"
            )
        if not isinstance(self.dbi_alpha, Fraction):
            object.__setattr__(
                self,
                "dbi_alpha",
                Fraction(self.dbi_alpha).limit_denominator(64),
            )
        if self.stacked is None:
            object.__setattr__(self, "stacked", stacked_dram_config())
        # Constructing the geometry validates it (DbiConfig raises on a
        # degenerate entry count) even for configs built but never run.
        if self.dirty_backend == "dbi":
            self.dbi_config()

    def tag_config(self) -> CacheConfig:
        """The functional tag array (an SRAM ``Cache`` without a data side)."""
        return CacheConfig(
            name=f"{self.name}_tags",
            num_blocks=self.num_blocks,
            associativity=self.associativity,
            tag_latency=self.tag_latency,
            data_latency=1,
        )

    def dbi_config(self) -> DbiConfig:
        """Geometry of the level's DBI (dbi backend only)."""
        return DbiConfig(
            cache_blocks=self.num_blocks,
            alpha=self.dbi_alpha,
            granularity=self.dbi_granularity,
            associativity=self.dbi_associativity,
            latency=self.tag_latency,
            replacement=self.dbi_replacement,
        )
