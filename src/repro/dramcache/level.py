"""The timed DRAM-cache level.

Sits between the LLC mechanism and the off-chip :class:`MemoryController`,
speaking the controller's interface upward (``enqueue_read`` /
``enqueue_write``) and consuming it downward twice — once for the stacked
data array, once for off-chip DRAM — so the level slots into a system
without the hierarchy or the mechanisms changing.

Datapath, all on the calendar event queue:

* **read**: tag lookup after ``tag_latency``. Hit → stacked-array read, data
  returned when the stacked bank delivers. Miss → off-chip read; the fill
  installs the tag (evicting a victim through the dirty backend) and writes
  the block into the stacked array while the waiting requests are answered
  directly from the off-chip data (fill bypass). Concurrent misses to one
  block merge onto a single off-chip fetch.
* **writeback** (from the LLC): tag lookup, then either a dirty-hit update
  or a write-allocate install; either way the block's data is written into
  the stacked array.
* **eviction**: the dirty backend decides what must go off-chip — the
  victim alone (tag backend) or the victim plus every dirty row-mate still
  cached (DBI backend, aggressive writeback). Dirty data is read out of the
  stacked array and written off-chip, retrying under write-buffer
  back-pressure exactly like the LLC mechanisms do.

Everything scheduled is a bound method or a ``partial`` of one, so a system
containing a level snapshots and restores byte-identically.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Deque, Dict, List, Optional

from repro.cache.cache import Cache
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest
from repro.dramcache.backends import make_backend
from repro.dramcache.config import DramCacheConfig
from repro.utils.events import EventQueue
from repro.utils.rng import DeterministicRng
from repro.utils.stats import StatGroup

#: Cycles between attempts to re-enqueue a write a controller rejected
#: (same cadence as the LLC mechanisms' writeback retry).
WRITE_RETRY_INTERVAL = 50


def _complete_outer(outer: MemoryRequest, inner: MemoryRequest) -> None:
    """Picklable stacked-read completion that answers the outer request."""
    outer.complete_time = inner.complete_time
    if outer.on_complete is not None:
        outer.fire_completion()


class DramCacheLevel:
    """Set-associative DRAM cache with a pluggable dirty-tracking backend."""

    #: Optional CheckEngine tap on off-chip writebacks (full checked mode).
    checker = None

    def __init__(
        self,
        queue: EventQueue,
        config: DramCacheConfig,
        offchip: MemoryController,
        rng: Optional[DeterministicRng] = None,
    ) -> None:
        self.queue = queue
        self.config = config
        self.offchip = offchip
        #: Same block→bank/row mapping as off-chip memory; exposed so the
        #: level is interface-compatible with ``MemoryController``.
        self.mapper = offchip.mapper
        self.tags = Cache(config.tag_config(), rng=rng)
        self.stacked = MemoryController(queue, config.stacked, name="stacked")
        self.backend = make_backend(config, self.tags, rng)
        self.dbi = self.backend.dbi
        self.stats = StatGroup(config.name)
        # addr -> outer requests waiting on one off-chip fetch.
        self._pending_reads: Dict[int, List[MemoryRequest]] = {}
        self._offchip_overflow: Deque[int] = deque()
        self._offchip_retry_pending = False
        self._stacked_overflow: Deque[int] = deque()
        self._stacked_retry_pending = False
        # Hot-path counters, bound lazily (see Cache for rationale).
        self._c_reads = None
        self._c_read_hits = None
        self._c_read_misses = None
        self._c_writes = None
        self._c_write_hits = None
        self._c_write_fills = None
        self._c_offchip_reads = None
        self._c_offchip_writes = None

    # ------------------------------------------------------------ read path

    def enqueue_read(self, request: MemoryRequest) -> None:
        """Demand read from the LLC mechanism (its memory-side interface)."""
        request.arrival_time = self.queue.now
        counter = self._c_reads
        if counter is None:
            counter = self._c_reads = self.stats.counter("reads")
        counter.value += 1
        self.queue.schedule_after(
            self.config.tag_latency, partial(self._read_tags_done, request)
        )

    def _read_tags_done(self, request: MemoryRequest) -> None:
        addr = request.block_addr
        if self.tags.lookup(addr, request.core_id):
            counter = self._c_read_hits
            if counter is None:
                counter = self._c_read_hits = self.stats.counter("read_hits")
            counter.value += 1
            self.stacked.enqueue_read(
                MemoryRequest(
                    block_addr=addr,
                    is_write=False,
                    core_id=request.core_id,
                    on_complete=partial(_complete_outer, request),
                )
            )
            return
        counter = self._c_read_misses
        if counter is None:
            counter = self._c_read_misses = self.stats.counter("read_misses")
        counter.value += 1
        waiters = self._pending_reads.get(addr)
        if waiters is not None:
            waiters.append(request)
            self.stats.counter("read_merges").increment()
            return
        self._pending_reads[addr] = [request]
        counter = self._c_offchip_reads
        if counter is None:
            counter = self._c_offchip_reads = self.stats.counter("offchip_reads")
        counter.value += 1
        self.offchip.enqueue_read(
            MemoryRequest(
                block_addr=addr,
                is_write=False,
                core_id=request.core_id,
                on_complete=self._fill_arrived,
            )
        )

    def _fill_arrived(self, fill: MemoryRequest) -> None:
        addr = fill.block_addr
        waiters = self._pending_reads.pop(addr, [])
        if self.tags.contains(addr):
            # A writeback installed (newer) data while the fetch was in
            # flight; the off-chip copy is stale — do not overwrite it.
            self.stats.counter("fills_superseded").increment()
        else:
            self.stats.counter("fills").increment()
            self._install(addr, fill.core_id, dirty=False)
            self._send_stacked_write(addr)
        for outer in waiters:
            outer.complete_time = self.queue.now
            if outer.on_complete is not None:
                outer.fire_completion()

    # ------------------------------------------------------- writeback path

    def can_accept_write(self) -> bool:
        """Back-pressure is absorbed internally; the level always accepts."""
        return True

    def enqueue_write(self, request: MemoryRequest) -> bool:
        """Writeback from the LLC mechanism; always accepted."""
        request.arrival_time = self.queue.now
        counter = self._c_writes
        if counter is None:
            counter = self._c_writes = self.stats.counter("writes")
        counter.value += 1
        self.queue.schedule_after(
            self.config.tag_latency,
            partial(self._write_tags_done, request.block_addr, request.core_id),
        )
        return True

    def _write_tags_done(self, addr: int, core_id: int) -> None:
        if self.tags.contains(addr):
            counter = self._c_write_hits
            if counter is None:
                counter = self._c_write_hits = self.stats.counter("write_hits")
            counter.value += 1
            self.tags.touch(addr, core_id)
            if self.backend.tag_dirty:
                self.backend.mark_dirty(addr)
            else:
                self._forced_writebacks(self.backend.mark_dirty(addr))
        else:
            counter = self._c_write_fills
            if counter is None:
                counter = self._c_write_fills = self.stats.counter("write_fills")
            counter.value += 1
            self._install(addr, core_id, dirty=True)
        self._send_stacked_write(addr)

    # ------------------------------------------------------ install / evict

    def _install(self, addr: int, core_id: int, dirty: bool) -> None:
        """Install ``addr``, routing the victim through the dirty backend."""
        victim = self.tags.insert(
            addr, core_id=core_id, dirty=dirty and self.backend.tag_dirty
        )
        if victim is not None:
            demand, drains = self.backend.on_evict(victim)
            if demand:
                self.stats.counter("dirty_evictions").increment()
                for block in demand:
                    self._writeback_block(block, "evict")
            for block in drains:
                self.stats.counter("awb_drains").increment()
                self._writeback_block(block, "awb-drain")
        if dirty and not self.backend.tag_dirty:
            # Marking after the victim is resolved keeps the DBI's
            # cached-blocks-only invariant during the entry displacement.
            self._forced_writebacks(self.backend.mark_dirty(addr))

    def _forced_writebacks(self, blocks: List[int]) -> None:
        """A displaced DBI entry's blocks: cleaned in place, data off-chip."""
        for block in blocks:
            self.stats.counter("dbi_forced_writebacks").increment()
            self._writeback_block(block, "dbi-displace")

    def _writeback_block(self, addr: int, cause: str = "evict") -> None:
        """Move one dirty block's data from the stacked array to off-chip."""
        # The data must be read out of the stacked array first; the read is
        # fire-and-forget (it consumes stacked bandwidth, nothing waits).
        self.stats.counter("stacked_victim_reads").increment()
        self.stacked.enqueue_read(MemoryRequest(block_addr=addr, is_write=False))
        self._send_offchip_write(addr, cause)

    # ------------------------------------------------------- memory writes

    def _send_offchip_write(self, addr: int, cause: str = "evict") -> None:
        counter = self._c_offchip_writes
        if counter is None:
            counter = self._c_offchip_writes = self.stats.counter(
                "offchip_writes"
            )
        counter.value += 1
        if self.checker is not None:
            self.checker.on_memory_writeback(addr, cause)
        accepted = self.offchip.enqueue_write(
            MemoryRequest(block_addr=addr, is_write=True)
        )
        if not accepted:
            self._offchip_overflow.append(addr)
            self._schedule_offchip_retry()

    def _schedule_offchip_retry(self) -> None:
        if self._offchip_retry_pending:
            return
        self._offchip_retry_pending = True
        self.queue.schedule_after(WRITE_RETRY_INTERVAL, self._retry_offchip)

    def _retry_offchip(self) -> None:
        self._offchip_retry_pending = False
        while self._offchip_overflow:
            addr = self._offchip_overflow[0]
            if self.offchip.enqueue_write(
                MemoryRequest(block_addr=addr, is_write=True)
            ):
                self._offchip_overflow.popleft()
            else:
                self._schedule_offchip_retry()
                return

    def _send_stacked_write(self, addr: int) -> None:
        accepted = self.stacked.enqueue_write(
            MemoryRequest(block_addr=addr, is_write=True)
        )
        if not accepted:
            self._stacked_overflow.append(addr)
            self._schedule_stacked_retry()

    def _schedule_stacked_retry(self) -> None:
        if self._stacked_retry_pending:
            return
        self._stacked_retry_pending = True
        self.queue.schedule_after(WRITE_RETRY_INTERVAL, self._retry_stacked)

    def _retry_stacked(self) -> None:
        self._stacked_retry_pending = False
        while self._stacked_overflow:
            addr = self._stacked_overflow[0]
            if self.stacked.enqueue_write(
                MemoryRequest(block_addr=addr, is_write=True)
            ):
                self._stacked_overflow.popleft()
            else:
                self._schedule_stacked_retry()
                return

    # ----------------------------------------------------------- inspection

    def is_dirty(self, addr: int) -> bool:
        """The level's answer to "who has the current data for ``addr``?"."""
        return self.backend.is_dirty(addr)

    def peek_dirty(self, addr: int) -> bool:
        """Stat-free :meth:`is_dirty` for observational tooling."""
        return self.backend.peek_dirty(addr)

    def dirty_blocks(self):
        """Set of dirty block addresses (invariant checks, fuzzing)."""
        return self.backend.dirty_blocks()

    @property
    def dirty_count(self) -> int:
        """Dirty blocks right now (telemetry gauge; stat-free)."""
        return self.backend.dirty_count

    @property
    def occupancy(self) -> int:
        return self.tags.occupancy

    def is_idle(self) -> bool:
        """No fetches in flight, no writes waiting on back-pressure."""
        return (
            not self._pending_reads
            and not self._offchip_overflow
            and not self._stacked_overflow
        )

    def stat_groups(self):
        """Every stat group the level owns (collected by ``System``)."""
        groups = [self.stats, self.tags.stats, self.stacked.stats]
        if self.dbi is not None:
            groups.append(self.dbi.stats)
        return groups

    def check_invariants(self) -> None:
        """Raise on internal inconsistency (used by invariant sweeps)."""
        if self.backend.tag_dirty:
            assert self.dbi is None
            return
        assert self.tags.dirty_count == 0, (
            "dbi backend: tag array must stay clean"
        )
        for addr in self.backend.dirty_blocks():
            assert self.tags.contains(addr), (
                f"DBI tracks block {addr:#x} that is not in the level"
            )
