"""Timed die-stacked DRAM-cache level (paper Section 7 frontier).

A giant in-package DRAM cache between the LLC and off-chip memory. Tags are
SRAM (fixed latency); data lives in a stacked-DRAM bank model reusing the
off-chip timing machinery with faster parameters. Dirtiness is tracked either
conventionally (per-line tag dirty bits) or by a DBI with row-granularity
vectors feeding aggressive writeback of whole dirty rows — the TicToc/Banshee
observation that coarse dirty tracking is what makes DRAM caching
bandwidth-efficient.
"""

from repro.dramcache.config import DramCacheConfig, stacked_dram_config
from repro.dramcache.level import DramCacheLevel

__all__ = ["DramCacheConfig", "DramCacheLevel", "stacked_dram_config"]
