"""Self-balancing DRAM-cache dispatch using a DBI (paper Section 7).

Background (Sim et al. [49], "A mostly-clean DRAM cache for effective hit
speculation and self-balancing dispatch"): a die-stacked DRAM cache is fast
but bandwidth-limited; off-chip DRAM is slower but otherwise idle. A read
that *might* hit a **dirty** line in the DRAM cache must be served by the
cache; a read of a **clean-or-absent** line can be *dispatched to whichever
memory is less loaded* — the stale-read risk vanishes because off-chip
memory holds identical data for clean lines. The original mechanism needed
a counting Bloom filter (to find heavily-written pages) plus a small
dirty-page cache. The paper observes a DBI provides both functions
directly: it is the authority on dirtiness, and its LRW stack *is* a
recency-ordered list of written regions.

This module models that system functionally: a DRAM cache with per-queue
load tracking, a DBI shared with it, and a dispatcher that balances clean
reads across the two memories.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.core.dbi import DirtyBlockIndex
from repro.utils.stats import StatGroup
from repro.utils.validation import check_non_negative, check_positive


class DispatchDecision(enum.Enum):
    """Where a read was sent."""

    DRAM_CACHE = "dram_cache"  # forced (dirty) or chosen (less loaded)
    OFF_CHIP = "off_chip"


@dataclass
class DramCacheModel:
    """A minimal die-stacked DRAM cache: presence set + dirty via DBI.

    The data path is abstracted to queue-occupancy counters; what matters
    for the dispatch study is *where* requests go, not their cycle timing.

    Replacement and dirty semantics deliberately mirror the *timed* level
    (:class:`repro.dramcache.level.DramCacheLevel` with its ``dbi``
    backend): LRU eviction with promotion on every touch, the DBI as the
    sole dirtiness authority, and aggressive writeback — evicting one dirty
    block drains every other dirty block of its region. The one documented
    divergence is associativity: the presence set is fully associative,
    so the model agrees exactly with a timed level configured with a
    single set (see ``tests/dramcache/test_dispatch_agreement.py``).
    """

    dbi: DirtyBlockIndex
    capacity_blocks: int = 1 << 16

    def __post_init__(self) -> None:
        check_positive("capacity_blocks", self.capacity_blocks)
        # addr -> None, in recency order: front is LRU, back is MRU.
        self._present: "OrderedDict[int, None]" = OrderedDict()
        self.stats = StatGroup("dram_cache")

    def contains(self, block_addr: int) -> bool:
        return block_addr in self._present

    def touch(self, block_addr: int) -> None:
        """Promote a present block to MRU (a read hit in the data array)."""
        if block_addr in self._present:
            self._present.move_to_end(block_addr)

    def install(self, block_addr: int, dirty: bool = False) -> Optional[int]:
        """Install a block; returns an evicted block address if one fell out.

        Matches the timed level's install order: the victim is resolved
        *before* the new block is marked dirty, so a DBI-entry displacement
        triggered by the marking never sees the half-installed block.
        """
        if block_addr in self._present:
            self._present.move_to_end(block_addr)
            if dirty:
                self._mark_dirty(block_addr)
            return None
        victim = None
        if len(self._present) >= self.capacity_blocks:
            victim = next(iter(self._present))  # least recently used
            del self._present[victim]
            self._evict(victim)
        self._present[block_addr] = None
        if dirty:
            self._mark_dirty(block_addr)
        return victim

    def write(self, block_addr: int) -> None:
        """A store to the DRAM cache: allocate + mark dirty."""
        self.install(block_addr, dirty=True)
        self.stats.counter("writes").increment()

    def _mark_dirty(self, block_addr: int) -> None:
        eviction = self.dbi.mark_dirty(block_addr)
        if eviction is None:
            return
        # Displaced DBI entry: its blocks become clean (written downstream).
        self.stats.counter("dbi_forced_writebacks").increment(
            len(eviction.dirty_blocks)
        )

    def _evict(self, victim: int) -> None:
        """Aggressive writeback on dirty eviction, like the timed level."""
        if not self.dbi.is_dirty(victim):
            return
        self.dbi.mark_clean(victim)
        self.stats.counter("dirty_evictions").increment()
        for addr in self.dbi.dirty_blocks_in_region(victim):
            # Region-mates stay present but are cleaned alongside the
            # victim — their data leaves in the same off-chip row batch.
            self.dbi.mark_clean(addr)
            self.stats.counter("awb_drains").increment()


class DramCacheDispatcher:
    """Route reads between the DRAM cache and off-chip memory.

    The decision rule of [49], with the DBI replacing its dedicated
    structures:

    1. If the block *might be dirty* in the DRAM cache (DBI bit set), the
       read **must** go to the DRAM cache.
    2. Otherwise the data is identical in both memories (clean or absent
       with clean fill path), so send it to the shorter queue.
    """

    def __init__(
        self,
        cache: DramCacheModel,
        queue_penalty_threshold: int = 4,
    ) -> None:
        check_non_negative("queue_penalty_threshold", queue_penalty_threshold)
        self.cache = cache
        self.threshold = queue_penalty_threshold
        self.cache_queue = 0
        self.off_chip_queue = 0
        self.stats = StatGroup("dispatch")

    def dispatch_read(self, block_addr: int) -> DispatchDecision:
        """Decide where one read goes and account queue occupancy."""
        self.stats.counter("reads").increment()
        if self.cache.dbi.is_dirty(block_addr):
            # Only the DRAM cache has the current data.
            self.stats.counter("forced_to_cache").increment()
            self.cache.touch(block_addr)
            self.cache_queue += 1
            return DispatchDecision.DRAM_CACHE

        # Clean everywhere: balance load.
        if self.cache_queue - self.off_chip_queue >= self.threshold:
            self.stats.counter("balanced_to_off_chip").increment()
            self.off_chip_queue += 1
            return DispatchDecision.OFF_CHIP
        self.cache.touch(block_addr)
        self.cache_queue += 1
        return DispatchDecision.DRAM_CACHE

    def complete(self, decision: DispatchDecision) -> None:
        """Retire one request from the chosen queue."""
        if decision is DispatchDecision.DRAM_CACHE:
            if self.cache_queue <= 0:
                raise ValueError("DRAM cache queue underflow")
            self.cache_queue -= 1
        else:
            if self.off_chip_queue <= 0:
                raise ValueError("off-chip queue underflow")
            self.off_chip_queue -= 1

    @property
    def off_chip_share(self) -> float:
        """Fraction of reads the dispatcher managed to offload."""
        flat = self.stats.as_dict()
        reads = flat.get("dispatch.reads", 0)
        if not reads:
            return 0.0
        return flat.get("dispatch.balanced_to_off_chip", 0) / reads
