"""Additional DBI applications (paper Section 7).

The paper quantifies three optimizations but sketches several more uses of
the DBI's compact dirty-block organization. This package implements two of
them as working subsystems:

* :mod:`repro.extensions.dram_cache` — self-balancing dispatch between an
  on-chip DRAM cache and off-chip memory [49]: the DBI answers "could this
  line be dirty in the DRAM cache?" cheaply, so clean reads can be dispatched
  to whichever memory is less loaded, without the counting Bloom filter and
  dirty-page cache the original proposal needed.
* :mod:`repro.extensions.bulk_dma` — coherent bulk DMA: one ranged DBI query
  replaces per-block tag-store probes when a device reads a large buffer.
"""

from repro.extensions.bulk_dma import BulkDmaEngine, DmaTransferReport
from repro.extensions.dram_cache import (
    DispatchDecision,
    DramCacheDispatcher,
    DramCacheModel,
)

__all__ = [
    "BulkDmaEngine",
    "DmaTransferReport",
    "DramCacheModel",
    "DramCacheDispatcher",
    "DispatchDecision",
]
