"""Coherent bulk DMA using ranged DBI queries (paper Section 7).

When a device reads a buffer from memory, the memory controller must
guarantee no cached line in the range is dirty [5]. Conventionally that is
one tag-store probe per block of the transfer; with a DBI one query per
*region* (DRAM row) answers the same question, and only regions that report
dirt need per-block attention.

:class:`BulkDmaEngine` models both costs for the same transfer so examples
and benches can report the lookup reduction alongside the flush work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.dbi import DirtyBlockIndex
from repro.utils.stats import StatGroup
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DmaTransferReport:
    """Coherence work for one bulk transfer."""

    start_block: int
    num_blocks: int
    dirty_blocks_flushed: tuple
    dbi_queries: int
    conventional_tag_lookups: int

    @property
    def lookup_reduction(self) -> float:
        """How many conventional lookups one DBI query replaced."""
        if self.dbi_queries == 0:
            return 0.0
        return self.conventional_tag_lookups / self.dbi_queries


class BulkDmaEngine:
    """Coherence front-end for device-initiated bulk reads."""

    def __init__(self, dbi: DirtyBlockIndex) -> None:
        self.dbi = dbi
        self.stats = StatGroup("dma")

    def prepare_read(self, start_block: int, num_blocks: int) -> DmaTransferReport:
        """Make [start, start+num_blocks) safe for a device read.

        Dirty blocks in the range are flushed (cleared in the DBI — the
        caller writes their data back); the report compares the DBI's query
        count against the one-lookup-per-block conventional cost.
        """
        check_positive("num_blocks", num_blocks)
        granularity = self.dbi.config.granularity
        first_region = self.dbi.config.region_of(start_block)
        last_region = self.dbi.config.region_of(start_block + num_blocks - 1)

        queries = 0
        flushed: List[int] = []
        for region_id in range(first_region, last_region + 1):
            queries += 1
            if not self.dbi.region_has_dirty(region_id):
                continue
            region_base = region_id * granularity
            for block in self.dbi.dirty_blocks_in_region(region_base):
                if start_block <= block < start_block + num_blocks:
                    self.dbi.mark_clean(block)
                    flushed.append(block)
            queries += 1  # the bit-vector read

        self.stats.counter("transfers").increment()
        self.stats.counter("blocks_flushed").increment(len(flushed))
        self.stats.counter("dbi_queries").increment(queries)
        return DmaTransferReport(
            start_block=start_block,
            num_blocks=num_blocks,
            dirty_blocks_flushed=tuple(sorted(flushed)),
            dbi_queries=queries,
            conventional_tag_lookups=num_blocks,
        )
