"""ASCII rendering of epoch streams (the ``repro timeline`` subcommand).

Pure text: a per-epoch table of selected stat keys plus an ASCII sparkline
per key, with the measured warmup boundary marked. Keys resolve through
:meth:`EpochRecord.value`, so counter deltas ("mech.read_hits"), gauges
("dram.write_buffer_depth") and record fields ("ipc") all work.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.telemetry.analysis import detect_warmup
from repro.telemetry.sampler import EpochRecord

#: ASCII intensity ramp, lowest to highest (terminal-safe everywhere).
SPARK_CHARS = " .:-=+*#%@"

#: Rendered when no stat keys are requested.
DEFAULT_KEYS = ("ipc", "dram.write_buffer_depth")


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Map a series onto the ASCII ramp, resampling to ``width`` columns."""
    values = list(values)
    if not values:
        return ""
    if width is not None and width > 0 and len(values) > width:
        # Mean-pool into `width` buckets so spikes are averaged, not dropped.
        size = len(values) / width
        values = [
            _mean(values[int(i * size) : max(int((i + 1) * size), int(i * size) + 1)])
            for i in range(width)
        ]
    low, high = min(values), max(values)
    span = high - low
    if span == 0:
        return SPARK_CHARS[0] * len(values)
    top = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[round((value - low) / span * top)] for value in values
    )


def _mean(chunk: Sequence[float]) -> float:
    return sum(chunk) / len(chunk) if chunk else 0.0


def _format(value: float) -> str:
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4f}"


def render_table(
    records: Sequence[EpochRecord],
    keys: Sequence[str],
    max_rows: Optional[int] = None,
) -> str:
    """One row per epoch; a ``*`` marks stats-reset epochs."""
    records = list(records)
    step = 1
    if max_rows is not None and max_rows > 0 and len(records) > max_rows:
        step = -(-len(records) // max_rows)  # ceil division
    header = ["epoch", "cycle", "cycles", "instr"] + list(keys)
    rows = [header]
    for record in records[::step]:
        rows.append(
            [
                f"{record.epoch}{'*' if record.stats_reset else ''}",
                str(record.cycle),
                str(record.cycles),
                str(record.instructions),
            ]
            + [_format(record.value(key)) for key in keys]
        )
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    if step > 1:
        lines.append(f"(every {step}th of {len(records)} epochs)")
    return "\n".join(lines)


def render_timeline(
    records: Sequence[EpochRecord],
    keys: Sequence[str] = DEFAULT_KEYS,
    width: int = 60,
    max_rows: Optional[int] = 40,
    title: Optional[str] = None,
) -> str:
    """Full report: sparkline per key, warmup marker, then the epoch table."""
    records = list(records)
    lines: List[str] = []
    if title:
        lines.append(title)
    if not records:
        lines.append("(no epochs sampled — run longer or shrink --epoch-cycles)")
        return "\n".join(lines)
    lines.append(
        f"{len(records)} epochs over {records[-1].cycle} cycles, "
        f"{sum(r.instructions for r in records)} instructions"
    )
    boundary = detect_warmup(records)
    if boundary is not None:
        lines.append(
            f"measured warmup boundary: epoch {records[boundary].epoch} "
            f"(cycle {records[boundary].cycle - records[boundary].cycles})"
        )
    else:
        lines.append("measured warmup boundary: not reached (IPC never settled)")
    lines.append("")
    label_width = max(len(key) for key in keys)
    for key in keys:
        values = [record.value(key) for record in records]
        lines.append(
            f"{key:<{label_width}} |{sparkline(values, width)}| "
            f"min {_format(min(values))}  max {_format(max(values))}"
        )
    lines.append("")
    lines.append(render_table(records, keys, max_rows=max_rows))
    return "\n".join(lines)
