"""Analysis over epoch streams: warmup detection, phases, steady state.

The headline experiment tables assume a *fixed* 40% instruction warmup
(``SystemConfig.warmup_fraction``, mirroring the paper's 200M of 500M). The
functions here turn that assumption into a measurement: where does the
per-epoch IPC actually stabilise, and what do the headline metrics look
like when recomputed over the measured steady state only?

Records flagged ``stats_reset`` (the epoch in which the warmup reset zeroed
the stat groups) are excluded from every aggregate — their counter deltas
cover an unknowable fraction of the epoch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.telemetry.sampler import EpochRecord


def series(records: Sequence[EpochRecord], key: str) -> List[float]:
    """The per-epoch time series of ``key`` (see :meth:`EpochRecord.value`)."""
    return [record.value(key) for record in records]


def rate_series(
    records: Sequence[EpochRecord], name: str
) -> List[Optional[float]]:
    """Per-epoch ratio of a RateStat, e.g. ``dram.write_row_hit_rate``.

    Computed from the epoch's hits/total deltas; epochs in which the rate's
    denominator saw no traffic yield None.
    """
    out: List[Optional[float]] = []
    for record in records:
        hits = record.deltas.get(f"{name}.hits", 0)
        total = record.deltas.get(f"{name}.total", 0)
        out.append(hits / total if total else None)
    return out


def detect_warmup(
    records: Sequence[EpochRecord],
    window: int = 4,
    tolerance: float = 0.25,
) -> Optional[int]:
    """First epoch index at which IPC has stabilised, or None.

    Scans for the earliest index ``i`` such that (a) the ``window`` epochs
    starting at ``i`` all have IPC within ``tolerance`` (relative spread,
    ``(max - min) / mean``) of each other, and (b) the window's mean is
    within ``tolerance`` of the mean over *everything* from ``i`` on.
    Condition (b) rejects the cold-start plateau: the first epochs of a run
    are often mutually consistent (caches still filling, everything hits)
    yet far from where the run settles, and a warmup boundary placed there
    would make the entire transient "steady state".
    """
    if window < 2:
        raise ValueError(f"window must be >= 2, got {window}")
    ipcs = [record.ipc for record in records]
    for start in range(0, len(ipcs) - window + 1):
        chunk = ipcs[start : start + window]
        mean = sum(chunk) / window
        if mean <= 0:
            continue
        if (max(chunk) - min(chunk)) / mean > tolerance:
            continue
        rest = ipcs[start:]
        rest_mean = sum(rest) / len(rest)
        if rest_mean > 0 and abs(mean - rest_mean) <= tolerance * rest_mean:
            return start
    return None


def _aggregate(records: Sequence[EpochRecord]) -> Dict[str, float]:
    """Summed deltas over ``records``, skipping stats-reset epochs."""
    totals: Dict[str, float] = {}
    cycles = instructions = 0
    for record in records:
        if record.stats_reset:
            continue
        cycles += record.cycles
        instructions += record.instructions
        for key, delta in record.deltas.items():
            totals[key] = totals.get(key, 0) + delta
    totals["cycles"] = cycles
    totals["instructions"] = instructions
    return totals


def _rate(totals: Dict[str, float], name: str) -> float:
    total = totals.get(f"{name}.total", 0)
    return totals.get(f"{name}.hits", 0) / total if total else 0.0


def _pki(totals: Dict[str, float], count: float) -> float:
    instructions = totals.get("instructions", 0)
    return 1000.0 * count / instructions if instructions else 0.0


def summarize(records: Sequence[EpochRecord]) -> Dict[str, float]:
    """Headline metrics recomputed from a slice of the epoch stream.

    Mirrors the derived metrics of ``SimulationResult`` (write/read row-hit
    rate, memory WPKI, tag lookups PKI, LLC MPKI) plus IPC, but over
    exactly the epochs given — pass ``records[boundary:]`` for a
    steady-state-only view.
    """
    totals = _aggregate(records)
    cycles = totals["cycles"]
    misses = (
        totals.get("mech.read_misses", 0)
        + totals.get("mech.bypassed_lookups", 0)
        - totals.get("mech.bypassed_hits", 0)
    )
    return {
        "epochs": sum(1 for r in records if not r.stats_reset),
        "cycles": cycles,
        "instructions": totals["instructions"],
        "ipc": totals["instructions"] / cycles if cycles else 0.0,
        "write_row_hit_rate": _rate(totals, "dram.write_row_hit_rate"),
        "read_row_hit_rate": _rate(totals, "dram.read_row_hit_rate"),
        "memory_wpki": _pki(totals, totals.get("dram.dram_writes_performed", 0)),
        "tag_lookups_pki": _pki(totals, totals.get("mech.tag_lookups", 0)),
        "llc_mpki": _pki(totals, misses),
    }


def phase_summaries(
    records: Sequence[EpochRecord], phases: int = 4
) -> List[Dict[str, float]]:
    """Split the stream into ``phases`` contiguous slices and summarize each.

    Useful for "where in the run did it happen": each summary carries
    ``first_epoch``/``last_epoch`` alongside the :func:`summarize` metrics.
    """
    if phases < 1:
        raise ValueError(f"phases must be >= 1, got {phases}")
    records = list(records)
    if not records:
        return []
    phases = min(phases, len(records))
    size = len(records) / phases
    out = []
    for index in range(phases):
        chunk = records[int(index * size) : int((index + 1) * size)]
        if not chunk:
            continue
        summary = summarize(chunk)
        summary["first_epoch"] = chunk[0].epoch
        summary["last_epoch"] = chunk[-1].epoch
        out.append(summary)
    return out


def warmup_report(
    records: Sequence[EpochRecord],
    window: int = 4,
    tolerance: float = 0.25,
) -> Dict:
    """Measured warmup boundary plus warmup/steady-state summaries.

    ``measured_warmup_fraction`` is the fraction of all issued instructions
    spent before the boundary — directly comparable to the fixed
    ``SystemConfig.warmup_fraction`` (0.4 in every committed experiment).
    """
    records = list(records)
    boundary = detect_warmup(records, window=window, tolerance=tolerance)
    total_instructions = sum(r.instructions for r in records)
    if boundary is None:
        warm_instructions = total_instructions
    else:
        warm_instructions = sum(r.instructions for r in records[:boundary])
    return {
        "boundary_epoch": boundary,
        "boundary_cycle": (
            records[boundary].cycle - records[boundary].cycles
            if boundary is not None and boundary < len(records)
            else None
        ),
        "measured_warmup_fraction": (
            warm_instructions / total_instructions if total_instructions else 0.0
        ),
        # Identity check, not truthiness: boundary == 0 is a valid measured
        # boundary (steady from the first epoch) and must yield an explicit
        # zero-epoch warmup summary, distinguishable from "never settled".
        "warmup": (
            summarize(records[:boundary]) if boundary is not None else None
        ),
        "steady_state": (
            summarize(records[boundary:]) if boundary is not None else None
        ),
    }
