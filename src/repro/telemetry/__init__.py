"""Epoch-based time-series telemetry (zero-perturbation sampling).

Everything the repository reported before this package existed was an
end-of-run aggregate: one number per counter per simulation. Telemetry adds
the *time axis*: a :class:`~repro.telemetry.sampler.TelemetrySampler` hooks
into the event kernel (``EventQueue.telemetry`` — the same nullable-hook
pattern as ``EventQueue.profiler``) and, every ``epoch_cycles`` simulated
cycles, snapshots the delta of every component stat counter plus a set of
instantaneous gauges (write-buffer depth, DBI occupancy, MSHR occupancy)
into an in-memory ring of :class:`~repro.telemetry.sampler.EpochRecord`
objects, optionally streaming each record to a JSONL file as it closes.

The sampler is strictly observational — it reads counters and container
lengths and never calls a stat-recording method — so a telemetry-enabled
run produces **byte-identical final statistics** to a disabled one
(``tests/telemetry/test_sampler.py`` pins this on multiple cells).

Layers:

* :mod:`repro.telemetry.sampler` — the sampler, epoch records, JSONL I/O.
* :mod:`repro.telemetry.analysis` — warmup-boundary detection, per-phase
  summaries, steady-state recomputation of the headline metrics.
* :mod:`repro.telemetry.timeline` — ASCII per-epoch tables and sparklines
  (the ``repro timeline`` subcommand).
"""

from repro.telemetry.sampler import (
    EpochRecord,
    TelemetryConfig,
    TelemetrySampler,
    read_jsonl,
)

__all__ = [
    "EpochRecord",
    "TelemetryConfig",
    "TelemetrySampler",
    "read_jsonl",
]
