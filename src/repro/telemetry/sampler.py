"""The epoch sampler: stat-counter deltas and gauges, ring + JSONL stream.

Sampling contract (enforced by ``tests/telemetry/``):

* The kernel calls :meth:`TelemetrySampler.sample` at most once per distinct
  timestamp, immediately *before* firing the first bucket whose time is at
  or past :attr:`TelemetrySampler.next_cycle`. An epoch record therefore
  covers every event with ``last_sample < time <= cycle`` — boundaries are
  deterministic functions of the event schedule, never of wall clock.
* The sampler only reads: raw ``Counter.value`` / ``RateStat`` fields,
  plain integer attributes, and container lengths. It never calls
  ``is_dirty``/``lookup``-style methods that count their own invocations,
  so enabled and disabled runs export byte-identical final statistics.
* Counter deltas are monotonic except across the warmup statistics reset
  (``System._core_warmed`` zeroes every stat group). A negative delta marks
  the record ``stats_reset=True`` and reports the post-reset value as the
  delta; analysis code skips such records when aggregating.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.utils.stats import StatGroup

#: Bump when the JSONL record schema changes; readers reject newer formats.
JSONL_FORMAT = 1


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs of one telemetry attachment.

    Attributes:
        epoch_cycles: epoch length in simulated cycles.
        ring_size: epochs kept in memory (None = all; long runs should set
            this and rely on the JSONL stream for the full trace).
        jsonl_path: stream each closed epoch to this file as one JSON line
            (None = in-memory only). The file is opened lazily on the first
            sample and always starts with a header line.
        meta: extra key/values for the JSONL header (benchmark, mechanism).
    """

    epoch_cycles: int = 5_000
    ring_size: Optional[int] = None
    jsonl_path: Optional[str] = None
    meta: Optional[Tuple[Tuple[str, str], ...]] = None

    def __post_init__(self) -> None:
        if self.epoch_cycles <= 0:
            raise ValueError(
                f"epoch_cycles must be positive, got {self.epoch_cycles}"
            )
        if self.ring_size is not None and self.ring_size <= 0:
            raise ValueError(f"ring_size must be positive, got {self.ring_size}")


@dataclass
class EpochRecord:
    """Deltas and gauges for one sampled epoch.

    ``cycle`` is the sample point (the closing boundary); ``cycles`` is the
    span covered since the previous sample — normally ``epoch_cycles``, but
    larger when the event schedule skipped entire epochs, and smaller for
    the trailing partial epoch emitted by :meth:`TelemetrySampler.finalize`.
    """

    epoch: int
    cycle: int
    cycles: int
    instructions: int
    ipc: float
    stats_reset: bool = False
    final: bool = False
    deltas: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)

    def value(self, key: str) -> float:
        """Resolve a stat key: record field, counter delta, or gauge."""
        if key in ("ipc", "instructions", "cycles", "cycle", "epoch"):
            return getattr(self, key)
        if key in self.deltas:
            return self.deltas[key]
        return self.gauges.get(key, 0.0)

    def to_dict(self) -> Dict:
        return {
            "epoch": self.epoch,
            "cycle": self.cycle,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "stats_reset": self.stats_reset,
            "final": self.final,
            "deltas": dict(self.deltas),
            "gauges": dict(self.gauges),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "EpochRecord":
        return cls(
            epoch=data["epoch"],
            cycle=data["cycle"],
            cycles=data["cycles"],
            instructions=data["instructions"],
            ipc=data["ipc"],
            stats_reset=data.get("stats_reset", False),
            final=data.get("final", False),
            deltas=dict(data.get("deltas", {})),
            gauges=dict(data.get("gauges", {})),
        )


#: A named cumulative-integer probe (monotonic outside stat resets).
CounterProbe = Tuple[str, Callable[[], int]]
#: A named instantaneous probe, recorded as-is each epoch.
GaugeProbe = Tuple[str, Callable[[], float]]


class TelemetrySampler:
    """Snapshots component statistics at epoch boundaries.

    Attach by assigning to ``EventQueue.telemetry``; the kernel calls
    :meth:`sample` when the clock reaches :attr:`next_cycle`. Construction
    is usually done by :class:`repro.sim.system.System`, which registers
    its stat groups and per-component probes.
    """

    def __init__(
        self,
        config: TelemetryConfig,
        groups: Sequence[StatGroup] = (),
        counters: Sequence[CounterProbe] = (),
        gauges: Sequence[GaugeProbe] = (),
    ) -> None:
        self.config = config
        self._groups = list(groups)
        self._counters = list(counters)
        self._gauges = list(gauges)
        self.next_cycle = config.epoch_cycles
        self.records: Deque[EpochRecord] = deque(maxlen=config.ring_size)
        self.epochs_emitted = 0
        self._last_cycle = 0
        self._prev: Dict[str, float] = {}
        self._prev_instructions = 0
        self._stream = None
        self._finalized = False

    # ------------------------------------------------------------- sampling

    def _cumulative(self) -> Dict[str, float]:
        """Raw cumulative counter values, read without side effects."""
        snap: Dict[str, float] = {}
        for group in self._groups:
            prefix = group.name
            for counter in group._counters.values():
                snap[f"{prefix}.{counter.name}"] = counter.value
            for rate in group._rates.values():
                snap[f"{prefix}.{rate.name}.hits"] = rate.hits
                snap[f"{prefix}.{rate.name}.total"] = rate.total
            for dist in group._distributions.values():
                snap[f"{prefix}.{dist.name}.count"] = dist.count
                snap[f"{prefix}.{dist.name}.sum"] = dist.total
        for key, probe in self._counters:
            snap[key] = probe()
        return snap

    def sample(self, cycle: int, final: bool = False) -> None:
        """Close the epoch ending at ``cycle`` and open the next one.

        Called by the event kernel (``cycle >= next_cycle``) or by
        :meth:`finalize` for the trailing partial epoch.
        """
        snapshot = self._cumulative()
        prev = self._prev
        deltas: Dict[str, float] = {}
        stats_reset = False
        for key, value in snapshot.items():
            delta = value - prev.get(key, 0)
            if delta < 0:
                # The warmup boundary reset this group mid-epoch; the
                # pre-reset share of the epoch is unrecoverable, so report
                # the post-reset count and flag the record.
                stats_reset = True
                delta = value
            if delta:
                deltas[key] = delta
        instructions = deltas.pop("instructions", 0)
        cycles = cycle - self._last_cycle
        record = EpochRecord(
            epoch=self._last_cycle // self.config.epoch_cycles,
            cycle=cycle,
            cycles=cycles,
            instructions=int(instructions),
            ipc=instructions / cycles if cycles else 0.0,
            stats_reset=stats_reset,
            final=final,
            deltas=deltas,
            gauges={key: probe() for key, probe in self._gauges},
        )
        self._prev = snapshot
        self._last_cycle = cycle
        # Next boundary: the first multiple of epoch_cycles beyond `cycle`
        # (skipped epochs collapse into the record that crosses them).
        step = self.config.epoch_cycles
        self.next_cycle = (cycle // step + 1) * step
        self.records.append(record)
        self.epochs_emitted += 1
        self._write(record)

    def finalize(self, cycle: int) -> None:
        """Emit the trailing partial epoch and close the JSONL stream."""
        if self._finalized:
            return
        self._finalized = True
        if cycle > self._last_cycle:
            self.sample(cycle, final=True)
        self.close()

    # -------------------------------------------------------------- JSONL

    def _write(self, record: EpochRecord) -> None:
        if self.config.jsonl_path is None:
            return
        if self._stream is None:
            self._stream = open(self.config.jsonl_path, "w")
            header = {
                "format": JSONL_FORMAT,
                "kind": "header",
                "epoch_cycles": self.config.epoch_cycles,
            }
            if self.config.meta:
                header.update(dict(self.config.meta))
            self._stream.write(json.dumps(header, sort_keys=True) + "\n")
        self._stream.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        self._stream.flush()  # a killed run still leaves every closed epoch

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None


def read_jsonl(path: str) -> Tuple[Dict, List[EpochRecord]]:
    """Load a telemetry stream: ``(header, records)``.

    Streams the file line by line — a long-running sweep's epoch stream can
    be far larger than the parsed records (each line also carries its JSON
    framing), so the raw text is never held in memory all at once. The
    header is validated on the first non-blank line, *before* any record
    parsing: a foreign file fails fast instead of after a full parse.

    A *torn tail* — the final record cut mid-write by a crash or SIGKILL —
    is tolerated: the partial line is dropped with a :class:`UserWarning`
    and every complete epoch before it is returned, so a killed run's
    forensic ``.partial`` stream stays readable. Only the very last line
    gets this treatment; a malformed record with complete records after it
    is corruption, not a crash, and still raises. A torn *header* also
    raises — with no header the stream has no provenance at all.

    Raises:
        ValueError: on a missing/foreign/torn header, an unsupported
            format, or a malformed record before the final line.
    """
    header: Optional[Dict] = None
    records: List[EpochRecord] = []
    pending_error: Optional[ValueError] = None
    with open(path) as handle:
        for line in handle:
            if not line.strip():
                continue
            if pending_error is not None:
                # The bad line was not the stream's tail: real corruption.
                raise pending_error
            if header is None:
                header = json.loads(line)
                if header.get("kind") != "header":
                    raise ValueError(f"{path}: missing telemetry header line")
                if header.get("format", 0) > JSONL_FORMAT:
                    raise ValueError(
                        f"{path}: format {header.get('format')} is newer "
                        f"than supported ({JSONL_FORMAT})"
                    )
                continue
            try:
                records.append(EpochRecord.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError) as exc:
                pending_error = ValueError(
                    f"{path}: malformed telemetry record: {exc}"
                )
    if header is None:
        raise ValueError(f"{path}: empty telemetry stream")
    if pending_error is not None:
        import warnings

        warnings.warn(
            f"{path}: dropped torn trailing record (crashed writer); "
            f"{len(records)} complete epoch(s) retained",
            UserWarning,
            stacklevel=2,
        )
    return header, records
