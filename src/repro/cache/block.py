"""Cache block (tag entry) state."""

from __future__ import annotations


class CacheBlock:
    """One tag entry.

    ``dirty`` is the conventional in-tag dirty bit (paper Figure 1a). Caches
    managed by a DBI mechanism never set it — the Dirty-Block Index is then
    the sole authority on dirtiness (Figure 1b) — and tests assert that
    invariant.
    """

    __slots__ = ("addr", "valid", "dirty", "owner_core")

    def __init__(self) -> None:
        self.addr = -1
        self.valid = False
        self.dirty = False
        self.owner_core = -1

    def fill(self, addr: int, core_id: int = -1) -> None:
        """Install a (clean) block into this entry."""
        self.addr = addr
        self.valid = True
        self.dirty = False
        self.owner_core = core_id

    def invalidate(self) -> None:
        self.addr = -1
        self.valid = False
        self.dirty = False
        self.owner_core = -1

    def __repr__(self) -> str:
        state = "V" if self.valid else "-"
        state += "D" if self.dirty else " "
        return f"CacheBlock(addr={self.addr}, {state})"
