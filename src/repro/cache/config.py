"""Cache level configuration (paper Table 1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.bits import ilog2
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_power_of_two,
)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level.

    Sizes are expressed in *blocks* (the simulator is block-addressed
    throughout; with the paper's 64 B blocks a 2 MB cache is 32768 blocks).

    Attributes:
        name: label used in stats ("l1", "l2", "llc").
        num_blocks: total capacity in blocks.
        associativity: ways per set.
        tag_latency: cycles for a tag lookup.
        data_latency: cycles for a data access.
        serial_lookup: True = data access starts after the tag lookup
            (paper's L3); False = tag and data probed in parallel (L1/L2),
            so a hit costs max(tag, data) instead of tag + data.
        mshr_entries: outstanding misses supported (0 = unlimited).
        replacement: policy name understood by
            :func:`repro.cache.replacement.make_policy`.
        port_occupancy: cycles one tag lookup holds the tag port. The
            default of 1 models a pipelined tag array (one lookup may start
            per cycle even though each takes ``tag_latency`` to finish);
            only the shared LLC attaches a :class:`TagPort` — private levels
            are modelled latency-only.
    """

    name: str
    num_blocks: int
    associativity: int
    tag_latency: int
    data_latency: int
    serial_lookup: bool = False
    mshr_entries: int = 0
    replacement: str = "lru"
    port_occupancy: int = 1

    def __post_init__(self) -> None:
        check_power_of_two("num_blocks", self.num_blocks)
        check_power_of_two("associativity", self.associativity)
        if self.associativity > self.num_blocks:
            raise ValueError(
                f"associativity {self.associativity} exceeds capacity "
                f"{self.num_blocks} blocks"
            )
        check_positive("tag_latency", self.tag_latency)
        check_positive("data_latency", self.data_latency)
        check_non_negative("mshr_entries", self.mshr_entries)
        check_positive("port_occupancy", self.port_occupancy)
        # set_index and the latency properties are consulted on every access;
        # the geometry is frozen, so derive them once. Kept out of the
        # dataclass fields so repr/eq (and repr-keyed caches) are unchanged.
        object.__setattr__(
            self, "_num_sets", self.num_blocks // self.associativity
        )
        object.__setattr__(self, "_set_mask", self._num_sets - 1)
        object.__setattr__(
            self,
            "_hit_latency",
            self.tag_latency + self.data_latency
            if self.serial_lookup
            else max(self.tag_latency, self.data_latency),
        )

    @property
    def num_sets(self) -> int:
        return self._num_sets

    @property
    def set_index_bits(self) -> int:
        return ilog2(self._num_sets)

    @property
    def hit_latency(self) -> int:
        """Latency of a hit, honouring serial vs parallel tag/data lookup."""
        return self._hit_latency

    @property
    def miss_detect_latency(self) -> int:
        """Cycles before a miss is known (always one tag lookup)."""
        return self.tag_latency

    def set_index(self, block_addr: int) -> int:
        """Set index for a block address (low-order index bits)."""
        return block_addr & self._set_mask


def paper_l1_config() -> CacheConfig:
    """Paper Table 1 L1: 32 KB, 2-way, 2-cycle, parallel lookup, 32 MSHRs."""
    return CacheConfig(
        name="l1",
        num_blocks=512,
        associativity=2,
        tag_latency=2,
        data_latency=2,
        serial_lookup=False,
        mshr_entries=32,
    )


def paper_l2_config() -> CacheConfig:
    """Paper Table 1 L2: 256 KB, 8-way, 12/14-cycle, parallel lookup."""
    return CacheConfig(
        name="l2",
        num_blocks=4096,
        associativity=8,
        tag_latency=12,
        data_latency=14,
        serial_lookup=False,
    )


def paper_llc_config(num_cores: int, mb_per_core: int = 2) -> CacheConfig:
    """Paper Table 1 shared L3: 2 MB/core, 16/32-way, serial lookup.

    Latencies scale with capacity the way Table 1's do (10/12/13/14 tag and
    24/29/31/33 data for 1/2/4/8 cores at 2 MB/core).
    """
    check_positive("num_cores", num_cores)
    tag_by_cores = {1: 10, 2: 12, 4: 13, 8: 14}
    data_by_cores = {1: 24, 2: 29, 4: 31, 8: 33}
    tag = tag_by_cores.get(num_cores, 14)
    data = data_by_cores.get(num_cores, 33)
    if mb_per_core >= 4:
        tag += 1
        data += 4
    return CacheConfig(
        name="llc",
        num_blocks=num_cores * mb_per_core * (1024 * 1024 // 64),
        associativity=16 if num_cores == 1 else 32,
        tag_latency=tag,
        data_latency=data,
        serial_lookup=True,
        replacement="tadip",
    )
