"""Functional set-associative cache level.

This class is purely functional (no timing): lookups, fills, evictions and
dirty-bit bookkeeping. The timing simulator (`repro.sim`) and the LLC
mechanisms (`repro.mechanisms`) wrap it with latencies, MSHRs and tag-port
contention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.cache.block import CacheBlock
from repro.cache.config import CacheConfig
from repro.cache.replacement import ReplacementPolicy, _RecencyStackPolicy, make_policy
from repro.utils.rng import DeterministicRng
from repro.utils.stats import StatGroup


@dataclass(frozen=True)
class EvictedBlock:
    """What fell out of the cache on an insertion."""

    addr: int
    dirty: bool
    owner_core: int


class Cache:
    """A set-associative cache with a pluggable replacement policy.

    Example:
        >>> cache = Cache(CacheConfig("l1", num_blocks=8, associativity=2,
        ...                           tag_latency=1, data_latency=1))
        >>> cache.insert(0x10)
        >>> cache.contains(0x10)
        True
    """

    #: Optional dirty-transition observer (full checked mode attaches the
    #: CheckEngine here). Class attribute so unchecked runs pay only a
    #: ``is not None`` test, and only on actual 0↔1 transitions.
    observer = None

    def __init__(
        self,
        config: CacheConfig,
        num_threads: int = 1,
        rng: Optional[DeterministicRng] = None,
        policy: Optional[ReplacementPolicy] = None,
        stat_name: Optional[str] = None,
    ) -> None:
        self.config = config
        self.sets: List[List[CacheBlock]] = [
            [CacheBlock() for _ in range(config.associativity)]
            for _ in range(config.num_sets)
        ]
        self.policy = policy or make_policy(
            config.replacement,
            config.num_sets,
            config.associativity,
            num_threads=num_threads,
            rng=rng,
        )
        # stat_name disambiguates instances sharing one config (a system has
        # one L1 *config* but one L1 cache — and stat group — per core).
        self.stats = StatGroup(stat_name or config.name)
        # addr -> way, for O(1) presence checks (the set is derivable).
        self._where: Dict[int, int] = {}
        self._set_mask = config.num_sets - 1
        self._assoc = config.associativity
        # Valid blocks per set; lets a full set (the steady state) go
        # straight to the victim instead of scanning every way for a hole.
        self._set_fill = [0] * config.num_sets
        # Hot-path counters, bound to their Counter object on first use so
        # per-access increments skip the StatGroup dict lookup. Bound lazily
        # (not in __init__) so the set of exported stats — and hence results
        # — stays byte-identical to creation-on-first-increment.
        self._c_lookups = None
        self._c_hits = None
        self._c_misses = None
        self._c_evictions = None
        self._c_dirty_evictions = None
        self._c_fills = None

    # ------------------------------------------------------------- presence

    def set_index(self, addr: int) -> int:
        return addr & self._set_mask

    def contains(self, addr: int) -> bool:
        return addr in self._where

    def probe(self, addr: int) -> Optional[CacheBlock]:
        """Return the block without touching replacement state."""
        way = self._where.get(addr)
        if way is None:
            return None
        return self.sets[addr & self._set_mask][way]

    def is_dirty(self, addr: int) -> bool:
        block = self.probe(addr)
        return block is not None and block.dirty

    # --------------------------------------------------------------- access

    def lookup(self, addr: int, core_id: int = -1) -> bool:
        """Demand lookup: updates recency on hit, PSEL voting on miss."""
        set_idx = addr & self._set_mask
        way = self._where.get(addr)
        counter = self._c_lookups
        if counter is None:
            counter = self._c_lookups = self.stats.counter("lookups")
        counter.value += 1
        if way is not None:
            counter = self._c_hits
            if counter is None:
                counter = self._c_hits = self.stats.counter("hits")
            counter.value += 1
            self.policy.on_hit(set_idx, way, core_id)
            return True
        counter = self._c_misses
        if counter is None:
            counter = self._c_misses = self.stats.counter("misses")
        counter.value += 1
        self.policy.note_miss(set_idx, core_id)
        return False

    def touch(self, addr: int, core_id: int = -1) -> bool:
        """Promote a block without demand-miss accounting (fills, writebacks)."""
        way = self._where.get(addr)
        if way is None:
            return False
        self.policy.on_hit(addr & self._set_mask, way, core_id)
        return True

    # ---------------------------------------------------------------- fills

    def insert(
        self, addr: int, core_id: int = -1, dirty: bool = False
    ) -> Optional[EvictedBlock]:
        """Install ``addr``; returns the evicted block if a valid one fell out.

        If the block is already present this only updates its dirty bit
        (logical OR) and promotes it.
        """
        set_idx = addr & self._set_mask
        existing_way = self._where.get(addr)
        if existing_way is not None:
            block = self.sets[set_idx][existing_way]
            if dirty and not block.dirty and self.observer is not None:
                self.observer.on_block_dirtied(addr)
            block.dirty = block.dirty or dirty
            self.policy.on_hit(set_idx, existing_way, core_id)
            return None

        ways = self.sets[set_idx]
        victim_way = None
        if self._set_fill[set_idx] < self._assoc:
            for way, block in enumerate(ways):
                if not block.valid:
                    victim_way = way
                    self._set_fill[set_idx] += 1
                    break
        evicted = None
        if victim_way is None:
            victim_way = self.policy.victim_way(set_idx)
            victim = ways[victim_way]
            evicted = EvictedBlock(victim.addr, victim.dirty, victim.owner_core)
            del self._where[victim.addr]
            counter = self._c_evictions
            if counter is None:
                counter = self._c_evictions = self.stats.counter("evictions")
            counter.value += 1
            if victim.dirty:
                counter = self._c_dirty_evictions
                if counter is None:
                    counter = self._c_dirty_evictions = self.stats.counter(
                        "dirty_evictions"
                    )
                counter.value += 1
                if self.observer is not None:
                    self.observer.on_dirty_evicted(victim.addr)

        block = ways[victim_way]
        block.fill(addr, core_id)
        block.dirty = dirty
        if dirty and self.observer is not None:
            self.observer.on_block_dirtied(addr)
        self._where[addr] = victim_way
        self.policy.on_insert(set_idx, victim_way, core_id)
        counter = self._c_fills
        if counter is None:
            counter = self._c_fills = self.stats.counter("fills")
        counter.value += 1
        return evicted

    # ------------------------------------------------------------ dirty bits

    def mark_dirty(self, addr: int) -> bool:
        """Set the in-tag dirty bit. Returns False if the block is absent."""
        block = self.probe(addr)
        if block is None:
            return False
        if not block.dirty and self.observer is not None:
            self.observer.on_block_dirtied(addr)
        block.dirty = True
        return True

    def mark_clean(self, addr: int) -> bool:
        """Clear the in-tag dirty bit (e.g. after a proactive writeback)."""
        block = self.probe(addr)
        if block is None:
            return False
        if block.dirty and self.observer is not None:
            self.observer.on_block_cleaned(addr)
        block.dirty = False
        return True

    def invalidate(self, addr: int) -> Optional[EvictedBlock]:
        """Remove ``addr``; returns its pre-invalidation state if present."""
        way = self._where.pop(addr, None)
        if way is None:
            return None
        set_idx = self.set_index(addr)
        block = self.sets[set_idx][way]
        state = EvictedBlock(block.addr, block.dirty, block.owner_core)
        if block.dirty and self.observer is not None:
            self.observer.on_dirty_invalidated(addr)
        block.invalidate()
        self._set_fill[set_idx] -= 1
        self.policy.on_invalidate(set_idx, way)
        return state

    # ------------------------------------------------------------ inspection

    def iter_valid_blocks(self) -> Iterator[CacheBlock]:
        for ways in self.sets:
            for block in ways:
                if block.valid:
                    yield block

    @property
    def occupancy(self) -> int:
        return len(self._where)

    @property
    def dirty_count(self) -> int:
        return sum(1 for block in self.iter_valid_blocks() if block.dirty)

    def lru_half_ways(self, set_idx: int) -> List[int]:
        """LRU-half ways of a set (for VWQ's Set State Vector).

        Only meaningful for recency-stack policies; other policies fall back
        to the first half of the ways.
        """
        if isinstance(self.policy, _RecencyStackPolicy):
            return self.policy.lru_half_ways(set_idx)
        return list(range(self.config.associativity // 2))

    def recency_order(self, set_idx: int) -> List[int]:
        """Ways of a set ordered LRU-first (for recency-stack policies).

        Non-stack policies fall back to way order, which keeps dependent
        features (VWQ) functional if unrealistically ordered.
        """
        if isinstance(self.policy, _RecencyStackPolicy):
            return list(self.policy._stacks[set_idx])
        return list(range(self.config.associativity))

    def lru_valid_ways(self, set_idx: int) -> List[int]:
        """The less-recently-used half of the *valid* blocks of a set.

        This is the population VWQ's Set State Vector summarizes: blocks
        nearing eviction. With ``n`` valid blocks, the first ``ceil(n/2)``
        in recency order qualify (a lone block is its own LRU).
        """
        ways = self.sets[set_idx]
        valid_in_order = [w for w in self.recency_order(set_idx) if ways[w].valid]
        if not valid_in_order:
            return []
        return valid_in_order[: (len(valid_in_order) + 1) // 2]
