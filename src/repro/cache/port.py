"""Shared LLC tag-port contention model.

The paper's central complexity argument (Sections 3.1, 6.1-6.2) is that
DAWB/VWQ roughly double LLC tag lookups while the DBI probes only
actually-dirty blocks — and in multi-core systems those extra lookups delay
everyone's demand accesses. This module makes that contention concrete: each
tag lookup occupies the port for ``occupancy`` cycles; demand lookups are
granted before background (proactive-writeback) lookups, but an in-flight
lookup is never preempted (paper footnote 4).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.utils.events import Event, EventQueue
from repro.utils.stats import StatGroup


class PortPriority(enum.IntEnum):
    """Grant classes, highest first."""

    DEMAND = 0  # read accesses and L2 writeback requests
    BACKGROUND = 1  # proactive-writeback probes (AWB/DAWB/VWQ/DBI evictions)


class TagPort:
    """A single non-preemptible port with two priority classes.

    Clients call :meth:`request`; the callback fires when the port is granted,
    and the port stays busy for ``occupancy`` cycles afterwards.
    """

    def __init__(
        self,
        queue: EventQueue,
        occupancy: int,
        name: str = "llc_port",
    ) -> None:
        if occupancy <= 0:
            raise ValueError(f"occupancy must be positive, got {occupancy}")
        self.queue = queue
        self.occupancy = occupancy
        self.busy_until = 0
        self.stats = StatGroup(name)
        self._waiting: Tuple[Deque[Callable[[], None]], ...] = (deque(), deque())
        self._grant_event: Optional[Event] = None
        # Per-priority request counters, bound on first use (lazily, so the
        # exported stat set matches creation-on-first-increment) — the old
        # per-request f-string + StatGroup lookup showed up in profiles.
        self._c_requests = [None, None]
        self._c_grants = None
        self._d_queue_depth = None

    @property
    def queued(self) -> int:
        return len(self._waiting[0]) + len(self._waiting[1])

    def request(
        self, callback: Callable[[], None], priority: PortPriority = PortPriority.DEMAND
    ) -> None:
        """Queue a lookup; ``callback`` runs when the port grants it."""
        counter = self._c_requests[priority]
        if counter is None:
            counter = self._c_requests[priority] = self.stats.counter(
                f"requests_{priority.name.lower()}"
            )
        counter.value += 1
        self._waiting[priority].append(callback)
        self._pump()

    def _pump(self) -> None:
        if self._grant_event is not None and not self._grant_event.cancelled:
            return  # a grant pass is already pending
        grant_time = max(self.queue.now, self.busy_until)
        self._grant_event = self.queue.schedule(grant_time, self._grant)

    def _grant(self) -> None:
        self._grant_event = None
        now = self.queue.now
        if now < self.busy_until:
            self._pump()
            return
        demand, background = self._waiting
        if demand:
            callback = demand.popleft()
        elif background:
            callback = background.popleft()
        else:
            return
        self.busy_until = now + self.occupancy
        counter = self._c_grants
        if counter is None:
            counter = self._c_grants = self.stats.counter("grants")
        counter.value += 1
        depth = self._d_queue_depth
        if depth is None:
            depth = self._d_queue_depth = self.stats.distribution("queue_depth")
        depth.record(len(demand) + len(background))
        callback()
        if demand or background:
            self._pump()
