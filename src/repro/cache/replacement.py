"""Cache replacement policies.

Implements the policies the paper evaluates or compares against:

* LRU — the baseline's policy.
* BIP — bimodal insertion (insert at LRU, promote with probability 1/64).
* DIP / TA-DIP [18, 42] — set dueling between LRU and BIP insertion with a
  per-thread policy selector (all non-baseline mechanisms in Table 2 use it).
* SRRIP / BRRIP / DRRIP [19] — re-reference interval prediction, used in the
  Section 6.5 replacement-policy sensitivity study.
* Random — a testing/ablation aid.

All policies share one interface driven by the functional cache:
``on_hit``/``on_insert``/``on_invalidate``/``victim_way``/``note_miss``.
Coin flips draw from a :class:`DeterministicRng` so runs are reproducible.
"""

from __future__ import annotations

import abc
from typing import List, Optional

from repro.utils.rng import DeterministicRng
from repro.utils.validation import check_positive


class ReplacementPolicy(abc.ABC):
    """Interface between a tag store and its replacement state."""

    def __init__(self, num_sets: int, num_ways: int) -> None:
        check_positive("num_sets", num_sets)
        check_positive("num_ways", num_ways)
        self.num_sets = num_sets
        self.num_ways = num_ways

    @abc.abstractmethod
    def on_hit(self, set_idx: int, way: int, core_id: int = -1) -> None:
        """A block was re-referenced."""

    @abc.abstractmethod
    def on_insert(self, set_idx: int, way: int, core_id: int = -1) -> None:
        """A new block was installed in ``way``."""

    @abc.abstractmethod
    def victim_way(self, set_idx: int) -> int:
        """Pick the way to evict (all ways valid)."""

    def on_invalidate(self, set_idx: int, way: int) -> None:
        """A block was removed; default: no bookkeeping."""

    def note_miss(self, set_idx: int, core_id: int = -1) -> None:
        """A demand miss occurred in this set (used by dueling policies)."""


class _RecencyStackPolicy(ReplacementPolicy):
    """Shared machinery for stack-based policies (LRU, BIP, DIP).

    Each set keeps its ways ordered from LRU (index 0) to MRU (last).
    """

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        self._stacks: List[List[int]] = [
            list(range(num_ways)) for _ in range(num_sets)
        ]

    def _touch_mru(self, set_idx: int, way: int) -> None:
        stack = self._stacks[set_idx]
        stack.remove(way)
        stack.append(way)

    def _demote_lru(self, set_idx: int, way: int) -> None:
        stack = self._stacks[set_idx]
        stack.remove(way)
        stack.insert(0, way)

    def on_hit(self, set_idx: int, way: int, core_id: int = -1) -> None:
        self._touch_mru(set_idx, way)

    def victim_way(self, set_idx: int) -> int:
        return self._stacks[set_idx][0]

    def on_invalidate(self, set_idx: int, way: int) -> None:
        self._demote_lru(set_idx, way)

    def recency_position(self, set_idx: int, way: int) -> int:
        """0 = LRU ... num_ways-1 = MRU. Used by VWQ's Set State Vector."""
        return self._stacks[set_idx].index(way)

    def lru_half_ways(self, set_idx: int) -> List[int]:
        """The ways currently in the less-recent half of the stack."""
        return list(self._stacks[set_idx][: self.num_ways // 2])


class LruPolicy(_RecencyStackPolicy):
    """Classic least-recently-used (paper's Baseline)."""

    def on_insert(self, set_idx: int, way: int, core_id: int = -1) -> None:
        self._touch_mru(set_idx, way)


class BipPolicy(_RecencyStackPolicy):
    """Bimodal insertion [42]: insert at LRU, promote to MRU with prob ε."""

    def __init__(
        self,
        num_sets: int,
        num_ways: int,
        rng: Optional[DeterministicRng] = None,
        epsilon: float = 1.0 / 64.0,
    ) -> None:
        super().__init__(num_sets, num_ways)
        self._rng = rng or DeterministicRng(seed=0xB1B)
        self.epsilon = epsilon

    def on_insert(self, set_idx: int, way: int, core_id: int = -1) -> None:
        if self._rng.chance(self.epsilon):
            self._touch_mru(set_idx, way)
        else:
            self._demote_lru(set_idx, way)


class PolicySelector:
    """A saturating policy-selection counter (PSEL) for set dueling."""

    def __init__(self, bits: int = 10) -> None:
        check_positive("bits", bits)
        self.maximum = (1 << bits) - 1
        self.value = 1 << (bits - 1)  # start undecided

    def vote_up(self) -> None:
        if self.value < self.maximum:
            self.value += 1

    def vote_down(self) -> None:
        if self.value > 0:
            self.value -= 1

    @property
    def prefers_second(self) -> bool:
        """True when the counter's MSB is set (policy A missing more)."""
        return self.value >= (self.maximum + 1) // 2


class DuelingMap:
    """Assigns leader sets for two competing policies, per thread.

    The set space is split into constituencies; inside constituency ``i``,
    thread ``t`` owns one leader set for policy A and one for policy B,
    following the constituency scheme of [42]. With too few sets for the
    requested leader count the number of constituencies degrades gracefully.
    """

    FOLLOWER = 0
    LEADER_A = 1
    LEADER_B = 2

    def __init__(self, num_sets: int, num_threads: int, leaders_per_policy: int = 32):
        check_positive("num_sets", num_sets)
        check_positive("num_threads", num_threads)
        self.num_threads = num_threads
        slots_needed = 2 * num_threads
        constituencies = min(leaders_per_policy, max(1, num_sets // slots_needed))
        constituency_size = num_sets // constituencies if constituencies else num_sets
        # role_of[set] = (role, owner_thread)
        self.role_of = [(self.FOLLOWER, -1)] * num_sets
        if constituency_size < slots_needed:
            # Not enough sets to duel for every thread; fall back to thread 0.
            slots_needed = 2
            num_threads = 1
        for c in range(constituencies):
            base = c * constituency_size
            for t in range(num_threads):
                a_set = base + 2 * t
                b_set = base + 2 * t + 1
                if b_set < num_sets:
                    self.role_of[a_set] = (self.LEADER_A, t)
                    self.role_of[b_set] = (self.LEADER_B, t)

    def role(self, set_idx: int):
        return self.role_of[set_idx]


class DipPolicy(_RecencyStackPolicy):
    """(TA-)DIP [18, 42]: set dueling between LRU and BIP insertion.

    With ``num_threads == 1`` this is plain DIP; with more threads each gets
    its own PSEL and leader sets (thread-aware DIP, paper Table 2).
    """

    def __init__(
        self,
        num_sets: int,
        num_ways: int,
        num_threads: int = 1,
        rng: Optional[DeterministicRng] = None,
        psel_bits: int = 10,
        epsilon: float = 1.0 / 64.0,
        leaders_per_policy: int = 32,
    ) -> None:
        super().__init__(num_sets, num_ways)
        self._rng = rng or DeterministicRng(seed=0xD1B)
        self.epsilon = epsilon
        self.num_threads = num_threads
        self.selectors = [PolicySelector(psel_bits) for _ in range(num_threads)]
        self.dueling = DuelingMap(num_sets, num_threads, leaders_per_policy)

    def _thread(self, core_id: int) -> int:
        return core_id % self.num_threads if core_id >= 0 else 0

    def _insert_lru_style(self, set_idx: int, way: int) -> None:
        self._touch_mru(set_idx, way)

    def _insert_bip_style(self, set_idx: int, way: int) -> None:
        if self._rng.chance(self.epsilon):
            self._touch_mru(set_idx, way)
        else:
            self._demote_lru(set_idx, way)

    def on_insert(self, set_idx: int, way: int, core_id: int = -1) -> None:
        role, owner = self.dueling.role(set_idx)
        if role == DuelingMap.LEADER_A:
            self._insert_lru_style(set_idx, way)
        elif role == DuelingMap.LEADER_B:
            self._insert_bip_style(set_idx, way)
        elif self.selectors[self._thread(core_id)].prefers_second:
            self._insert_bip_style(set_idx, way)
        else:
            self._insert_lru_style(set_idx, way)

    def note_miss(self, set_idx: int, core_id: int = -1) -> None:
        role, owner = self.dueling.role(set_idx)
        if role == DuelingMap.FOLLOWER:
            return
        if owner != self._thread(core_id):
            return
        selector = self.selectors[owner]
        if role == DuelingMap.LEADER_A:
            selector.vote_up()  # LRU leader missed: lean towards BIP
        else:
            selector.vote_down()  # BIP leader missed: lean towards LRU


class _RripBase(ReplacementPolicy):
    """Shared RRPV machinery for the RRIP family [19]."""

    def __init__(self, num_sets: int, num_ways: int, rrpv_bits: int = 2) -> None:
        super().__init__(num_sets, num_ways)
        check_positive("rrpv_bits", rrpv_bits)
        self.max_rrpv = (1 << rrpv_bits) - 1
        self._rrpv: List[List[int]] = [
            [self.max_rrpv] * num_ways for _ in range(num_sets)
        ]

    def on_hit(self, set_idx: int, way: int, core_id: int = -1) -> None:
        self._rrpv[set_idx][way] = 0  # hit promotion: near-immediate re-reference

    def victim_way(self, set_idx: int) -> int:
        rrpvs = self._rrpv[set_idx]
        while True:
            for way, value in enumerate(rrpvs):
                if value == self.max_rrpv:
                    return way
            for way in range(self.num_ways):
                rrpvs[way] += 1

    def on_invalidate(self, set_idx: int, way: int) -> None:
        self._rrpv[set_idx][way] = self.max_rrpv

    def _insert_long(self, set_idx: int, way: int) -> None:
        self._rrpv[set_idx][way] = self.max_rrpv - 1

    def _insert_distant(self, set_idx: int, way: int) -> None:
        self._rrpv[set_idx][way] = self.max_rrpv


class SrripPolicy(_RripBase):
    """Static RRIP: always insert with a long re-reference interval."""

    def on_insert(self, set_idx: int, way: int, core_id: int = -1) -> None:
        self._insert_long(set_idx, way)


class BrripPolicy(_RripBase):
    """Bimodal RRIP: insert distant, occasionally long (prob ε)."""

    def __init__(
        self,
        num_sets: int,
        num_ways: int,
        rng: Optional[DeterministicRng] = None,
        epsilon: float = 1.0 / 64.0,
        rrpv_bits: int = 2,
    ) -> None:
        super().__init__(num_sets, num_ways, rrpv_bits)
        self._rng = rng or DeterministicRng(seed=0xB441)
        self.epsilon = epsilon

    def on_insert(self, set_idx: int, way: int, core_id: int = -1) -> None:
        if self._rng.chance(self.epsilon):
            self._insert_long(set_idx, way)
        else:
            self._insert_distant(set_idx, way)


class DrripPolicy(_RripBase):
    """Dynamic RRIP: set dueling between SRRIP and BRRIP insertion."""

    def __init__(
        self,
        num_sets: int,
        num_ways: int,
        num_threads: int = 1,
        rng: Optional[DeterministicRng] = None,
        psel_bits: int = 10,
        epsilon: float = 1.0 / 64.0,
        leaders_per_policy: int = 32,
        rrpv_bits: int = 2,
    ) -> None:
        super().__init__(num_sets, num_ways, rrpv_bits)
        self._rng = rng or DeterministicRng(seed=0xD441)
        self.epsilon = epsilon
        self.num_threads = num_threads
        self.selectors = [PolicySelector(psel_bits) for _ in range(num_threads)]
        self.dueling = DuelingMap(num_sets, num_threads, leaders_per_policy)

    def _thread(self, core_id: int) -> int:
        return core_id % self.num_threads if core_id >= 0 else 0

    def _insert_brrip(self, set_idx: int, way: int) -> None:
        if self._rng.chance(self.epsilon):
            self._insert_long(set_idx, way)
        else:
            self._insert_distant(set_idx, way)

    def on_insert(self, set_idx: int, way: int, core_id: int = -1) -> None:
        role, _owner = self.dueling.role(set_idx)
        if role == DuelingMap.LEADER_A:
            self._insert_long(set_idx, way)
        elif role == DuelingMap.LEADER_B:
            self._insert_brrip(set_idx, way)
        elif self.selectors[self._thread(core_id)].prefers_second:
            self._insert_brrip(set_idx, way)
        else:
            self._insert_long(set_idx, way)

    def note_miss(self, set_idx: int, core_id: int = -1) -> None:
        role, owner = self.dueling.role(set_idx)
        if role == DuelingMap.FOLLOWER or owner != self._thread(core_id):
            return
        if role == DuelingMap.LEADER_A:
            self.selectors[owner].vote_up()
        else:
            self.selectors[owner].vote_down()


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection (testing/ablation aid)."""

    def __init__(
        self, num_sets: int, num_ways: int, rng: Optional[DeterministicRng] = None
    ) -> None:
        super().__init__(num_sets, num_ways)
        self._rng = rng or DeterministicRng(seed=0x4A4D)

    def on_hit(self, set_idx: int, way: int, core_id: int = -1) -> None:
        pass

    def on_insert(self, set_idx: int, way: int, core_id: int = -1) -> None:
        pass

    def victim_way(self, set_idx: int) -> int:
        return self._rng.randint(0, self.num_ways - 1)


def make_policy(
    name: str,
    num_sets: int,
    num_ways: int,
    num_threads: int = 1,
    rng: Optional[DeterministicRng] = None,
) -> ReplacementPolicy:
    """Factory keyed by the policy names used in configs and Table 2."""
    key = name.lower()
    if key == "lru":
        return LruPolicy(num_sets, num_ways)
    if key == "bip":
        return BipPolicy(num_sets, num_ways, rng=rng)
    if key in ("dip", "tadip"):
        return DipPolicy(num_sets, num_ways, num_threads=max(1, num_threads), rng=rng)
    if key == "srrip":
        return SrripPolicy(num_sets, num_ways)
    if key == "brrip":
        return BrripPolicy(num_sets, num_ways, rng=rng)
    if key == "drrip":
        return DrripPolicy(num_sets, num_ways, num_threads=max(1, num_threads), rng=rng)
    if key == "random":
        return RandomPolicy(num_sets, num_ways, rng=rng)
    raise ValueError(f"unknown replacement policy {name!r}")
