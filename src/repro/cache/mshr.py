"""Miss Status Holding Registers.

Caps the number of outstanding misses (paper Table 1: 32 at the L1) and
merges requests to a block that already has a miss in flight, so one fill
wakes every waiting consumer.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.utils.stats import StatGroup


class MshrFile:
    """Outstanding-miss tracking with same-block merging.

    ``capacity == 0`` means unlimited (used where the paper gives no bound).
    """

    def __init__(self, capacity: int, name: str = "mshr") -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._pending: Dict[int, List[Callable[[int], None]]] = {}
        self.stats = StatGroup(name)
        # Per-miss stats, bound lazily (see Cache for rationale).
        self._c_merged = None
        self._c_allocated = None
        self._d_occupancy = None

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def is_full(self) -> bool:
        return self.capacity > 0 and len(self._pending) >= self.capacity

    def outstanding(self, addr: int) -> bool:
        return addr in self._pending

    def can_allocate(self, addr: int) -> bool:
        """A new request fits if it merges or a register is free."""
        return addr in self._pending or not self.is_full

    def allocate(self, addr: int, on_fill: Callable[[int], None]) -> bool:
        """Register interest in ``addr``.

        Returns:
            True if this created a *new* miss (the caller must fetch the
            block); False if it merged into an existing one.

        Raises:
            RuntimeError: if the file is full and the address is not pending.
        """
        waiters = self._pending.get(addr)
        if waiters is not None:
            waiters.append(on_fill)
            counter = self._c_merged
            if counter is None:
                counter = self._c_merged = self.stats.counter("merged")
            counter.value += 1
            return False
        if self.is_full:
            raise RuntimeError("MSHR file full; caller must check can_allocate")
        self._pending[addr] = [on_fill]
        counter = self._c_allocated
        if counter is None:
            counter = self._c_allocated = self.stats.counter("allocated")
        counter.value += 1
        dist = self._d_occupancy
        if dist is None:
            dist = self._d_occupancy = self.stats.distribution("occupancy")
        dist.record(len(self._pending))
        return True

    def complete(self, addr: int) -> int:
        """The fill for ``addr`` arrived; fire all waiters. Returns count."""
        waiters = self._pending.pop(addr, None)
        if waiters is None:
            raise KeyError(f"no outstanding miss for block {addr}")
        for waiter in waiters:
            waiter(addr)
        return len(waiters)
