"""Set-associative cache substrate.

Functional tag stores plus the pieces the timing simulator composes:

* :class:`CacheConfig` / :class:`Cache` — a set-associative cache level with a
  pluggable replacement policy.
* Replacement policies: LRU, Random, BIP, DIP / TA-DIP (set dueling),
  SRRIP / BRRIP / DRRIP.
* :class:`TagPort` — the shared LLC tag-port model; every tag lookup (demand,
  writeback probe, proactive-writeback probe) occupies the port, which is how
  the simulation exposes the lookup-amplification of DAWB/VWQ versus DBI.
* :class:`MshrFile` — miss-status holding registers with same-block merging.

The *dirty bit* lives in :class:`repro.cache.block.CacheBlock` for
conventional organizations; DBI-based mechanisms leave it unused and track
dirtiness in :class:`repro.core.dbi.DirtyBlockIndex` instead (paper Figure 1).
"""

from repro.cache.block import CacheBlock
from repro.cache.cache import Cache, EvictedBlock
from repro.cache.config import (
    CacheConfig,
    paper_l1_config,
    paper_l2_config,
    paper_llc_config,
)
from repro.cache.mshr import MshrFile
from repro.cache.port import PortPriority, TagPort
from repro.cache.replacement import (
    BipPolicy,
    BrripPolicy,
    DipPolicy,
    DrripPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    SrripPolicy,
    make_policy,
)

__all__ = [
    "Cache",
    "CacheBlock",
    "CacheConfig",
    "EvictedBlock",
    "MshrFile",
    "PortPriority",
    "TagPort",
    "ReplacementPolicy",
    "LruPolicy",
    "RandomPolicy",
    "BipPolicy",
    "DipPolicy",
    "SrripPolicy",
    "BrripPolicy",
    "DrripPolicy",
    "make_policy",
    "paper_l1_config",
    "paper_l2_config",
    "paper_llc_config",
]
