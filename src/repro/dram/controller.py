"""Event-driven memory controller.

Services a read queue and a write buffer over a set of banks sharing one data
bus. Operates in two phases (paper Table 1, "drain when full" policy [27]):

* ``READ``: demand reads are scheduled FR-FCFS; writes accumulate in the
  write buffer. If the read queue is empty the controller opportunistically
  drains writes so simulations always terminate.
* ``WRITE_DRAIN``: entered when the write buffer fills; writes are scheduled
  FR-FCFS until the buffer reaches the low watermark, then reads resume.
  Reads arriving during a drain wait — this is the write-caused interference
  that DRAM-aware writeback mitigates.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.dram.address import AddressMapper
from repro.dram.bank import Bank
from repro.dram.config import DramConfig
from repro.dram.request import MemoryRequest
from repro.dram.scheduler import select_fr_fcfs
from repro.dram.writebuffer import WriteBuffer
from repro.utils.events import Event, EventQueue
from repro.utils.stats import StatGroup


class Phase(enum.Enum):
    """Controller scheduling phase."""

    READ = "read"
    WRITE_DRAIN = "write_drain"


class MemoryController:
    """One memory channel: banks + data bus + read queue + write buffer."""

    def __init__(
        self,
        queue: EventQueue,
        config: DramConfig = None,
        name: str = "dram",
    ) -> None:
        self.queue = queue
        self.config = config or DramConfig()
        self.mapper = AddressMapper(self.config)
        self.banks: List[Bank] = [
            Bank(i, self.config) for i in range(self.config.num_banks)
        ]
        self.read_queue: List[MemoryRequest] = []
        self.write_buffer = WriteBuffer(self.config.write_buffer_entries)
        self.phase = Phase.READ
        self.bus_free_time = 0
        self._last_was_write: Optional[bool] = None
        # Recent ACTIVATE issue times, newest last (tRRD / tFAW windows).
        self._recent_activates: List[int] = []
        self.stats = StatGroup(name)
        self._wake_event: Optional[Event] = None
        # Hot-path stats, bound to their Counter/RateStat object on first
        # use (lazily, so the exported stat set stays byte-identical to
        # creation-on-first-increment).
        self._c_reads = None
        self._c_writes = None
        self._c_activates = None
        self._c_bus_turnarounds = None
        self._c_dram_writes = None
        self._c_dram_reads = None
        self._r_write_row_hit = None
        self._r_read_row_hit = None
        self._d_read_latency = None

    # ------------------------------------------------------------------ API

    def _decode(self, request: MemoryRequest) -> None:
        """Cache the request's (bank, row) so scheduling never re-decodes."""
        addr = request.block_addr
        request.bank = self.banks[self.mapper.bank_of(addr)]
        request.row = self.mapper.row_of(addr)

    def enqueue_read(self, request: MemoryRequest) -> None:
        """Accept a demand read. Forwards from the write buffer when possible."""
        request.arrival_time = self.queue.now
        counter = self._c_reads
        if counter is None:
            counter = self._c_reads = self.stats.counter("reads")
        counter.value += 1
        if self.write_buffer.contains(request.block_addr):
            # Data is newer in the write buffer than in DRAM; forward it.
            self.stats.counter("reads_forwarded_from_write_buffer").increment()
            self._complete_read(request, self.queue.now + self.config.t_burst)
            return
        self._decode(request)
        self.read_queue.append(request)
        self._kick()

    def can_accept_write(self) -> bool:
        """Whether a new (non-coalescing) write would fit in the buffer."""
        return not self.write_buffer.is_full

    def enqueue_write(self, request: MemoryRequest) -> bool:
        """Accept a writeback into the write buffer.

        Returns:
            False if the buffer is full and the write does not coalesce; the
            caller must retry later (back-pressure).
        """
        request.arrival_time = self.queue.now
        if self.write_buffer.contains(request.block_addr):
            self.write_buffer.add(request)  # coalesce
            self.stats.counter("writes_coalesced").increment()
            return True
        if self.write_buffer.is_full:
            self.stats.counter("writes_rejected").increment()
            return False
        self._decode(request)
        self.write_buffer.add(request)
        counter = self._c_writes
        if counter is None:
            counter = self._c_writes = self.stats.counter("writes")
        counter.value += 1
        self._update_phase()
        self._kick()
        return True

    @property
    def pending_reads(self) -> int:
        return len(self.read_queue)

    @property
    def pending_writes(self) -> int:
        return len(self.write_buffer)

    def is_idle(self) -> bool:
        """True when no work is queued or in flight (end-of-run check)."""
        return not self.read_queue and self.write_buffer.is_empty

    # ------------------------------------------------------------ scheduling

    def _kick(self) -> None:
        """Ensure a scheduling pass runs at the current cycle."""
        self._schedule_wake(self.queue.now)

    def _schedule_wake(self, time: int) -> None:
        if self._wake_event is not None and not self._wake_event.cancelled:
            if self._wake_event.time <= time:
                return  # an earlier-or-equal wake is already pending
            self._wake_event.cancel()
        self._wake_event = self.queue.schedule(time, self._wake)

    def _wake(self) -> None:
        self._wake_event = None
        self._dispatch()

    def _update_phase(self) -> None:
        if self.phase is Phase.READ and self.write_buffer.is_full:
            self.phase = Phase.WRITE_DRAIN
            self.stats.counter("write_drain_phases").increment()
        elif (
            self.phase is Phase.WRITE_DRAIN
            and len(self.write_buffer) <= self.config.drain_low_watermark
        ):
            self.phase = Phase.READ

    def _candidates(self) -> List[MemoryRequest]:
        """Requests eligible for scheduling in the current phase.

        Returns live internal queues (never mutated while a scheduling scan
        iterates them) rather than snapshots — the old per-pass
        ``peek_all()`` copy was pure allocation churn.
        """
        if self.phase is Phase.WRITE_DRAIN:
            return self.write_buffer.entries
        if self.read_queue:
            return self.read_queue
        # Read phase with an empty read queue: drain writes opportunistically.
        return self.write_buffer.entries

    def _dispatch(self) -> None:
        """Issue as many requests as bank availability allows, then re-arm.

        Runs once per controller wake, scanning every pending request per
        pass — the phase update and candidate selection (`_update_phase` /
        `_candidates`) are inlined here because the call overhead alone was
        visible in whole-simulation profiles.
        """
        banks = self.banks
        mapper = self.mapper
        write_buffer = self.write_buffer
        wb_entries = write_buffer.entries
        read_queue = self.read_queue
        capacity = write_buffer.capacity
        low_watermark = self.config.drain_low_watermark
        now = self.queue.now
        while True:
            phase = self.phase
            if phase is Phase.READ:
                if len(wb_entries) >= capacity:
                    self.phase = phase = Phase.WRITE_DRAIN
                    self.stats.counter("write_drain_phases").increment()
            elif len(wb_entries) <= low_watermark:
                self.phase = phase = Phase.READ
            if phase is Phase.WRITE_DRAIN:
                candidates = wb_entries
            elif read_queue:
                candidates = read_queue
            else:
                # Read phase, empty read queue: drain writes opportunistically.
                candidates = wb_entries
            if not candidates:
                return
            request = select_fr_fcfs(candidates, banks, mapper, now)
            if request is None:
                break
            if request.row != request.bank.open_row:
                # Row miss: an ACTIVATE is needed; honour tRRD/tFAW.
                act_ready = self._activate_ready_time()
                if act_ready > now:
                    # Wake at the ACT window or when a bank frees (a row
                    # hit may become issueable first), whichever is sooner.
                    busy = [b.busy_until for b in banks if b.busy_until > now]
                    self._schedule_wake(min([act_ready] + busy))
                    return
            self._issue(request)
        # The banks we need are blocked: wake when the first candidate's
        # bank becomes ready (command slot and write recovery considered).
        wake_at = None
        for request in candidates:
            bank = request.bank
            ready = bank.busy_until
            if request.row != bank.open_row and bank.write_recovery_until > ready:
                ready = bank.write_recovery_until
            if ready > now and (wake_at is None or ready < wake_at):
                wake_at = ready
        self._schedule_wake(wake_at if wake_at is not None else now + 1)

    def _activate_ready_time(self) -> int:
        """Earliest cycle the next ACTIVATE may issue (tRRD / tFAW)."""
        ready = 0
        if self._recent_activates:
            ready = self._recent_activates[-1] + self.config.t_rrd
        if len(self._recent_activates) >= 4:
            ready = max(ready, self._recent_activates[-4] + self.config.t_faw)
        return ready

    def _record_activate(self, when: int) -> None:
        self._recent_activates.append(when)
        if len(self._recent_activates) > 4:
            del self._recent_activates[0]
        counter = self._c_activates
        if counter is None:
            counter = self._c_activates = self.stats.counter("activates")
        counter.value += 1

    def _issue(self, request: MemoryRequest) -> None:
        now = self.queue.now
        bank = request.bank
        row = request.row
        row_hit = row == bank.open_row
        if not row_hit:
            self._record_activate(now)

        # Bank-side prep (precharge/activate/CAS) can overlap other banks'
        # bursts; the burst itself serializes on the shared data bus, with a
        # turnaround penalty when the bus switches direction.
        data_ready = bank.perform_access(row, now)
        bus_ready = self.bus_free_time
        if self._last_was_write is not None and (
            self._last_was_write != request.is_write
        ):
            bus_ready += self.config.t_turnaround
            counter = self._c_bus_turnarounds
            if counter is None:
                counter = self._c_bus_turnarounds = self.stats.counter(
                    "bus_turnarounds"
                )
            counter.value += 1
        burst_start = max(data_ready, bus_ready)
        finish = burst_start + self.config.t_burst
        self.bus_free_time = finish
        self._last_was_write = request.is_write
        if request.is_write:
            # Write recovery: this bank cannot precharge (change rows) until
            # tWR after the burst; same-row accesses stream unimpeded.
            bank.write_recovery_until = finish + self.config.t_wr

        request.issue_time = now
        request.complete_time = finish
        if request.is_write:
            self.write_buffer.remove(request)
            rate = self._r_write_row_hit
            if rate is None:
                rate = self._r_write_row_hit = self.stats.rate("write_row_hit_rate")
            rate.total += 1
            if row_hit:
                rate.hits += 1
            counter = self._c_dram_writes
            if counter is None:
                counter = self._c_dram_writes = self.stats.counter(
                    "dram_writes_performed"
                )
            counter.value += 1
        else:
            self.read_queue.remove(request)
            rate = self._r_read_row_hit
            if rate is None:
                rate = self._r_read_row_hit = self.stats.rate("read_row_hit_rate")
            rate.total += 1
            if row_hit:
                rate.hits += 1
            counter = self._c_dram_reads
            if counter is None:
                counter = self._c_dram_reads = self.stats.counter(
                    "dram_reads_performed"
                )
            counter.value += 1
            self._complete_read(request, finish + self.config.bus_queue_latency)

    def _complete_read(self, request: MemoryRequest, when: int) -> None:
        request.complete_time = when
        dist = self._d_read_latency
        if dist is None:
            dist = self._d_read_latency = self.stats.distribution("read_latency")
        dist.record(when - request.arrival_time)
        if request.on_complete is not None:
            self.queue.schedule(when, request.fire_completion)
