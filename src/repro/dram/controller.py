"""Event-driven memory controller.

Services a read queue and a write buffer over a set of banks sharing one data
bus. Operates in two phases (paper Table 1, "drain when full" policy [27]):

* ``READ``: demand reads are scheduled FR-FCFS; writes accumulate in the
  write buffer. If the read queue is empty the controller opportunistically
  drains writes so simulations always terminate.
* ``WRITE_DRAIN``: entered when the write buffer fills; writes are scheduled
  FR-FCFS until the buffer reaches the low watermark, then reads resume.
  Reads arriving during a drain wait — this is the write-caused interference
  that DRAM-aware writeback mitigates.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.dram.address import AddressMapper
from repro.dram.bank import Bank
from repro.dram.config import DramConfig
from repro.dram.request import MemoryRequest
from repro.dram.scheduler import select_fr_fcfs
from repro.dram.writebuffer import WriteBuffer
from repro.utils.events import Event, EventQueue
from repro.utils.stats import StatGroup


class Phase(enum.Enum):
    """Controller scheduling phase."""

    READ = "read"
    WRITE_DRAIN = "write_drain"


class MemoryController:
    """One memory channel: banks + data bus + read queue + write buffer."""

    def __init__(
        self,
        queue: EventQueue,
        config: DramConfig = None,
        name: str = "dram",
    ) -> None:
        self.queue = queue
        self.config = config or DramConfig()
        self.mapper = AddressMapper(self.config)
        self.banks: List[Bank] = [
            Bank(i, self.config) for i in range(self.config.num_banks)
        ]
        self.read_queue: List[MemoryRequest] = []
        self.write_buffer = WriteBuffer(self.config.write_buffer_entries)
        self.phase = Phase.READ
        self.bus_free_time = 0
        self._last_was_write: Optional[bool] = None
        # Recent ACTIVATE issue times, newest last (tRRD / tFAW windows).
        self._recent_activates: List[int] = []
        self.stats = StatGroup(name)
        self._wake_event: Optional[Event] = None

    # ------------------------------------------------------------------ API

    def enqueue_read(self, request: MemoryRequest) -> None:
        """Accept a demand read. Forwards from the write buffer when possible."""
        request.arrival_time = self.queue.now
        self.stats.counter("reads").increment()
        if self.write_buffer.contains(request.block_addr):
            # Data is newer in the write buffer than in DRAM; forward it.
            self.stats.counter("reads_forwarded_from_write_buffer").increment()
            self._complete_read(request, self.queue.now + self.config.t_burst)
            return
        self.read_queue.append(request)
        self._kick()

    def can_accept_write(self) -> bool:
        """Whether a new (non-coalescing) write would fit in the buffer."""
        return not self.write_buffer.is_full

    def enqueue_write(self, request: MemoryRequest) -> bool:
        """Accept a writeback into the write buffer.

        Returns:
            False if the buffer is full and the write does not coalesce; the
            caller must retry later (back-pressure).
        """
        request.arrival_time = self.queue.now
        if self.write_buffer.contains(request.block_addr):
            self.write_buffer.add(request)  # coalesce
            self.stats.counter("writes_coalesced").increment()
            return True
        if self.write_buffer.is_full:
            self.stats.counter("writes_rejected").increment()
            return False
        self.write_buffer.add(request)
        self.stats.counter("writes").increment()
        self._update_phase()
        self._kick()
        return True

    @property
    def pending_reads(self) -> int:
        return len(self.read_queue)

    @property
    def pending_writes(self) -> int:
        return len(self.write_buffer)

    def is_idle(self) -> bool:
        """True when no work is queued or in flight (end-of-run check)."""
        return not self.read_queue and self.write_buffer.is_empty

    # ------------------------------------------------------------ scheduling

    def _kick(self) -> None:
        """Ensure a scheduling pass runs at the current cycle."""
        self._schedule_wake(self.queue.now)

    def _schedule_wake(self, time: int) -> None:
        if self._wake_event is not None and not self._wake_event.cancelled:
            if self._wake_event.time <= time:
                return  # an earlier-or-equal wake is already pending
            self._wake_event.cancel()
        self._wake_event = self.queue.schedule(time, self._wake)

    def _wake(self) -> None:
        self._wake_event = None
        self._dispatch()

    def _update_phase(self) -> None:
        if self.phase is Phase.READ and self.write_buffer.is_full:
            self.phase = Phase.WRITE_DRAIN
            self.stats.counter("write_drain_phases").increment()
        elif (
            self.phase is Phase.WRITE_DRAIN
            and len(self.write_buffer) <= self.config.drain_low_watermark
        ):
            self.phase = Phase.READ

    def _candidates(self) -> List[MemoryRequest]:
        """Requests eligible for scheduling in the current phase."""
        if self.phase is Phase.WRITE_DRAIN:
            return self.write_buffer.peek_all()
        if self.read_queue:
            return self.read_queue
        # Read phase with an empty read queue: drain writes opportunistically.
        return self.write_buffer.peek_all()

    def _dispatch(self) -> None:
        """Issue as many requests as bank availability allows, then re-arm."""
        issued = True
        while issued:
            issued = False
            self._update_phase()
            candidates = self._candidates()
            if not candidates:
                return
            request = select_fr_fcfs(candidates, self.banks, self.mapper, self.queue.now)
            if request is not None:
                bank = self.banks[self.mapper.bank_of(request.block_addr)]
                row = self.mapper.row_of(request.block_addr)
                if not bank.would_hit(row):
                    # Row miss: an ACTIVATE is needed; honour tRRD/tFAW.
                    act_ready = self._activate_ready_time()
                    if act_ready > self.queue.now:
                        # Wake at the ACT window or when a bank frees (a row
                        # hit may become issueable first), whichever is sooner.
                        now = self.queue.now
                        busy = [
                            b.busy_until for b in self.banks if b.busy_until > now
                        ]
                        self._schedule_wake(min([act_ready] + busy))
                        return
                self._issue(request)
                issued = True
        # The banks we need are blocked: wake when the first candidate's
        # bank becomes ready (command slot and write recovery considered).
        now = self.queue.now
        ready_times = []
        for request in self._candidates():
            bank = self.banks[self.mapper.bank_of(request.block_addr)]
            ready_times.append(bank.ready_time(self.mapper.row_of(request.block_addr)))
        future = [t for t in ready_times if t > now]
        self._schedule_wake(min(future) if future else now + 1)

    def _activate_ready_time(self) -> int:
        """Earliest cycle the next ACTIVATE may issue (tRRD / tFAW)."""
        ready = 0
        if self._recent_activates:
            ready = self._recent_activates[-1] + self.config.t_rrd
        if len(self._recent_activates) >= 4:
            ready = max(ready, self._recent_activates[-4] + self.config.t_faw)
        return ready

    def _record_activate(self, when: int) -> None:
        self._recent_activates.append(when)
        if len(self._recent_activates) > 4:
            del self._recent_activates[0]
        self.stats.counter("activates").increment()

    def _issue(self, request: MemoryRequest) -> None:
        now = self.queue.now
        bank = self.banks[self.mapper.bank_of(request.block_addr)]
        row = self.mapper.row_of(request.block_addr)
        row_hit = bank.would_hit(row)
        if not row_hit:
            self._record_activate(now)

        # Bank-side prep (precharge/activate/CAS) can overlap other banks'
        # bursts; the burst itself serializes on the shared data bus, with a
        # turnaround penalty when the bus switches direction.
        data_ready = bank.perform_access(row, now)
        bus_ready = self.bus_free_time
        if self._last_was_write is not None and (
            self._last_was_write != request.is_write
        ):
            bus_ready += self.config.t_turnaround
            self.stats.counter("bus_turnarounds").increment()
        burst_start = max(data_ready, bus_ready)
        finish = burst_start + self.config.t_burst
        self.bus_free_time = finish
        self._last_was_write = request.is_write
        if request.is_write:
            # Write recovery: this bank cannot precharge (change rows) until
            # tWR after the burst; same-row accesses stream unimpeded.
            bank.write_recovery_until = finish + self.config.t_wr

        request.issue_time = now
        request.complete_time = finish
        if request.is_write:
            self.write_buffer.remove(request)
            self.stats.rate("write_row_hit_rate").record(row_hit)
            self.stats.counter("dram_writes_performed").increment()
        else:
            self.read_queue.remove(request)
            self.stats.rate("read_row_hit_rate").record(row_hit)
            self.stats.counter("dram_reads_performed").increment()
            self._complete_read(request, finish + self.config.bus_queue_latency)

    def _complete_read(self, request: MemoryRequest, when: int) -> None:
        request.complete_time = when
        self.stats.distribution("read_latency").record(when - request.arrival_time)
        if request.on_complete is not None:
            self.queue.schedule(when, lambda req=request: req.on_complete(req))
