"""DDR3-style main-memory model.

The model captures the structure that matters for the Dirty-Block Index paper:

* banks with open-row policy and row buffers (row hits are much cheaper than
  row misses),
* an FR-FCFS scheduler (row hits first, then oldest-first),
* a write buffer with a drain-when-full policy — the memory controller
  services reads until the write buffer fills, then switches to a write-drain
  phase, which is when write row locality pays off.

Addresses everywhere in the simulator are *block* addresses (byte address
divided by the cache block size); :class:`AddressMapper` translates a block
address into (bank, row, column) with row interleaving, so consecutive DRAM
rows land on different banks while the blocks of one row share a bank.
"""

from repro.dram.address import AddressMapper
from repro.dram.bank import Bank
from repro.dram.config import DramConfig
from repro.dram.controller import MemoryController, Phase
from repro.dram.request import MemoryRequest
from repro.dram.writebuffer import WriteBuffer

__all__ = [
    "AddressMapper",
    "Bank",
    "DramConfig",
    "MemoryController",
    "MemoryRequest",
    "Phase",
    "WriteBuffer",
]
