"""Block-address to DRAM-coordinate mapping with row interleaving.

The paper's controller uses "open row, row interleaving" (Table 1): the
blocks of one DRAM row are contiguous in the physical address space and sit in
one bank, while consecutive rows rotate across banks. Because a cache set
index is taken from the *low* bits of the block address, the blocks of one
DRAM row scatter across many cache sets — the very property that makes
DRAM-aware writeback hard without a DBI (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.config import DramConfig
from repro.utils.bits import ilog2


@dataclass(frozen=True)
class DramCoordinates:
    """Decoded location of one cache block in DRAM."""

    bank: int
    row: int  # row index within the bank
    column: int  # block index within the row
    global_row_id: int  # unique across banks; what DBI/row-locality key on


class AddressMapper:
    """Maps block addresses to (bank, row, column) and back."""

    def __init__(self, config: DramConfig) -> None:
        self._config = config
        self._row_shift = ilog2(config.row_buffer_blocks)
        self._bank_mask = config.num_banks - 1
        self._bank_shift = ilog2(config.num_banks)
        self._column_mask = config.row_buffer_blocks - 1

    @property
    def blocks_per_row(self) -> int:
        return self._config.row_buffer_blocks

    def global_row_id(self, block_addr: int) -> int:
        """Unique id of the DRAM row containing ``block_addr``."""
        return block_addr >> self._row_shift

    def decode(self, block_addr: int) -> DramCoordinates:
        """Full decode of a block address."""
        row_seq = block_addr >> self._row_shift
        return DramCoordinates(
            bank=row_seq & self._bank_mask,
            row=row_seq >> self._bank_shift,
            column=block_addr & self._column_mask,
            global_row_id=row_seq,
        )

    def bank_of(self, block_addr: int) -> int:
        """Bank index only (hot path in the scheduler)."""
        return (block_addr >> self._row_shift) & self._bank_mask

    def row_of(self, block_addr: int) -> int:
        """Per-bank row index only."""
        return (block_addr >> self._row_shift) >> self._bank_shift

    def block_of(self, global_row_id: int, column: int) -> int:
        """Inverse mapping: block address of ``column`` within a global row."""
        if not 0 <= column < self._config.row_buffer_blocks:
            raise ValueError(
                f"column {column} out of range for row of "
                f"{self._config.row_buffer_blocks} blocks"
            )
        return (global_row_id << self._row_shift) | column

    def row_span(self, block_addr: int):
        """Iterate all block addresses sharing ``block_addr``'s DRAM row."""
        base = (block_addr >> self._row_shift) << self._row_shift
        return range(base, base + self._config.row_buffer_blocks)
