"""DRAM configuration.

Timings are expressed in **CPU cycles**. The paper's system runs a 2.67 GHz
core against DDR3-1066 (533 MHz bus clock), a CPU:DRAM clock ratio of ~5, so
typical 7-7-7 DDR3 timings become ~35 CPU cycles each and an 8-beat burst on
an 8-byte bus (one 64 B cache block) occupies the data bus for ~20 CPU cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_range,
)


@dataclass(frozen=True)
class DramConfig:
    """Parameters of one memory channel (paper Table 1: 1 channel, 1 rank).

    Attributes:
        num_banks: banks per channel.
        row_buffer_blocks: cache blocks per DRAM row (8 KB row / 64 B = 128).
        t_rcd: ACTIVATE-to-READ delay, CPU cycles.
        t_rp: PRECHARGE latency, CPU cycles.
        t_cas: column access (CAS) latency, CPU cycles.
        t_burst: data-bus occupancy of one block transfer, CPU cycles.
        t_wr: write recovery — extra cycles a bank stays busy after a write
            burst before it can precharge/activate (DDR3 tWR). This is what
            makes row-miss-heavy write drains bank-bound and row-hit drains
            cheap — the asymmetry DRAM-aware writeback exploits.
        t_turnaround: data-bus penalty when switching between read and write
            bursts (tWTR/tRTW); batching writes amortizes it.
        t_rrd: minimum spacing between ACTIVATEs to different banks.
        t_faw: four-activate window — at most four ACTIVATEs may issue per
            ``t_faw`` cycles. Together with ``t_rrd`` this caps the row-miss
            service rate, which is what makes row-miss-heavy write drains
            slow and row-hit drains fast.
        write_buffer_entries: memory-controller write buffer capacity.
        drain_low_watermark: write-drain phase ends when buffer falls to this
            level ("drain when full" from the paper drains to empty, i.e. 0).
        bus_queue_latency: fixed queuing/propagation overhead per request.
    """

    num_banks: int = 8
    row_buffer_blocks: int = 128
    t_rcd: int = 35
    t_rp: int = 35
    t_cas: int = 35
    t_burst: int = 20
    t_wr: int = 40
    t_turnaround: int = 14
    t_rrd: int = 20
    t_faw: int = 100
    write_buffer_entries: int = 64
    drain_low_watermark: int = 0
    bus_queue_latency: int = 10

    def __post_init__(self) -> None:
        check_power_of_two("num_banks", self.num_banks)
        check_power_of_two("row_buffer_blocks", self.row_buffer_blocks)
        for field_name in ("t_rcd", "t_rp", "t_cas", "t_burst"):
            check_positive(field_name, getattr(self, field_name))
        check_non_negative("t_wr", self.t_wr)
        check_non_negative("t_turnaround", self.t_turnaround)
        check_non_negative("t_rrd", self.t_rrd)
        check_non_negative("t_faw", self.t_faw)
        check_positive("write_buffer_entries", self.write_buffer_entries)
        check_non_negative("bus_queue_latency", self.bus_queue_latency)
        check_range(
            "drain_low_watermark",
            self.drain_low_watermark,
            0,
            self.write_buffer_entries - 1,
        )

    @property
    def row_hit_latency(self) -> int:
        """Bank-side latency of a row-buffer hit (CAS + burst)."""
        return self.t_cas + self.t_burst

    @property
    def row_miss_latency(self) -> int:
        """Bank-side latency of a row conflict (precharge + activate + CAS + burst)."""
        return self.t_rp + self.t_rcd + self.t_cas + self.t_burst

    @property
    def row_closed_latency(self) -> int:
        """Bank-side latency when the bank has no open row (activate + CAS + burst)."""
        return self.t_rcd + self.t_cas + self.t_burst
