"""FR-FCFS request selection.

First-Ready, First-Come-First-Served [45, 60]: among requests whose bank is
available, prefer row-buffer hits; break ties by arrival order. Implemented
as a pure function over a candidate list so it can be unit-tested in
isolation from the event-driven controller.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.dram.address import AddressMapper
from repro.dram.bank import Bank
from repro.dram.request import MemoryRequest


def select_fr_fcfs(
    candidates: Sequence[MemoryRequest],
    banks: List[Bank],
    mapper: AddressMapper,
    now: int,
) -> Optional[MemoryRequest]:
    """Pick the next request to issue, or None if no bank is ready.

    Args:
        candidates: pending requests in arrival (FIFO) order.
        banks: bank state; a request is schedulable only if its bank is free.
        mapper: address decode.
        now: current cycle.

    Returns:
        The first row-hit request whose bank is free, else the oldest request
        whose bank is free, else None.
    """
    # This scan runs on every controller dispatch pass over every pending
    # request, so the bank-readiness checks are inlined rather than going
    # through Bank.is_ready/would_hit, and the (bank, row) decode is cached
    # on the request (the controller fills it in on acceptance; requests
    # built directly by tests are decoded here on first sight).
    oldest_ready: Optional[MemoryRequest] = None
    for request in candidates:
        bank = request.bank
        if bank is None:
            addr = request.block_addr
            bank = request.bank = banks[mapper.bank_of(addr)]
            request.row = mapper.row_of(addr)
        row = request.row
        if row == bank.open_row:
            if bank.busy_until <= now:
                return request  # first-ready row hit wins immediately
        elif (
            bank.busy_until <= now
            and bank.write_recovery_until <= now
            and oldest_ready is None
        ):
            oldest_ready = request
    return oldest_ready


def earliest_bank_free(banks: List[Bank]) -> int:
    """Earliest cycle at which any bank becomes free (for wake-up scheduling)."""
    return min(bank.busy_until for bank in banks)
