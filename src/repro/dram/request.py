"""Memory request record exchanged between the LLC and the memory controller."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(eq=False)
class MemoryRequest:
    """One block-sized read or write issued to the memory controller.

    Attributes:
        block_addr: block address (byte address / block size).
        is_write: True for a writeback, False for a demand/fill read.
        core_id: originating core (for per-core stats); -1 for writebacks that
            have no single originator.
        arrival_time: cycle the request entered the controller queue.
        on_complete: callback fired (with this request) when data returns;
            writes typically pass None.
        issue_time / complete_time: filled in by the controller for stats.

    Requests compare by identity (``eq=False``): each is a unique in-flight
    transaction, and the controller's queue removals must not pay a
    field-by-field comparison per scanned entry.
    """

    block_addr: int
    is_write: bool
    core_id: int = -1
    arrival_time: int = 0
    on_complete: Optional[Callable[["MemoryRequest"], None]] = field(
        default=None, repr=False
    )
    issue_time: Optional[int] = None
    complete_time: Optional[int] = None
    #: Cached address decode, filled in by the controller on acceptance so
    #: the FR-FCFS scan does not re-decode every candidate on every pass.
    #: ``bank`` is the Bank object itself; ``row`` its per-bank row index.
    bank: Optional[object] = field(default=None, repr=False, compare=False)
    row: Optional[int] = field(default=None, repr=False, compare=False)

    def fire_completion(self) -> None:
        """Invoke ``on_complete`` with this request.

        Scheduled as an event callback by the controller; a bound method of
        a plain dataclass, unlike the closure it replaced, survives pickling
        (see :mod:`repro.checkpoint`).
        """
        self.on_complete(self)

    @property
    def latency(self) -> Optional[int]:
        """Queue-to-data latency once completed, else None."""
        if self.complete_time is None:
            return None
        return self.complete_time - self.arrival_time
