"""A single DRAM bank with an open-row policy.

Timing model. Each access issues at ``start`` (when the bank is free):

* row hit: CAS issues immediately; data is ready ``t_cas`` later.
* closed bank: ACTIVATE (``t_rcd``) then CAS.
* row conflict: PRECHARGE (``t_rp``), ACTIVATE, then CAS.

The bank can accept its next command ``t_burst`` after the CAS issues
(DDR3's tCCD equals the burst length), so back-to-back row hits stream at
burst granularity while conflicts serialize behind precharge+activate. The
shared data bus is modelled by the controller, not here.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.config import DramConfig


class Bank:
    """Tracks the open row and command occupancy of one bank."""

    __slots__ = ("bank_id", "_config", "open_row", "busy_until",
                 "write_recovery_until", "row_hits", "row_conflicts")

    def __init__(self, bank_id: int, config: DramConfig) -> None:
        self.bank_id = bank_id
        self._config = config
        self.open_row: Optional[int] = None  # per-bank row index
        self.busy_until = 0  # earliest cycle the next command may issue
        # Precharge is blocked until write recovery (tWR) elapses, so a
        # row *change* after a write waits; same-row accesses do not.
        self.write_recovery_until = 0
        # Plain per-bank access tallies (not StatGroup counters: they feed
        # the telemetry sampler only and must never enter exported stats).
        self.row_hits = 0
        self.row_conflicts = 0

    def is_free(self, now: int) -> bool:
        return self.busy_until <= now

    def ready_time(self, row: int) -> int:
        """Earliest cycle an access to ``row`` may issue on this bank."""
        if row != self.open_row:
            return max(self.busy_until, self.write_recovery_until)
        return self.busy_until

    def is_ready(self, row: int, now: int) -> bool:
        return self.ready_time(row) <= now

    def would_hit(self, row: int) -> bool:
        """Would an access to ``row`` be a row-buffer hit right now?"""
        return self.open_row == row

    def prep_latency(self, row: int) -> int:
        """Cycles of precharge/activate needed before CAS can issue."""
        if self.open_row == row:
            return 0
        if self.open_row is None:
            return self._config.t_rcd
        return self._config.t_rp + self._config.t_rcd

    def access_latency(self, row: int) -> int:
        """Full start-to-data latency of accessing ``row`` right now."""
        return self.prep_latency(row) + self._config.t_cas + self._config.t_burst

    def perform_access(self, row: int, start_time: int) -> int:
        """Issue an access at ``start_time``; returns when data is ready.

        Leaves the row open (open-row policy) and marks the bank busy until
        its next command slot. The caller must ensure the bank is free.
        """
        if start_time < self.busy_until:
            raise ValueError(
                f"bank {self.bank_id} busy until {self.busy_until}, "
                f"access requested at {start_time}"
            )
        cas_time = start_time + self.prep_latency(row)
        data_ready = cas_time + self._config.t_cas
        if row == self.open_row:
            self.row_hits += 1
        else:
            self.row_conflicts += 1
        self.open_row = row
        self.busy_until = cas_time + self._config.t_burst
        return data_ready

    def precharge(self) -> None:
        """Close the open row (used by tests and idle policies)."""
        self.open_row = None
