"""Memory-controller write buffer with drain-when-full semantics.

The paper (Table 1, [27]) uses a 64-entry write buffer with a "drain when
full" policy: the controller services reads until the buffer fills, then
switches to a write phase and drains it. Filling the buffer with blocks of
the same DRAM row (what AWB/DAWB/VWQ arrange) makes the drain phase mostly
row hits, which is the core performance effect reproduced here.

The buffer also acts as the coherence point for in-flight writes: a read that
hits a buffered write is forwarded without touching DRAM.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dram.request import MemoryRequest


class WriteBuffer:
    """FIFO-ordered write buffer with address lookup for forwarding."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: List[MemoryRequest] = []
        self._by_addr: Dict[int, MemoryRequest] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def contains(self, block_addr: int) -> bool:
        """True if a write to ``block_addr`` is buffered (forwarding check)."""
        return block_addr in self._by_addr

    def add(self, request: MemoryRequest) -> None:
        """Insert a write; coalesces with an existing write to the same block.

        Raises:
            ValueError: if the buffer is full and the write does not coalesce,
                or if the request is not a write.
        """
        if not request.is_write:
            raise ValueError("WriteBuffer only accepts writes")
        if request.block_addr in self._by_addr:
            # Coalesce: the newer data overwrites in place; no new entry.
            return
        if self.is_full:
            raise ValueError("write buffer full; caller must check is_full first")
        self._entries.append(request)
        self._by_addr[request.block_addr] = request

    @property
    def entries(self) -> List[MemoryRequest]:
        """The live FIFO-ordered entry list. Callers must not mutate it;
        the controller's scheduling scans use it to avoid per-pass copies."""
        return self._entries

    def peek_all(self) -> List[MemoryRequest]:
        """Snapshot of buffered writes in FIFO order (for the scheduler)."""
        return list(self._entries)

    def remove(self, request: MemoryRequest) -> None:
        """Remove a write that the controller has issued to DRAM."""
        self._entries.remove(request)
        del self._by_addr[request.block_addr]

    def pop_oldest(self) -> Optional[MemoryRequest]:
        """Remove and return the oldest write, or None when empty."""
        if not self._entries:
            return None
        request = self._entries.pop(0)
        del self._by_addr[request.block_addr]
        return request
