"""Campaign surface assembly: Figure 6/7/8 tables plus the sensitivity sweep.

A finished campaign holds one :class:`~repro.sim.system.SimulationResult`
per cell. This module folds those per-cell results into the paper's result
*surfaces* — the complete Figure 6a–e single-core tables, the Figure 7
weighted-speedup averages, the Figure 8 S-curve, and the stacked-bandwidth
sensitivity table for the die-stacked DRAM-cache level — rendered with the
same :class:`~repro.analysis.experiments.ExperimentResult` machinery the
interactive experiment runners use.

Summary rows carry Student-t 95% confidence intervals computed by the
sampled-window estimator (:func:`repro.checkpoint.sampled._estimate`):
each benchmark (Figure 6) or mix (Figure 7) is one sample of the
mechanism's behaviour, so the CI quantifies spread across the workload
population, exactly like the error bars on the paper's bar charts.

Assembly is purely deterministic — iteration follows the campaign plan's
cell order and all floats render through fixed-width formats — so a resumed
campaign regenerates byte-identical surface files, which is what the soak
gate byte-compares after a mid-campaign kill.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro.analysis.experiments import ExperimentResult
from repro.analysis.scaling import SCALES
from repro.checkpoint.sampled import MetricEstimate, _estimate
from repro.sim.metrics import geometric_mean, weighted_speedup
from repro.sim.system import SimulationResult
from repro.utils.atomic import atomic_write_json, atomic_write_text

#: Subdirectory of the campaign directory holding the rendered surfaces.
SURFACES_DIRNAME = "surfaces"
#: Machine-readable form of every surface, one JSON document.
SURFACES_JSON = "surfaces.json"

#: Figure 6 panels: surface id -> (title, metric extractor).
FIG6_PANELS = (
    ("fig6a", "Instructions per cycle", lambda r: r.ipc[0]),
    ("fig6b", "Write row hit rate", lambda r: r.write_row_hit_rate),
    ("fig6c", "LLC tag lookups per kilo-instruction",
     lambda r: r.tag_lookups_pki),
    ("fig6d", "Memory writes per kilo-instruction",
     lambda r: r.memory_wpki),
    ("fig6e", "Read row hit rate", lambda r: r.read_row_hit_rate),
)

#: Mechanisms the paper plots in Figure 8 (intersected with the campaign's).
FIG8_PREFERRED = ("dawb", "dbi+awb+clb")


def _fmt_ci(estimate: Optional[MetricEstimate]) -> Optional[str]:
    """``mean ±half (n=samples)`` with fixed widths for byte stability."""
    if estimate is None:
        return None
    half = estimate.ci_high - estimate.mean
    return f"{estimate.mean:.4f} ±{half:.4f} (n={estimate.samples})"


def _ci_row(
    label: str, columns: Sequence[Sequence[float]]
) -> List[Optional[str]]:
    """One summary row: a Student-t 95% CI per column's sample list."""
    return [label] + [
        _fmt_ci(_estimate(values, 0.0) if values else None)
        for values in columns
    ]


def _results(cell_payload: Dict[str, Dict]) -> Dict[str, SimulationResult]:
    return {
        cell_id: SimulationResult.from_dict(entry["result"])
        for cell_id, entry in cell_payload.items()
    }


# ------------------------------------------------------------- Figure 6


def _figure6(
    config, cells, results: Dict[str, SimulationResult]
) -> Dict[str, ExperimentResult]:
    mechanisms = list(config.mechanisms)
    # Workload axis: single-core benchmarks in plan order, then ingested
    # traces — external captures are first-class Figure 6 workloads.
    workloads: List[str] = []
    lookup: Dict[tuple, Optional[SimulationResult]] = {}
    for cell in cells:
        if cell.category not in ("bench", "trace"):
            continue
        workload = cell.workload
        if workload not in workloads:
            workloads.append(workload)
        lookup[(workload, cell.mechanism)] = results.get(cell.cell_id)

    out: Dict[str, ExperimentResult] = {}
    for exp_id, title, extract in FIG6_PANELS:
        rows: List[List] = []
        columns: List[List[float]] = [[] for _ in mechanisms]
        for workload in workloads:
            row: List = [workload]
            for index, mech in enumerate(mechanisms):
                result = lookup.get((workload, mech))
                value = extract(result) if result is not None else None
                row.append(value)
                if value is not None:
                    columns[index].append(value)
            rows.append(row)
        if exp_id == "fig6a":
            rows.append(
                ["gmean"]
                + [
                    geometric_mean(values) if values else None
                    for values in columns
                ]
            )
        rows.append(_ci_row("mean ±95% CI", columns))
        out[exp_id] = ExperimentResult(
            experiment_id=exp_id,
            title=f"Figure 6{exp_id[-1]}: {title} "
                  f"(campaign scale={config.scale})",
            headers=["workload"] + mechanisms,
            rows=rows,
        )
    return out


# ----------------------------------------------------------- Figure 7/8


def _alone_ipcs(cells, results) -> Dict[tuple, float]:
    """(context cores, benchmark) -> alone-run IPC, from the alone cells."""
    alone: Dict[tuple, float] = {}
    for cell in cells:
        if cell.category != "alone":
            continue
        result = results.get(cell.cell_id)
        if result is not None and result.ipc and result.ipc[0] > 0:
            alone[(cell.num_cores, cell.benchmark)] = result.ipc[0]
    return alone


def _mix_ws(
    result: SimulationResult, cores: int, alone: Dict[tuple, float]
) -> Optional[float]:
    """Weighted speedup of one mix result, None when unnormalizable."""
    alone_ipcs = [
        alone.get((cores, name)) for name in result.trace_names
    ]
    if any(a is None for a in alone_ipcs):
        return None
    if any(ipc <= 0 for ipc in result.ipc):
        return None
    return weighted_speedup(result.ipc, alone_ipcs)


def _figure7(config, cells, results) -> ExperimentResult:
    mechanisms = list(config.mechanisms)
    alone = _alone_ipcs(cells, results)
    core_counts = sorted(
        {cell.num_cores for cell in cells if cell.category == "mix"}
    )
    rows: List[List] = []
    notes = ""
    for cores in core_counts:
        row: List = [f"{cores}-core"]
        for mech in mechanisms:
            speedups = [
                ws
                for cell in cells
                if cell.category == "mix"
                and cell.num_cores == cores
                and cell.mechanism == mech
                and cell.cell_id in results
                for ws in [_mix_ws(results[cell.cell_id], cores, alone)]
                if ws is not None
            ]
            row.append(
                _fmt_ci(_estimate(speedups, 0.0)) if speedups else None
            )
        rows.append(row)
    if core_counts and not alone:
        notes = (
            "weighted speedup needs the alone-IPC normalizer cells; "
            "plan the campaign with full_width to emit them."
        )
    if not core_counts:
        notes = "no multi-core mix cells in this campaign."
    return ExperimentResult(
        experiment_id="fig7",
        title="Figure 7: Multi-core weighted speedup, "
              "mean ±95% CI across mixes "
              f"(campaign scale={config.scale})",
        headers=["system"] + mechanisms,
        rows=rows,
        notes=notes,
    )


def _figure8(config, cells, results) -> ExperimentResult:
    mechanisms = list(config.mechanisms)
    alone = _alone_ipcs(cells, results)
    core_counts = sorted(
        {cell.num_cores for cell in cells if cell.category == "mix"}
    )
    plotted = [m for m in FIG8_PREFERRED if m in mechanisms]
    if not plotted:
        plotted = [m for m in mechanisms if m != "baseline"]

    cores = 4 if 4 in core_counts else (core_counts[-1] if core_counts else 0)
    headers = ["workload"] + [f"{m}/baseline" for m in plotted]
    skip = None
    if not core_counts:
        skip = "no multi-core mix cells in this campaign."
    elif "baseline" not in mechanisms:
        skip = "normalization needs the baseline mechanism in the campaign."
    elif not plotted:
        skip = "no non-baseline mechanism to plot."
    elif not alone:
        skip = (
            "weighted speedup needs the alone-IPC normalizer cells; "
            "plan the campaign with full_width to emit them."
        )
    if skip:
        return ExperimentResult(
            experiment_id="fig8",
            title=f"Figure 8: {cores or 4}-core normalized weighted speedup "
                  f"(campaign scale={config.scale})",
            headers=headers,
            rows=[],
            notes=skip,
        )

    mix_cells: Dict[str, Dict[str, object]] = {}
    for cell in cells:
        if cell.category == "mix" and cell.num_cores == cores:
            mix_cells.setdefault(cell.mix_name, {})[cell.mechanism] = cell
    normalized: Dict[str, Dict[str, Optional[float]]] = {}
    for mix_name, per_mech in mix_cells.items():
        base_cell = per_mech.get("baseline")
        base_ws = (
            _mix_ws(results[base_cell.cell_id], cores, alone)
            if base_cell is not None and base_cell.cell_id in results
            else None
        )
        normalized[mix_name] = {}
        for mech in plotted:
            cell = per_mech.get(mech)
            ws = (
                _mix_ws(results[cell.cell_id], cores, alone)
                if cell is not None and cell.cell_id in results
                else None
            )
            normalized[mix_name][mech] = (
                ws / base_ws if ws is not None and base_ws else None
            )
    # The paper's S-curve: ascending in the last plotted mechanism, with
    # unplottable mixes sorted to the front as n/a.
    anchor = plotted[-1]
    order = sorted(
        normalized,
        key=lambda name: (
            normalized[name][anchor] is not None,
            normalized[name][anchor] or 0.0,
            name,
        ),
    )
    rows = [
        [name] + [normalized[name][mech] for mech in plotted]
        for name in order
    ]
    values = [
        normalized[name][anchor]
        for name in order
        if normalized[name][anchor] is not None
    ]
    degradations = sum(1 for v in values if v < 1.0)
    return ExperimentResult(
        experiment_id="fig8",
        title=f"Figure 8: {cores}-core normalized weighted speedup "
              f"(campaign scale={config.scale})",
        headers=headers,
        rows=rows,
        notes=f"{degradations}/{len(values)} workloads degrade under "
              f"{anchor} (paper: 7/259).",
    )


# ---------------------------------------------------------- sensitivity


def _sensitivity(config, cells, results) -> Optional[ExperimentResult]:
    sens_cells = [cell for cell in cells if cell.category == "sens"]
    if not sens_cells:
        return None
    # Deferred: plan imports stay out of module scope so the orchestrator's
    # lazy import of this module cannot cycle back through campaign.plan.
    from repro.campaign.plan import sensitivity_cache_config

    scale = SCALES[config.scale]
    points = []  # (bandwidth, backend) in plan order
    for cell in sens_cells:
        point = (cell.bandwidth, cell.backend)
        if point not in points:
            points.append(point)

    rows: List[List] = []
    for bandwidth, backend in points:
        cache = sensitivity_cache_config(scale, backend, bandwidth)
        group = [
            results[cell.cell_id]
            for cell in sens_cells
            if cell.bandwidth == bandwidth
            and cell.backend == backend
            and cell.cell_id in results
        ]
        ipcs = [r.ipc[0] for r in group if r.ipc]
        hit_rates = [
            r.stats.get("dramcache.read_hits", 0)
            / r.stats["dramcache.reads"]
            for r in group
            if r.stats.get("dramcache.reads")
        ]
        wpki = [
            1000.0 * r.stats.get("dramcache.offchip_writes", 0)
            / r.total_instructions_issued
            for r in group
            if r.total_instructions_issued
        ]
        rows.append([
            f"1/{bandwidth}x",
            backend,
            cache.stacked.t_burst,
            cache.stacked.t_cas + cache.stacked.t_burst,
            sum(ipcs) / len(ipcs) if ipcs else None,
            sum(hit_rates) / len(hit_rates) if hit_rates else None,
            sum(wpki) / len(wpki) if wpki else None,
        ])
    benches = ", ".join(config.sensitivity_benchmarks)
    return ExperimentResult(
        experiment_id="sensitivity",
        title="Stacked-DRAM bandwidth sensitivity of the dramcache level "
              f"(campaign scale={config.scale})",
        headers=["bandwidth", "backend", "t_burst", "hit latency",
                 "mean ipc", "stacked read hit rate", "offchip WPKI"],
        rows=rows,
        notes=f"means over: {benches}. Hit latency is the analytic "
              "t_cas + t_burst of the stacked channel; halving pin "
              "bandwidth doubles t_burst (TDRAM/Gemini-style sweep).",
    )


# --------------------------------------------------------------- driver


def assemble_surfaces(
    config, cells, cell_payload: Dict[str, Dict]
) -> Dict[str, ExperimentResult]:
    """Fold finished campaign cells into the paper's result surfaces.

    ``config``/``cells`` are the campaign's
    :class:`~repro.campaign.orchestrator.CampaignConfig` and planned
    :class:`~repro.campaign.plan.CampaignCell` list (duck-typed here, so
    tests can feed lightweight stand-ins); ``cell_payload`` maps cell id to
    the ``results.json`` entry (``{"key": ..., "result": ...}``).
    """
    results = _results(cell_payload)
    surfaces: Dict[str, ExperimentResult] = {}
    surfaces.update(_figure6(config, cells, results))
    surfaces["fig7"] = _figure7(config, cells, results)
    surfaces["fig8"] = _figure8(config, cells, results)
    sensitivity = _sensitivity(config, cells, results)
    if sensitivity is not None:
        surfaces["sensitivity"] = sensitivity
    return surfaces


def write_surfaces(
    directory: str, surfaces: Dict[str, ExperimentResult]
) -> str:
    """Render every surface under ``<directory>/surfaces/``, atomically.

    One aligned-text file per surface plus a machine-readable
    ``surfaces.json``; deterministic bytes, so crash recovery and the soak
    gate can byte-compare reruns.
    """
    out_dir = os.path.join(directory, SURFACES_DIRNAME)
    os.makedirs(out_dir, exist_ok=True)
    payload: Dict[str, Dict] = {}
    for surface_id in sorted(surfaces):
        surface = surfaces[surface_id]
        atomic_write_text(
            os.path.join(out_dir, f"{surface_id}.txt"),
            surface.to_text() + "\n",
        )
        payload[surface_id] = json.loads(surface.to_json())
    atomic_write_json(
        os.path.join(out_dir, SURFACES_JSON),
        {"format": 1, "surfaces": payload},
        indent=2, sort_keys=True,
    )
    return out_dir
