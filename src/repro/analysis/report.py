"""Plain-text table and CSV rendering for experiment results."""

from __future__ import annotations

from typing import List, Optional, Sequence


def _format_cell(value) -> str:
    if value is None:
        # A data point whose jobs failed in --keep-going mode; the sweep
        # failure manifest has the tracebacks.
        return "n/a"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table.

    Example:
        >>> print(format_table(["a", "b"], [[1, 2.5]]))
        a  b
        -  -----
        1  2.500
    """
    cells: List[List[str]] = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Minimal CSV export (values contain no commas by construction)."""
    out = [",".join(headers)]
    for row in rows:
        out.append(",".join(_format_cell(v) for v in row))
    return "\n".join(out)
