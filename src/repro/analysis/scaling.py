"""Run-scale profiles.

The paper simulates 500M instructions per benchmark on a 2 MB/core LLC. A
pure-Python event simulator sustains ~10^5 events/s, so full-size runs are
infeasible (the calibration band for this reproduction flags exactly this).
Instead we shrink the *whole machine* — cache capacities and workload
footprints by the same divisor — preserving every ratio that drives the
paper's effects: working-set : cache size, DBI α, L1:L2:LLC proportions,
write-buffer pressure. DRAM geometry (row size, banks) stays physical.

Three profiles:

* ``QUICK_SCALE``   — CI-friendly: divisor 16, short traces.
* ``DEFAULT_SCALE`` — benchmark-harness default: divisor 8.
* ``FULL_SCALE``    — paper-sized caches; traces as long as you can afford.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence

from repro.cache.config import (
    CacheConfig,
    paper_l1_config,
    paper_l2_config,
    paper_llc_config,
)
from repro.dram.config import DramConfig
from repro.dramcache.config import DramCacheConfig, stacked_dram_config
from repro.sim.system import SystemConfig
from repro.sim.trace import Trace
from repro.workloads.mix import (
    MixSpec,
    WorkloadMix,
    category_mix_specs,
    category_mixes,
    mix_from_spec,
)
from repro.workloads.spec import SPEC_PROFILES, generate_trace


@dataclass(frozen=True)
class ScaleProfile:
    """How much to shrink the machine and how long to run it.

    Attributes:
        name: label used in reports.
        divisor: cache-capacity and footprint shrink factor (power of two).
        refs_single_core: memory references per single-core run.
        refs_per_core_multi: references per core in multi-core runs.
        mixes_per_system: multi-programmed mixes per core count.
        predictor_epoch_cycles: Skip-Cache epoch, scaled with run length.
    """

    name: str
    divisor: int
    refs_single_core: int
    refs_per_core_multi: int
    mixes_per_system: int
    predictor_epoch_cycles: int

    def _scale_cache(self, config: CacheConfig) -> CacheConfig:
        blocks = max(config.associativity * 4, config.num_blocks // self.divisor)
        return dataclasses.replace(config, num_blocks=blocks)

    @property
    def dram_row_blocks(self) -> int:
        """Paper rows are 128 blocks (8 KB); they shrink with the machine so
        dirty-blocks-per-row — the quantity AWB harvests — keeps its ratio."""
        return max(16, 128 // self.divisor)

    @property
    def dbi_granularity(self) -> int:
        """Half a (scaled) DRAM row, like the paper's 64 of 128.

        Scaling the granularity with the machine also keeps the DBI's
        *entry count* (128 for α=1/4) — the quantity that decides whether a
        write working set fits — identical to the paper's configuration.
        """
        return max(4, self.dram_row_blocks // 2)

    def dram_config(self) -> "DramConfig":
        return DramConfig(row_buffer_blocks=self.dram_row_blocks)

    def dram_cache_config(self, dirty_backend: str = "dbi") -> DramCacheConfig:
        """A die-stacked DRAM cache (8 MB full-size) shrunk by the divisor.

        The DBI granularity is pinned to the *off-chip* row size so one AWB
        drain is one off-chip row batch — the quantity the TicToc/Banshee
        trade-off study measures. α = 1 (an entry per cached row's worth of
        blocks) lets rows fill with dirty blocks before capacity displaces
        them, which is what makes the displaced batches row-dense.
        """
        return DramCacheConfig(
            num_blocks=max(64, (1 << 17) // self.divisor),
            dirty_backend=dirty_backend,
            dbi_alpha=Fraction(1, 1),
            dbi_granularity=self.dram_row_blocks,
            stacked=stacked_dram_config(
                row_buffer_blocks=2 * self.dram_row_blocks
            ),
        )

    def system_config(
        self,
        mechanism: str,
        num_cores: int = 1,
        mb_per_core: int = 2,
        **overrides,
    ) -> SystemConfig:
        """A Table 1 system shrunk by this profile's divisor."""
        params = dict(
            num_cores=num_cores,
            mechanism=mechanism,
            mb_per_core=mb_per_core,
            l1=self._scale_cache(paper_l1_config()),
            l2=self._scale_cache(paper_l2_config()),
            llc=self._scale_cache(paper_llc_config(num_cores, mb_per_core)),
            dram=self.dram_config(),
            predictor_epoch_cycles=self.predictor_epoch_cycles,
            dbi_alpha=Fraction(1, 4),
            dbi_granularity=self.dbi_granularity,
        )
        params.update(overrides)
        return SystemConfig(**params)

    def benchmark_trace(self, name: str, seed: int = 0xDB1,
                        refs: Optional[int] = None) -> Trace:
        """A single-core benchmark trace at this scale."""
        if name not in SPEC_PROFILES:
            raise ValueError(
                f"unknown benchmark {name!r}; choose from "
                f"{sorted(SPEC_PROFILES)}"
            )
        return generate_trace(
            SPEC_PROFILES[name],
            refs or self.refs_single_core,
            seed=seed,
            footprint_divisor=self.divisor,
        )

    def mixes(self, num_cores: int, count: Optional[int] = None,
              seed: int = 0xDB1,
              refs_per_core: Optional[int] = None) -> List[WorkloadMix]:
        """Category-balanced multi-programmed mixes at this scale."""
        return category_mixes(
            num_cores=num_cores,
            count=count or self.mixes_per_system,
            refs_per_core=refs_per_core or self.refs_per_core_multi,
            seed=seed,
            footprint_divisor=self.divisor,
        )

    def mix_specs(self, num_cores: int, count: Optional[int] = None,
                  seed: int = 0xDB1) -> List[MixSpec]:
        """Mix identities (no traces) — cheap even at paper width."""
        return category_mix_specs(
            num_cores, count or self.mixes_per_system, seed=seed
        )

    def mix_for(self, spec: MixSpec, seed: int = 0xDB1,
                refs_per_core: Optional[int] = None) -> WorkloadMix:
        """Materialize one mix spec's traces at this scale."""
        return mix_from_spec(
            spec,
            refs_per_core or self.refs_per_core_multi,
            seed=seed,
            footprint_divisor=self.divisor,
        )


QUICK_SCALE = ScaleProfile(
    name="quick",
    divisor=16,
    refs_single_core=24_000,
    refs_per_core_multi=10_000,
    mixes_per_system=3,
    predictor_epoch_cycles=30_000,
)

DEFAULT_SCALE = ScaleProfile(
    name="default",
    divisor=8,
    refs_single_core=100_000,
    refs_per_core_multi=30_000,
    mixes_per_system=9,
    predictor_epoch_cycles=100_000,
)

FULL_SCALE = ScaleProfile(
    name="full",
    divisor=1,
    refs_single_core=2_000_000,
    refs_per_core_multi=500_000,
    mixes_per_system=27,
    predictor_epoch_cycles=2_000_000,
)

SCALES = {
    profile.name: profile
    for profile in (QUICK_SCALE, DEFAULT_SCALE, FULL_SCALE)
}
