"""Experiment runners — one per table/figure of the paper's Section 6.

Every runner returns :class:`ExperimentResult` objects whose rows mirror the
paper's artifact (same series, same comparisons); ``to_text()`` renders them
for EXPERIMENTS.md. Runners accept a :class:`ScaleProfile` so the same code
drives quick benchmark-harness runs and the longer default runs.

Execution goes through a :class:`~repro.analysis.runner.SweepRunner`: each
runner first *submits* every independent simulation it needs, then collects
the futures and assembles rows. With a parallel runner the submissions fan
out over worker processes; with the default serial runner (``runner=None``)
jobs execute inline at submission, reproducing the historical behaviour
exactly. Duplicate submissions — the shared baselines of Figure 7/8/Table 3,
or the alone-mode normalization runs — coalesce onto one future, and a
disk-cached runner skips anything a previous sweep already finished.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.analysis.runner import SweepFuture, SweepJobError, SweepRunner
from repro.analysis.scaling import DEFAULT_SCALE, ScaleProfile
from repro.sim.metrics import (
    geometric_mean,
    harmonic_speedup,
    instruction_throughput,
    maximum_slowdown,
    weighted_speedup,
)
from repro.sim.system import SimulationResult
from repro.sim.trace import Trace
from repro.workloads.mix import WorkloadMix
from repro.workloads.spec import profile_names

#: Mechanisms plotted in Figure 6 (paper omits Baseline-LRU there).
FIGURE6_MECHANISMS = (
    "tadip", "dawb", "vwq", "dbi", "dbi+awb", "dbi+clb", "dbi+awb+clb",
)
#: Mechanisms plotted in Figure 7.
FIGURE7_MECHANISMS = (
    "baseline", "tadip", "dawb", "dbi", "dbi+awb", "dbi+clb", "dbi+awb+clb",
)


@dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List]
    notes: str = ""
    raw: Dict = field(default_factory=dict)

    def to_text(self) -> str:
        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += f"\n\n{self.notes}"
        return text

    def to_json(self) -> str:
        """Serializable form (``raw`` is omitted: it holds live objects)."""
        import json

        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "headers": self.headers,
                "rows": self.rows,
                "notes": self.notes,
            },
            indent=2,
        )


# --------------------------------------------------------------- utilities


def _serial_runner() -> SweepRunner:
    """Inline, uncached runner: the behaviour runners default to."""
    return SweepRunner(workers=0, cache_dir=None)


def _collect(runner: SweepRunner, future: SweepFuture):
    """Resolve a future, tolerating exhausted jobs in ``--keep-going`` mode.

    Returns None for a job whose retries were exhausted when the runner was
    built with ``keep_going=True`` — the runner's failure list already holds
    the traceback, and :func:`_failure_note` surfaces the count. Any failure
    on a strict runner propagates unchanged.
    """
    try:
        return future.result()
    except SweepJobError:
        if runner.keep_going:
            return None
        raise


def _failure_note(runner: SweepRunner) -> str:
    """The "N/M jobs failed" annotation appended to partial artifacts."""
    if not runner.failures:
        return ""
    return (
        f"PARTIAL RESULTS: {runner.jobs_failed}/{runner.jobs_submitted} "
        f"jobs failed after retries; missing cells render as n/a "
        f"(see the sweep failure manifest for tracebacks)."
    )


def _with_note(notes: str, extra: str) -> str:
    if not extra:
        return notes
    return f"{notes}\n{extra}" if notes else extra


def _mean(values: Sequence[float]) -> Optional[float]:
    """Arithmetic mean, or None when every contributing job failed."""
    values = [v for v in values if v is not None]
    if not values:
        return None
    return sum(values) / len(values)


def _submit(
    runner: SweepRunner,
    scale: ScaleProfile,
    mechanism: str,
    traces: Sequence[Trace],
    num_cores: int = 1,
    **config_overrides,
) -> SweepFuture:
    config = scale.system_config(mechanism, num_cores=num_cores, **config_overrides)
    return runner.submit(config, traces)


def _run(
    scale: ScaleProfile,
    mechanism: str,
    traces: Sequence[Trace],
    num_cores: int = 1,
    runner: Optional[SweepRunner] = None,
    **config_overrides,
) -> SimulationResult:
    """Synchronous one-shot (kept for scripts that want a single result)."""
    return _submit(
        runner or _serial_runner(), scale, mechanism, traces,
        num_cores=num_cores, **config_overrides,
    ).result()


class AloneIpcCache:
    """IPC of each benchmark running alone on a given machine shape.

    Weighted speedup normalizes shared-mode IPCs against alone-mode IPCs on
    the same machine (full LLC to itself); the alone runs use the Baseline
    mechanism so the normalization is identical across mechanisms. Each
    distinct (trace, shape) is submitted to the sweep runner once; repeated
    requests share the future.
    """

    def __init__(self, scale: ScaleProfile,
                 runner: Optional[SweepRunner] = None) -> None:
        self.scale = scale
        self.runner = runner or _serial_runner()
        self._cache: Dict[Tuple, SweepFuture] = {}

    def submit(self, trace: Trace, num_cores: int, mb_per_core: int = 2,
               llc_replacement: Optional[str] = None) -> SweepFuture:
        key = (trace.name, len(trace), num_cores, mb_per_core, llc_replacement)
        if key not in self._cache:
            config = self.scale.system_config(
                "baseline",
                num_cores=1,
                mb_per_core=mb_per_core * num_cores,  # the whole shared LLC
                llc_replacement=llc_replacement,
            )
            self._cache[key] = self.runner.submit(config, [trace])
        return self._cache[key]

    def ipc(self, trace: Trace, num_cores: int, mb_per_core: int = 2,
            llc_replacement: Optional[str] = None) -> float:
        return self.submit(
            trace, num_cores, mb_per_core, llc_replacement
        ).result().ipc[0]


@dataclass
class _MixFutures:
    """In-flight simulations backing one (mix, mechanism) data point."""

    shared: SweepFuture
    alone: List[SweepFuture]

    def metrics(self) -> Dict[str, float]:
        """Resolve the futures into the Section 5 metrics."""
        result = self.shared.result()
        alone_ipcs = [future.result().ipc[0] for future in self.alone]
        return {
            "weighted_speedup": weighted_speedup(result.ipc, alone_ipcs),
            "instruction_throughput": instruction_throughput(result.ipc),
            "harmonic_speedup": harmonic_speedup(result.ipc, alone_ipcs),
            "maximum_slowdown": maximum_slowdown(result.ipc, alone_ipcs),
        }

    def try_metrics(self, runner: SweepRunner) -> Optional[Dict[str, float]]:
        """Like :meth:`metrics`, but None when any constituent job failed
        and the runner is in ``--keep-going`` mode — a data point missing
        either its shared run or an alone-mode normalizer cannot be plotted."""
        try:
            return self.metrics()
        except SweepJobError:
            if runner.keep_going:
                return None
            raise


def _submit_mix(
    runner: SweepRunner,
    scale: ScaleProfile,
    mechanism: str,
    mix: WorkloadMix,
    alone: AloneIpcCache,
    mb_per_core: int = 2,
    llc_replacement: Optional[str] = None,
) -> _MixFutures:
    """Schedule one mix under one mechanism plus its alone-mode normalizers."""
    shared = _submit(
        runner,
        scale,
        mechanism,
        mix.traces,
        num_cores=mix.num_cores,
        mb_per_core=mb_per_core,
        llc_replacement=llc_replacement,
    )
    alone_futures = [
        alone.submit(trace, mix.num_cores, mb_per_core, llc_replacement)
        for trace in mix.traces
    ]
    return _MixFutures(shared=shared, alone=alone_futures)


def _mix_speedups(
    scale: ScaleProfile,
    mechanism: str,
    mix: WorkloadMix,
    alone: AloneIpcCache,
    mb_per_core: int = 2,
    llc_replacement: Optional[str] = None,
) -> Dict[str, float]:
    """Run one mix under one mechanism; return the Section 5 metrics."""
    return _submit_mix(
        alone.runner, scale, mechanism, mix, alone, mb_per_core, llc_replacement
    ).metrics()


# ------------------------------------------------------------- Figure 6


def run_figure6(
    scale: ScaleProfile = DEFAULT_SCALE,
    benchmarks: Optional[Iterable[str]] = None,
    mechanisms: Sequence[str] = FIGURE6_MECHANISMS,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, ExperimentResult]:
    """Figure 6a-e: single-core IPC, write RHR, tag lookups PKI, WPKI, read RHR."""
    runner = runner or _serial_runner()
    benchmarks = list(benchmarks or profile_names())
    metrics = {
        "fig6a": ("Instructions per cycle", lambda r: r.ipc[0]),
        "fig6b": ("Write row hit rate", lambda r: r.write_row_hit_rate),
        "fig6c": ("LLC tag lookups per kilo-instruction",
                  lambda r: r.tag_lookups_pki),
        "fig6d": ("Memory writes per kilo-instruction", lambda r: r.memory_wpki),
        "fig6e": ("Read row hit rate", lambda r: r.read_row_hit_rate),
    }
    futures: Dict[str, Dict[str, SweepFuture]] = {}
    for bench in benchmarks:
        trace = scale.benchmark_trace(bench)
        futures[bench] = {
            mech: _submit(runner, scale, mech, [trace]) for mech in mechanisms
        }
    results: Dict[str, Dict[str, Optional[SimulationResult]]] = {
        bench: {
            mech: _collect(runner, future)
            for mech, future in per_bench.items()
        }
        for bench, per_bench in futures.items()
    }
    note = _failure_note(runner)

    out: Dict[str, ExperimentResult] = {}
    for exp_id, (title, extract) in metrics.items():
        headers = ["benchmark"] + list(mechanisms)
        rows = [
            [bench]
            + [
                extract(results[bench][mech])
                if results[bench][mech] is not None
                else None
                for mech in mechanisms
            ]
            for bench in benchmarks
        ]
        # Figure 6a carries a gmean column in the paper. In keep-going mode
        # the gmean spans only the benchmarks that finished for a mechanism.
        if exp_id == "fig6a":
            gmeans = []
            for mech in mechanisms:
                values = [
                    extract(results[b][mech]) for b in benchmarks
                    if results[b][mech] is not None
                ]
                gmeans.append(geometric_mean(values) if values else None)
            rows.append(["gmean"] + gmeans)
        out[exp_id] = ExperimentResult(
            experiment_id=exp_id,
            title=f"Figure 6{exp_id[-1]}: {title} (scale={scale.name})",
            headers=headers,
            rows=rows,
            notes=note,
            raw={"results": results},
        )
    return out


# ------------------------------------------------------------- Figure 7


def run_figure7(
    scale: ScaleProfile = DEFAULT_SCALE,
    core_counts: Sequence[int] = (2, 4, 8),
    mechanisms: Sequence[str] = FIGURE7_MECHANISMS,
    mixes_per_system: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Figure 7: average weighted speedup for 2/4/8-core systems."""
    runner = runner or _serial_runner()
    alone = AloneIpcCache(scale, runner)
    pending: Dict[int, Dict[str, List[_MixFutures]]] = {}
    for cores in core_counts:
        mixes = scale.mixes(cores, count=mixes_per_system)
        pending[cores] = {
            mech: [
                _submit_mix(runner, scale, mech, mix, alone) for mix in mixes
            ]
            for mech in mechanisms
        }
    rows = []
    raw: Dict = {}
    for cores in core_counts:
        averages = []
        for mech in mechanisms:
            metrics_list = [
                futures.try_metrics(runner) for futures in pending[cores][mech]
            ]
            speedups = [
                m["weighted_speedup"] for m in metrics_list if m is not None
            ]
            averages.append(_mean(speedups))
            raw[(cores, mech)] = speedups
        rows.append([f"{cores}-core"] + averages)
    return ExperimentResult(
        experiment_id="fig7",
        title=f"Figure 7: Multi-core weighted speedup (scale={scale.name})",
        headers=["system"] + list(mechanisms),
        rows=rows,
        notes=_failure_note(runner),
        raw=raw,
    )


def run_figure8(
    scale: ScaleProfile = DEFAULT_SCALE,
    mechanisms: Sequence[str] = ("dawb", "dbi+awb+clb"),
    num_mixes: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Figure 8: per-workload normalized weighted speedup, 4-core S-curve."""
    runner = runner or _serial_runner()
    alone = AloneIpcCache(scale, runner)
    mixes = scale.mixes(4, count=num_mixes)
    baseline_pending = {
        mix.name: _submit_mix(runner, scale, "baseline", mix, alone)
        for mix in mixes
    }
    mech_pending = {
        mix.name: {
            mech: _submit_mix(runner, scale, mech, mix, alone)
            for mech in mechanisms
        }
        for mix in mixes
    }
    baseline_ws = {
        name: (lambda m: m and m["weighted_speedup"])(
            futures.try_metrics(runner)
        )
        for name, futures in baseline_pending.items()
    }
    normalized: Dict[str, List[Optional[float]]] = {
        mech: [] for mech in mechanisms
    }
    for mix in mixes:
        base = baseline_ws[mix.name]
        for mech in mechanisms:
            metrics = mech_pending[mix.name][mech].try_metrics(runner)
            if base is None or metrics is None:
                normalized[mech].append(None)
            else:
                normalized[mech].append(metrics["weighted_speedup"] / base)
    # Mixes missing their reference series sort to the front, labelled n/a.
    order = sorted(
        range(len(mixes)),
        key=lambda i: (
            normalized[mechanisms[-1]][i] is not None,
            normalized[mechanisms[-1]][i] or 0.0,
        ),
    )
    rows = [
        [mixes[i].name, *(normalized[mech][i] for mech in mechanisms)]
        for i in order
    ]
    plotted = [v for v in normalized[mechanisms[-1]] if v is not None]
    degradations = sum(1 for v in plotted if v < 1.0)
    return ExperimentResult(
        experiment_id="fig8",
        title=f"Figure 8: 4-core normalized weighted speedup (scale={scale.name})",
        headers=["workload"] + [f"{m}/baseline" for m in mechanisms],
        rows=rows,
        notes=_with_note(
            f"{degradations}/{len(plotted)} workloads degrade under "
            f"{mechanisms[-1]} (paper: 7/259).",
            _failure_note(runner),
        ),
        raw=normalized,
    )


def run_multicore_suite(
    scale: ScaleProfile = DEFAULT_SCALE,
    core_counts: Sequence[int] = (2, 4, 8),
    mechanisms: Sequence[str] = FIGURE7_MECHANISMS,
    mixes_per_system: Optional[int] = None,
    figure8_mechanisms: Sequence[str] = ("dawb", "dbi+awb+clb"),
    runner: Optional[SweepRunner] = None,
) -> Dict[str, ExperimentResult]:
    """Figure 7 + Figure 8 + Table 3 from one shared set of runs.

    The three artifacts all consume the same (mix × mechanism) weighted
    speedups; running them through one pass costs a third of the separate
    runners (which matters: simulations dominate wall-clock).
    """
    runner = runner or _serial_runner()
    alone = AloneIpcCache(scale, runner)
    pending: Dict[int, Dict[str, Dict[str, _MixFutures]]] = {}
    mixes_by_cores = {}
    for cores in core_counts:
        mixes = scale.mixes(cores, count=mixes_per_system)
        mixes_by_cores[cores] = mixes
        pending[cores] = {
            mix.name: {
                mech: _submit_mix(runner, scale, mech, mix, alone)
                for mech in mechanisms
            }
            for mix in mixes
        }
    metrics: Dict[int, Dict[str, Dict[str, Optional[Dict[str, float]]]]] = {
        cores: {
            mix_name: {
                mech: futures.try_metrics(runner)
                for mech, futures in per_mix.items()
            }
            for mix_name, per_mix in pending[cores].items()
        }
        for cores in core_counts
    }
    note = _failure_note(runner)

    out: Dict[str, ExperimentResult] = {}

    # ---- Figure 7: average weighted speedup per system per mechanism.
    fig7_rows = []
    for cores in core_counts:
        per_mech = []
        for mech in mechanisms:
            values = [
                m[mech]["weighted_speedup"]
                for m in metrics[cores].values()
                if m[mech] is not None
            ]
            per_mech.append(_mean(values))
        fig7_rows.append([f"{cores}-core"] + per_mech)
    out["fig7"] = ExperimentResult(
        experiment_id="fig7",
        title=f"Figure 7: Multi-core weighted speedup (scale={scale.name})",
        headers=["system"] + list(mechanisms),
        rows=fig7_rows,
        notes=note,
        raw=metrics,
    )

    # ---- Figure 8: 4-core (or middle system) per-workload S-curve.
    s_cores = 4 if 4 in core_counts else core_counts[-1]
    normalized: Dict[str, List[Optional[float]]] = {
        m: [] for m in figure8_mechanisms
    }
    names = []
    for mix in mixes_by_cores[s_cores]:
        base_metrics = metrics[s_cores][mix.name]["baseline"]
        names.append(mix.name)
        for mech in figure8_mechanisms:
            mech_metrics = metrics[s_cores][mix.name][mech]
            if base_metrics is None or mech_metrics is None:
                normalized[mech].append(None)
            else:
                normalized[mech].append(
                    mech_metrics["weighted_speedup"]
                    / base_metrics["weighted_speedup"]
                )
    order = sorted(
        range(len(names)),
        key=lambda i: (
            normalized[figure8_mechanisms[-1]][i] is not None,
            normalized[figure8_mechanisms[-1]][i] or 0.0,
        ),
    )
    fig8_rows = [
        [names[i], *(normalized[m][i] for m in figure8_mechanisms)]
        for i in order
    ]
    plotted = [v for v in normalized[figure8_mechanisms[-1]] if v is not None]
    degrading = sum(1 for v in plotted if v < 1.0)
    out["fig8"] = ExperimentResult(
        experiment_id="fig8",
        title=(
            f"Figure 8: {s_cores}-core normalized weighted speedup "
            f"(scale={scale.name})"
        ),
        headers=["workload"] + [f"{m}/baseline" for m in figure8_mechanisms],
        rows=fig8_rows,
        notes=_with_note(
            f"{degrading}/{len(plotted)} workloads degrade under "
            f"{figure8_mechanisms[-1]} (paper: 7/259).",
            note,
        ),
        raw=normalized,
    )

    # ---- Table 3: mean improvements of the full mechanism vs Baseline.
    best = "dbi+awb+clb" if "dbi+awb+clb" in mechanisms else mechanisms[-1]
    table3_rows = []
    table3_raw = {}
    for cores in core_counts:
        improvements = {key: [] for key in (
            "weighted_speedup", "instruction_throughput",
            "harmonic_speedup", "maximum_slowdown",
        )}
        usable = 0
        for mix_metrics in metrics[cores].values():
            if mix_metrics[best] is None or mix_metrics["baseline"] is None:
                continue
            usable += 1
            for key in improvements:
                improvements[key].append(
                    mix_metrics[best][key] / mix_metrics["baseline"][key] - 1.0
                )
        mean = {k: _mean(v) for k, v in improvements.items()}

        def _pct(value, negate=False):
            if value is None:
                return None
            return f"{-value:+.1%}" if negate else f"{value:+.1%}"

        table3_rows.append([
            f"{cores}-core",
            usable,
            _pct(mean["weighted_speedup"]),
            _pct(mean["instruction_throughput"]),
            _pct(mean["harmonic_speedup"]),
            _pct(mean["maximum_slowdown"], negate=True),
        ])
        table3_raw[cores] = improvements
    out["table3"] = ExperimentResult(
        experiment_id="table3",
        title=f"Table 3: {best} vs Baseline (scale={scale.name})",
        headers=[
            "system", "workloads", "weighted speedup", "instr throughput",
            "harmonic speedup", "max slowdown reduction",
        ],
        rows=table3_rows,
        notes=note,
        raw=table3_raw,
    )
    return out


# -------------------------------------------------------------- Table 3


def run_table3(
    scale: ScaleProfile = DEFAULT_SCALE,
    core_counts: Sequence[int] = (2, 4, 8),
    mechanism: str = "dbi+awb+clb",
    mixes_per_system: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Table 3: performance/fairness of DBI+AWB+CLB vs the Baseline."""
    runner = runner or _serial_runner()
    alone = AloneIpcCache(scale, runner)
    pending = {}
    for cores in core_counts:
        mixes = scale.mixes(cores, count=mixes_per_system)
        pending[cores] = [
            (
                _submit_mix(runner, scale, "baseline", mix, alone),
                _submit_mix(runner, scale, mechanism, mix, alone),
            )
            for mix in mixes
        ]
    rows = []
    raw = {}
    for cores in core_counts:
        improvements = {key: [] for key in (
            "weighted_speedup", "instruction_throughput",
            "harmonic_speedup", "maximum_slowdown",
        )}
        usable = 0
        for base_futures, ours_futures in pending[cores]:
            base = base_futures.try_metrics(runner)
            ours = ours_futures.try_metrics(runner)
            if base is None or ours is None:
                continue
            usable += 1
            for key in improvements:
                improvements[key].append(ours[key] / base[key] - 1.0)
        mean = {k: _mean(v) for k, v in improvements.items()}

        def _pct(value, negate=False):
            if value is None:
                return None
            return f"{-value:+.1%}" if negate else f"{value:+.1%}"

        rows.append([
            f"{cores}-core",
            usable,
            _pct(mean["weighted_speedup"]),
            _pct(mean["instruction_throughput"]),
            _pct(mean["harmonic_speedup"]),
            _pct(mean["maximum_slowdown"], negate=True),  # reduction is good
        ])
        raw[cores] = improvements
    return ExperimentResult(
        experiment_id="table3",
        title=f"Table 3: {mechanism} vs Baseline (scale={scale.name})",
        headers=[
            "system", "workloads", "weighted speedup", "instr throughput",
            "harmonic speedup", "max slowdown reduction",
        ],
        rows=rows,
        notes=_failure_note(runner),
        raw=raw,
    )


# -------------------------------------------------------------- Table 6


def run_table6(
    scale: ScaleProfile = DEFAULT_SCALE,
    benchmarks: Optional[Iterable[str]] = None,
    alphas: Sequence[Fraction] = (Fraction(1, 4), Fraction(1, 2)),
    granularities: Optional[Sequence[int]] = None,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Table 6: AWB's IPC gain vs DBI size (α) and granularity.

    Granularities sweep the scaled equivalents of the paper's 16/32/64/128
    (the machine, and with it the DRAM row, is shrunk by ``scale.divisor``).
    """
    runner = runner or _serial_runner()
    benchmarks = list(benchmarks or ("lbm", "GemsFDTD", "cactusADM", "stream"))
    if granularities is None:
        granularities = sorted(
            {max(2, g // scale.divisor) for g in (16, 32, 64, 128)}
        )
    traces = {b: scale.benchmark_trace(b) for b in benchmarks}
    baseline_pending = {
        bench: _submit(runner, scale, "baseline", [traces[bench]])
        for bench in benchmarks
    }
    sweep_pending = {
        (alpha, granularity, bench): _submit(
            runner, scale, "dbi+awb", [traces[bench]],
            dbi_alpha=alpha, dbi_granularity=granularity,
        )
        for alpha in alphas
        for granularity in granularities
        for bench in benchmarks
    }
    baseline_ipc = {
        bench: (lambda r: r.ipc[0] if r is not None else None)(
            _collect(runner, future)
        )
        for bench, future in baseline_pending.items()
    }
    rows = []
    raw = {}
    for alpha in alphas:
        row = [f"alpha={alpha}"]
        for granularity in granularities:
            gains = []
            for bench in benchmarks:
                result = _collect(
                    runner, sweep_pending[(alpha, granularity, bench)]
                )
                if result is None or baseline_ipc[bench] is None:
                    continue
                gains.append(result.ipc[0] / baseline_ipc[bench] - 1.0)
            mean_gain = _mean(gains)
            raw[(alpha, granularity)] = gains
            row.append(f"{mean_gain:+.1%}" if mean_gain is not None else None)
        rows.append(row)
    return ExperimentResult(
        experiment_id="table6",
        title=f"Table 6: DBI+AWB IPC gain vs size x granularity (scale={scale.name})",
        headers=["DBI size"] + [f"g={g}" for g in granularities],
        rows=rows,
        notes=_with_note(
            "Granularities are the scaled equivalents of the paper's "
            "16/32/64/128 (divide by the scale divisor).",
            _failure_note(runner),
        ),
        raw=raw,
    )


# -------------------------------------------------------------- Table 7


def run_table7(
    scale: ScaleProfile = DEFAULT_SCALE,
    core_counts: Sequence[int] = (2, 4, 8),
    mb_per_core_options: Sequence[int] = (2, 4),
    mechanism: str = "dbi+awb+clb",
    mixes_per_system: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Table 7: weighted-speedup gain vs LLC capacity (2 vs 4 MB/core)."""
    runner = runner or _serial_runner()
    alone = AloneIpcCache(scale, runner)
    pending = {}
    for mb in mb_per_core_options:
        for cores in core_counts:
            mixes = scale.mixes(cores, count=mixes_per_system)
            pending[(mb, cores)] = [
                (
                    _submit_mix(runner, scale, "baseline", mix, alone,
                                mb_per_core=mb),
                    _submit_mix(runner, scale, mechanism, mix, alone,
                                mb_per_core=mb),
                )
                for mix in mixes
            ]
    rows = []
    raw = {}
    for mb in mb_per_core_options:
        row = [f"{mb}MB/core"]
        for cores in core_counts:
            gains = []
            for base_futures, ours_futures in pending[(mb, cores)]:
                base = base_futures.try_metrics(runner)
                ours = ours_futures.try_metrics(runner)
                if base is None or ours is None:
                    continue
                gains.append(ours["weighted_speedup"] / base["weighted_speedup"] - 1)
            mean_gain = _mean(gains)
            raw[(mb, cores)] = gains
            row.append(f"{mean_gain:+.1%}" if mean_gain is not None else None)
        rows.append(row)
    return ExperimentResult(
        experiment_id="table7",
        title=f"Table 7: {mechanism} gain vs LLC capacity (scale={scale.name})",
        headers=["LLC size"] + [f"{c}-core" for c in core_counts],
        rows=rows,
        notes=_failure_note(runner),
        raw=raw,
    )


# ------------------------------------------------- Section 6.4/6.5 studies


def run_dbi_replacement_study(
    scale: ScaleProfile = DEFAULT_SCALE,
    benchmarks: Optional[Iterable[str]] = None,
    policies: Sequence[str] = ("lrw", "lrw-bip", "rwip", "max-dirty", "min-dirty"),
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Section 4.3/6.4: LRW is comparable-or-best among DBI policies."""
    runner = runner or _serial_runner()
    benchmarks = list(benchmarks or ("lbm", "GemsFDTD", "mcf", "cactusADM"))
    traces = {b: scale.benchmark_trace(b) for b in benchmarks}
    pending = {
        policy: [
            _submit(runner, scale, "dbi+awb", [traces[b]],
                    dbi_replacement=policy)
            for b in benchmarks
        ]
        for policy in policies
    }
    rows = []
    raw = {}
    for policy in policies:
        results = [_collect(runner, future) for future in pending[policy]]
        ipcs = [r.ipc[0] for r in results if r is not None]
        raw[policy] = {
            bench: (r.ipc[0] if r is not None else None)
            for bench, r in zip(benchmarks, results)
        }
        rows.append([policy, geometric_mean(ipcs) if ipcs else None])
    return ExperimentResult(
        experiment_id="dbi-replacement",
        title=f"DBI replacement policy study (scale={scale.name})",
        headers=["policy", "gmean IPC"],
        rows=rows,
        notes=_failure_note(runner),
        raw=raw,
    )


def run_drrip_study(
    scale: ScaleProfile = DEFAULT_SCALE,
    core_count: int = 4,
    mixes_per_system: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Section 6.5: DBI's gain survives a better replacement policy (DRRIP)."""
    runner = runner or _serial_runner()
    alone = AloneIpcCache(scale, runner)
    mixes = scale.mixes(core_count, count=mixes_per_system)
    pending = {
        mech: [
            _submit_mix(runner, scale, mech, mix, alone,
                        llc_replacement="drrip")
            for mix in mixes
        ]
        for mech in ("dawb", "dbi+awb+clb")
    }
    rows = []
    raw = {}
    for mech, futures_list in pending.items():
        metrics_list = [f.try_metrics(runner) for f in futures_list]
        speedups = [
            m["weighted_speedup"] for m in metrics_list if m is not None
        ]
        raw[mech] = speedups
        rows.append([f"{mech} (DRRIP LLC)", _mean(speedups)])
    if rows[0][1] is not None and rows[1][1] is not None:
        gain_note = (
            f"dbi+awb+clb over dawb under DRRIP: "
            f"{rows[1][1] / rows[0][1] - 1.0:+.1%} (paper: +7%)."
        )
    else:
        gain_note = "dbi+awb+clb over dawb under DRRIP: n/a (jobs failed)."
    return ExperimentResult(
        experiment_id="drrip",
        title=f"DRRIP interaction study, {core_count}-core (scale={scale.name})",
        headers=["mechanism", "avg weighted speedup"],
        rows=rows,
        notes=_with_note(gain_note, _failure_note(runner)),
        raw=raw,
    )


def run_case_study(
    scale: ScaleProfile = DEFAULT_SCALE,
    mechanisms: Sequence[str] = (
        "baseline", "dawb", "dbi", "dbi+awb", "dbi+awb+clb"
    ),
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Section 6.2 case study: 2-core GemsFDTD + libquantum.

    The paper: DAWB +40% over baseline; plain DBI +83% (DBI evictions give
    row-batched writebacks without DAWB's tag-lookup storm); CLB adds more.
    """
    from repro.workloads.mix import make_mix
    from repro.workloads.spec import SPEC_PROFILES

    runner = runner or _serial_runner()
    mix = make_mix(
        "case_study",
        [SPEC_PROFILES["GemsFDTD"], SPEC_PROFILES["libquantum"]],
        refs_per_core=scale.refs_per_core_multi,
        footprint_divisor=scale.divisor,
    )
    alone = AloneIpcCache(scale, runner)
    pending = [
        (mech, _submit_mix(runner, scale, mech, mix, alone))
        for mech in mechanisms
    ]
    rows = []
    raw = {}
    baseline_ws = None
    for mech, futures in pending:
        metrics = futures.try_metrics(runner)
        ws = metrics["weighted_speedup"] if metrics is not None else None
        raw[mech] = ws
        if baseline_ws is None and ws is not None and mech == mechanisms[0]:
            baseline_ws = ws
        if ws is None or baseline_ws is None:
            rows.append([mech, ws, None])
        else:
            rows.append([mech, ws, f"{ws / baseline_ws - 1.0:+.1%}"])
    return ExperimentResult(
        experiment_id="case-study",
        title=f"Case study: GemsFDTD + libquantum, 2-core (scale={scale.name})",
        headers=["mechanism", "weighted speedup", "vs baseline"],
        rows=rows,
        notes=_failure_note(runner),
        raw=raw,
    )


# ------------------------------------------- Section 3.3 reliability study


#: Write-heavy benchmarks where the dirty-tracking trade-off is visible.
DRAMCACHE_TRADEOFF_BENCHMARKS = ("lbm", "milc", "mcf")


def _dramcache_level_config(scale: ScaleProfile, backend: str):
    """The level shape the trade-off study runs at one scale profile.

    The level shrinks further than the capacity-ratio alone (÷8 on top of
    the profile divisor) so quick traces actually pressure it: without
    evictions neither backend ever writes off-chip and the study measures
    nothing.
    """
    import dataclasses as _dataclasses

    config = scale.dram_cache_config(dirty_backend=backend)
    return _dataclasses.replace(
        config, num_blocks=max(256, (1 << 17) // (scale.divisor * 8))
    )


def run_dramcache(
    scale: ScaleProfile = DEFAULT_SCALE,
    benchmarks: Optional[Iterable[str]] = None,
    mechanism: str = "baseline",
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Die-stacked DRAM-cache dirty-tracking trade-off study.

    Runs each benchmark twice behind the same LLC mechanism — once with the
    level's per-line tag dirty bits, once with the DBI backend whose
    aggressive writeback drains whole dirty rows. The DBI side must raise
    the off-chip writeback row-hit rate and lower the write-stream cost in
    DRAM cycles (row misses pay t_RP+t_RCD) without hurting IPC — the
    trade-off DRAM-cache proposals (TicToc, Banshee) navigate.
    """
    from repro.dramcache.config import DIRTY_BACKENDS

    runner = runner or _serial_runner()
    benchmarks = list(benchmarks or DRAMCACHE_TRADEOFF_BENCHMARKS)
    traces = {b: scale.benchmark_trace(b) for b in benchmarks}
    pending = {
        (bench, backend): _submit(
            runner, scale, mechanism, [traces[bench]],
            dram_cache=_dramcache_level_config(scale, backend),
        )
        for bench in benchmarks
        for backend in DIRTY_BACKENDS
    }
    dram = scale.dram_config()
    miss_penalty = dram.t_rp + dram.t_rcd
    rows: List[List] = []
    raw: Dict = {}
    for bench in benchmarks:
        cells: Dict[str, Optional[Dict[str, float]]] = {}
        for backend in DIRTY_BACKENDS:
            result = _collect(runner, pending[(bench, backend)])
            if result is None:
                cells[backend] = None
                continue
            stats = result.stats
            writes = stats.get("dram.dram_writes_performed", 0)
            row_misses = stats.get(
                "dram.write_row_hit_rate.total", 0
            ) - stats.get("dram.write_row_hit_rate.hits", 0)
            cells[backend] = {
                "ipc": result.ipc[0],
                "write_row_hit_rate": result.write_row_hit_rate,
                "offchip_writes": stats.get("dramcache.offchip_writes", 0),
                "write_cost_cycles": writes * dram.t_burst
                + row_misses * miss_penalty,
            }
        raw[bench] = cells
        tag, dbi = cells.get("tag"), cells.get("dbi")
        rows.append([
            bench,
            tag["write_row_hit_rate"] if tag else None,
            dbi["write_row_hit_rate"] if dbi else None,
            tag["write_cost_cycles"] if tag else None,
            dbi["write_cost_cycles"] if dbi else None,
            tag["ipc"] if tag else None,
            dbi["ipc"] if dbi else None,
        ])
    complete = [
        c for c in raw.values() if c.get("tag") and c.get("dbi")
    ]
    if complete:
        hit_wins = sum(
            1 for c in complete
            if c["dbi"]["write_row_hit_rate"] > c["tag"]["write_row_hit_rate"]
        )
        cost_wins = sum(
            1 for c in complete
            if c["dbi"]["write_cost_cycles"] < c["tag"]["write_cost_cycles"]
        )
        note = (
            f"DBI-backed aggressive writeback raises the off-chip writeback "
            f"row-hit rate on {hit_wins}/{len(complete)} benchmarks and "
            f"lowers the write-stream cost on {cost_wins}/{len(complete)} "
            f"(write cost = performed writes x t_burst + row misses x "
            f"(t_RP+t_RCD) = {dram.t_burst} / {miss_penalty} cycles)."
        )
    else:
        note = "dirty-backend comparison: n/a (jobs failed)."
    return ExperimentResult(
        experiment_id="dramcache",
        title=(
            f"DRAM-cache dirty-tracking trade-off, mechanism={mechanism} "
            f"(scale={scale.name})"
        ),
        headers=[
            "benchmark",
            "tag wb row-hit", "dbi wb row-hit",
            "tag write cost", "dbi write cost",
            "tag IPC", "dbi IPC",
        ],
        rows=rows,
        notes=_with_note(note, _failure_note(runner)),
        raw=raw,
    )


def run_reliability(
    scale: ScaleProfile = DEFAULT_SCALE,
    benchmark: str = "lbm",
    mechanisms: Sequence[str] = ("baseline", "dbi", "dbi+awb+clb"),
    alphas: Sequence[Fraction] = (Fraction(1, 4), Fraction(1, 2)),
    faults: int = 200,
    interval: int = 500,
    seed: int = 0x5EED,
    double_bit_fraction: float = 0.0,
    refs: Optional[int] = None,
) -> ExperimentResult:
    """Section 3.3 heterogeneous-ECC soft-error study.

    Runs each mechanism with a :class:`~repro.core.ecc.SoftErrorInjector`
    attached and tallies fault outcomes per (mechanism, α). Mechanisms that
    keep dirty bits in a DBI get ECC aimed at exactly the dirty blocks
    (:class:`~repro.core.ecc.EccDomain`); conventional mechanisms get the
    same α budget spread blind over the cache
    (:class:`~repro.core.ecc.UntrackedEccDomain`). The paper's argument is
    the contrast in the data-loss column: DBI-tracked domains never lose a
    single-bit upset, the budget-matched untracked ones do.

    Injection is observational (audit events), so the simulation statistics
    of these runs are byte-identical to uninstrumented ones; the campaign is
    driven inline rather than through a SweepRunner because its product —
    injector tallies — is not part of :class:`SimulationResult`.
    """
    from repro.core.ecc import SoftErrorConfig
    from repro.sim.system import System

    trace = scale.benchmark_trace(benchmark, refs=refs)
    rows = []
    raw: Dict = {}
    tracked_loss = 0
    untracked_loss = 0
    for mechanism in mechanisms:
        for alpha in alphas:
            config = scale.system_config(mechanism, dbi_alpha=alpha)
            soft = SoftErrorConfig(
                faults=faults, interval=interval, seed=seed,
                double_bit_fraction=double_bit_fraction,
            )
            system = System(config, [trace], soft_errors=soft)
            system.run()
            injector = system.soft_errors
            counts = dict(injector.counts)
            raw[(mechanism, str(alpha))] = counts
            if injector.tracked:
                domain = "DBI-tracked"
                tracked_loss += counts["data_loss"]
            else:
                domain = f"untracked (coverage={alpha})"
                untracked_loss += counts["data_loss"]
            rows.append([
                mechanism,
                f"alpha={alpha}",
                domain,
                counts["injected"],
                counts["detected"],
                counts["corrected"],
                counts["refetched"],
                counts["data_loss"],
            ])
    notes = (
        f"Single-bit upsets on DBI-tracked domains lost {tracked_loss} "
        f"blocks (paper Section 3.3 predicts 0: every dirty block is "
        f"SECDED-protected by construction); budget-matched untracked "
        f"domains lost {untracked_loss}."
    )
    if double_bit_fraction:
        notes += (
            f" {double_bit_fraction:.0%} of upsets were double-bit, which "
            f"SECDED detects but cannot correct."
        )
    return ExperimentResult(
        experiment_id="reliability",
        title=(
            f"Heterogeneous ECC soft-error study, {benchmark} "
            f"(scale={scale.name}, {faults} faults)"
        ),
        headers=[
            "mechanism", "DBI size", "protection domain", "injected",
            "detected", "corrected", "refetched", "data loss",
        ],
        rows=rows,
        notes=notes,
        raw=raw,
    )
