"""Experiment runners — one per table/figure of the paper's Section 6.

Every runner returns :class:`ExperimentResult` objects whose rows mirror the
paper's artifact (same series, same comparisons); ``to_text()`` renders them
for EXPERIMENTS.md. Runners accept a :class:`ScaleProfile` so the same code
drives quick benchmark-harness runs and the longer default runs.

Execution goes through a :class:`~repro.analysis.runner.SweepRunner`: each
runner first *submits* every independent simulation it needs, then collects
the futures and assembles rows. With a parallel runner the submissions fan
out over worker processes; with the default serial runner (``runner=None``)
jobs execute inline at submission, reproducing the historical behaviour
exactly. Duplicate submissions — the shared baselines of Figure 7/8/Table 3,
or the alone-mode normalization runs — coalesce onto one future, and a
disk-cached runner skips anything a previous sweep already finished.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.analysis.runner import SweepFuture, SweepRunner
from repro.analysis.scaling import DEFAULT_SCALE, ScaleProfile
from repro.sim.metrics import (
    geometric_mean,
    harmonic_speedup,
    instruction_throughput,
    maximum_slowdown,
    weighted_speedup,
)
from repro.sim.system import SimulationResult
from repro.sim.trace import Trace
from repro.workloads.mix import WorkloadMix
from repro.workloads.spec import profile_names

#: Mechanisms plotted in Figure 6 (paper omits Baseline-LRU there).
FIGURE6_MECHANISMS = (
    "tadip", "dawb", "vwq", "dbi", "dbi+awb", "dbi+clb", "dbi+awb+clb",
)
#: Mechanisms plotted in Figure 7.
FIGURE7_MECHANISMS = (
    "baseline", "tadip", "dawb", "dbi", "dbi+awb", "dbi+clb", "dbi+awb+clb",
)


@dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List]
    notes: str = ""
    raw: Dict = field(default_factory=dict)

    def to_text(self) -> str:
        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += f"\n\n{self.notes}"
        return text

    def to_json(self) -> str:
        """Serializable form (``raw`` is omitted: it holds live objects)."""
        import json

        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "headers": self.headers,
                "rows": self.rows,
                "notes": self.notes,
            },
            indent=2,
        )


# --------------------------------------------------------------- utilities


def _serial_runner() -> SweepRunner:
    """Inline, uncached runner: the behaviour runners default to."""
    return SweepRunner(workers=0, cache_dir=None)


def _submit(
    runner: SweepRunner,
    scale: ScaleProfile,
    mechanism: str,
    traces: Sequence[Trace],
    num_cores: int = 1,
    **config_overrides,
) -> SweepFuture:
    config = scale.system_config(mechanism, num_cores=num_cores, **config_overrides)
    return runner.submit(config, traces)


def _run(
    scale: ScaleProfile,
    mechanism: str,
    traces: Sequence[Trace],
    num_cores: int = 1,
    runner: Optional[SweepRunner] = None,
    **config_overrides,
) -> SimulationResult:
    """Synchronous one-shot (kept for scripts that want a single result)."""
    return _submit(
        runner or _serial_runner(), scale, mechanism, traces,
        num_cores=num_cores, **config_overrides,
    ).result()


class AloneIpcCache:
    """IPC of each benchmark running alone on a given machine shape.

    Weighted speedup normalizes shared-mode IPCs against alone-mode IPCs on
    the same machine (full LLC to itself); the alone runs use the Baseline
    mechanism so the normalization is identical across mechanisms. Each
    distinct (trace, shape) is submitted to the sweep runner once; repeated
    requests share the future.
    """

    def __init__(self, scale: ScaleProfile,
                 runner: Optional[SweepRunner] = None) -> None:
        self.scale = scale
        self.runner = runner or _serial_runner()
        self._cache: Dict[Tuple, SweepFuture] = {}

    def submit(self, trace: Trace, num_cores: int, mb_per_core: int = 2,
               llc_replacement: Optional[str] = None) -> SweepFuture:
        key = (trace.name, len(trace), num_cores, mb_per_core, llc_replacement)
        if key not in self._cache:
            config = self.scale.system_config(
                "baseline",
                num_cores=1,
                mb_per_core=mb_per_core * num_cores,  # the whole shared LLC
                llc_replacement=llc_replacement,
            )
            self._cache[key] = self.runner.submit(config, [trace])
        return self._cache[key]

    def ipc(self, trace: Trace, num_cores: int, mb_per_core: int = 2,
            llc_replacement: Optional[str] = None) -> float:
        return self.submit(
            trace, num_cores, mb_per_core, llc_replacement
        ).result().ipc[0]


@dataclass
class _MixFutures:
    """In-flight simulations backing one (mix, mechanism) data point."""

    shared: SweepFuture
    alone: List[SweepFuture]

    def metrics(self) -> Dict[str, float]:
        """Resolve the futures into the Section 5 metrics."""
        result = self.shared.result()
        alone_ipcs = [future.result().ipc[0] for future in self.alone]
        return {
            "weighted_speedup": weighted_speedup(result.ipc, alone_ipcs),
            "instruction_throughput": instruction_throughput(result.ipc),
            "harmonic_speedup": harmonic_speedup(result.ipc, alone_ipcs),
            "maximum_slowdown": maximum_slowdown(result.ipc, alone_ipcs),
        }


def _submit_mix(
    runner: SweepRunner,
    scale: ScaleProfile,
    mechanism: str,
    mix: WorkloadMix,
    alone: AloneIpcCache,
    mb_per_core: int = 2,
    llc_replacement: Optional[str] = None,
) -> _MixFutures:
    """Schedule one mix under one mechanism plus its alone-mode normalizers."""
    shared = _submit(
        runner,
        scale,
        mechanism,
        mix.traces,
        num_cores=mix.num_cores,
        mb_per_core=mb_per_core,
        llc_replacement=llc_replacement,
    )
    alone_futures = [
        alone.submit(trace, mix.num_cores, mb_per_core, llc_replacement)
        for trace in mix.traces
    ]
    return _MixFutures(shared=shared, alone=alone_futures)


def _mix_speedups(
    scale: ScaleProfile,
    mechanism: str,
    mix: WorkloadMix,
    alone: AloneIpcCache,
    mb_per_core: int = 2,
    llc_replacement: Optional[str] = None,
) -> Dict[str, float]:
    """Run one mix under one mechanism; return the Section 5 metrics."""
    return _submit_mix(
        alone.runner, scale, mechanism, mix, alone, mb_per_core, llc_replacement
    ).metrics()


# ------------------------------------------------------------- Figure 6


def run_figure6(
    scale: ScaleProfile = DEFAULT_SCALE,
    benchmarks: Optional[Iterable[str]] = None,
    mechanisms: Sequence[str] = FIGURE6_MECHANISMS,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, ExperimentResult]:
    """Figure 6a-e: single-core IPC, write RHR, tag lookups PKI, WPKI, read RHR."""
    runner = runner or _serial_runner()
    benchmarks = list(benchmarks or profile_names())
    metrics = {
        "fig6a": ("Instructions per cycle", lambda r: r.ipc[0]),
        "fig6b": ("Write row hit rate", lambda r: r.write_row_hit_rate),
        "fig6c": ("LLC tag lookups per kilo-instruction",
                  lambda r: r.tag_lookups_pki),
        "fig6d": ("Memory writes per kilo-instruction", lambda r: r.memory_wpki),
        "fig6e": ("Read row hit rate", lambda r: r.read_row_hit_rate),
    }
    futures: Dict[str, Dict[str, SweepFuture]] = {}
    for bench in benchmarks:
        trace = scale.benchmark_trace(bench)
        futures[bench] = {
            mech: _submit(runner, scale, mech, [trace]) for mech in mechanisms
        }
    results: Dict[str, Dict[str, SimulationResult]] = {
        bench: {mech: future.result() for mech, future in per_bench.items()}
        for bench, per_bench in futures.items()
    }

    out: Dict[str, ExperimentResult] = {}
    for exp_id, (title, extract) in metrics.items():
        headers = ["benchmark"] + list(mechanisms)
        rows = [
            [bench] + [extract(results[bench][mech]) for mech in mechanisms]
            for bench in benchmarks
        ]
        # Figure 6a carries a gmean column in the paper.
        if exp_id == "fig6a":
            rows.append(
                ["gmean"]
                + [
                    geometric_mean([extract(results[b][mech]) for b in benchmarks])
                    for mech in mechanisms
                ]
            )
        out[exp_id] = ExperimentResult(
            experiment_id=exp_id,
            title=f"Figure 6{exp_id[-1]}: {title} (scale={scale.name})",
            headers=headers,
            rows=rows,
            raw={"results": results},
        )
    return out


# ------------------------------------------------------------- Figure 7


def run_figure7(
    scale: ScaleProfile = DEFAULT_SCALE,
    core_counts: Sequence[int] = (2, 4, 8),
    mechanisms: Sequence[str] = FIGURE7_MECHANISMS,
    mixes_per_system: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Figure 7: average weighted speedup for 2/4/8-core systems."""
    runner = runner or _serial_runner()
    alone = AloneIpcCache(scale, runner)
    pending: Dict[int, Dict[str, List[_MixFutures]]] = {}
    for cores in core_counts:
        mixes = scale.mixes(cores, count=mixes_per_system)
        pending[cores] = {
            mech: [
                _submit_mix(runner, scale, mech, mix, alone) for mix in mixes
            ]
            for mech in mechanisms
        }
    rows = []
    raw: Dict = {}
    for cores in core_counts:
        averages = []
        for mech in mechanisms:
            speedups = [
                futures.metrics()["weighted_speedup"]
                for futures in pending[cores][mech]
            ]
            averages.append(sum(speedups) / len(speedups))
            raw[(cores, mech)] = speedups
        rows.append([f"{cores}-core"] + averages)
    return ExperimentResult(
        experiment_id="fig7",
        title=f"Figure 7: Multi-core weighted speedup (scale={scale.name})",
        headers=["system"] + list(mechanisms),
        rows=rows,
        raw=raw,
    )


def run_figure8(
    scale: ScaleProfile = DEFAULT_SCALE,
    mechanisms: Sequence[str] = ("dawb", "dbi+awb+clb"),
    num_mixes: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Figure 8: per-workload normalized weighted speedup, 4-core S-curve."""
    runner = runner or _serial_runner()
    alone = AloneIpcCache(scale, runner)
    mixes = scale.mixes(4, count=num_mixes)
    baseline_pending = {
        mix.name: _submit_mix(runner, scale, "baseline", mix, alone)
        for mix in mixes
    }
    mech_pending = {
        mix.name: {
            mech: _submit_mix(runner, scale, mech, mix, alone)
            for mech in mechanisms
        }
        for mix in mixes
    }
    baseline_ws = {
        name: futures.metrics()["weighted_speedup"]
        for name, futures in baseline_pending.items()
    }
    normalized: Dict[str, List[float]] = {mech: [] for mech in mechanisms}
    for mix in mixes:
        for mech in mechanisms:
            ws = mech_pending[mix.name][mech].metrics()["weighted_speedup"]
            normalized[mech].append(ws / baseline_ws[mix.name])
    order = sorted(
        range(len(mixes)), key=lambda i: normalized[mechanisms[-1]][i]
    )
    rows = [
        [mixes[i].name, *(normalized[mech][i] for mech in mechanisms)]
        for i in order
    ]
    degradations = sum(1 for v in normalized[mechanisms[-1]] if v < 1.0)
    return ExperimentResult(
        experiment_id="fig8",
        title=f"Figure 8: 4-core normalized weighted speedup (scale={scale.name})",
        headers=["workload"] + [f"{m}/baseline" for m in mechanisms],
        rows=rows,
        notes=(
            f"{degradations}/{len(mixes)} workloads degrade under "
            f"{mechanisms[-1]} (paper: 7/259)."
        ),
        raw=normalized,
    )


def run_multicore_suite(
    scale: ScaleProfile = DEFAULT_SCALE,
    core_counts: Sequence[int] = (2, 4, 8),
    mechanisms: Sequence[str] = FIGURE7_MECHANISMS,
    mixes_per_system: Optional[int] = None,
    figure8_mechanisms: Sequence[str] = ("dawb", "dbi+awb+clb"),
    runner: Optional[SweepRunner] = None,
) -> Dict[str, ExperimentResult]:
    """Figure 7 + Figure 8 + Table 3 from one shared set of runs.

    The three artifacts all consume the same (mix × mechanism) weighted
    speedups; running them through one pass costs a third of the separate
    runners (which matters: simulations dominate wall-clock).
    """
    runner = runner or _serial_runner()
    alone = AloneIpcCache(scale, runner)
    pending: Dict[int, Dict[str, Dict[str, _MixFutures]]] = {}
    mixes_by_cores = {}
    for cores in core_counts:
        mixes = scale.mixes(cores, count=mixes_per_system)
        mixes_by_cores[cores] = mixes
        pending[cores] = {
            mix.name: {
                mech: _submit_mix(runner, scale, mech, mix, alone)
                for mech in mechanisms
            }
            for mix in mixes
        }
    metrics: Dict[int, Dict[str, Dict[str, Dict[str, float]]]] = {
        cores: {
            mix_name: {
                mech: futures.metrics() for mech, futures in per_mix.items()
            }
            for mix_name, per_mix in pending[cores].items()
        }
        for cores in core_counts
    }

    out: Dict[str, ExperimentResult] = {}

    # ---- Figure 7: average weighted speedup per system per mechanism.
    fig7_rows = []
    for cores in core_counts:
        per_mech = []
        for mech in mechanisms:
            values = [m[mech]["weighted_speedup"] for m in metrics[cores].values()]
            per_mech.append(sum(values) / len(values))
        fig7_rows.append([f"{cores}-core"] + per_mech)
    out["fig7"] = ExperimentResult(
        experiment_id="fig7",
        title=f"Figure 7: Multi-core weighted speedup (scale={scale.name})",
        headers=["system"] + list(mechanisms),
        rows=fig7_rows,
        raw=metrics,
    )

    # ---- Figure 8: 4-core (or middle system) per-workload S-curve.
    s_cores = 4 if 4 in core_counts else core_counts[-1]
    normalized: Dict[str, List[float]] = {m: [] for m in figure8_mechanisms}
    names = []
    for mix in mixes_by_cores[s_cores]:
        base = metrics[s_cores][mix.name]["baseline"]["weighted_speedup"]
        names.append(mix.name)
        for mech in figure8_mechanisms:
            ws = metrics[s_cores][mix.name][mech]["weighted_speedup"]
            normalized[mech].append(ws / base)
    order = sorted(range(len(names)),
                   key=lambda i: normalized[figure8_mechanisms[-1]][i])
    fig8_rows = [
        [names[i], *(normalized[m][i] for m in figure8_mechanisms)]
        for i in order
    ]
    degrading = sum(
        1 for v in normalized[figure8_mechanisms[-1]] if v < 1.0
    )
    out["fig8"] = ExperimentResult(
        experiment_id="fig8",
        title=(
            f"Figure 8: {s_cores}-core normalized weighted speedup "
            f"(scale={scale.name})"
        ),
        headers=["workload"] + [f"{m}/baseline" for m in figure8_mechanisms],
        rows=fig8_rows,
        notes=(
            f"{degrading}/{len(names)} workloads degrade under "
            f"{figure8_mechanisms[-1]} (paper: 7/259)."
        ),
        raw=normalized,
    )

    # ---- Table 3: mean improvements of the full mechanism vs Baseline.
    best = "dbi+awb+clb" if "dbi+awb+clb" in mechanisms else mechanisms[-1]
    table3_rows = []
    table3_raw = {}
    for cores in core_counts:
        improvements = {key: [] for key in (
            "weighted_speedup", "instruction_throughput",
            "harmonic_speedup", "maximum_slowdown",
        )}
        for mix_metrics in metrics[cores].values():
            for key in improvements:
                improvements[key].append(
                    mix_metrics[best][key] / mix_metrics["baseline"][key] - 1.0
                )
        mean = {k: sum(v) / len(v) for k, v in improvements.items()}
        table3_rows.append([
            f"{cores}-core",
            len(metrics[cores]),
            f"{mean['weighted_speedup']:+.1%}",
            f"{mean['instruction_throughput']:+.1%}",
            f"{mean['harmonic_speedup']:+.1%}",
            f"{-mean['maximum_slowdown']:+.1%}",
        ])
        table3_raw[cores] = improvements
    out["table3"] = ExperimentResult(
        experiment_id="table3",
        title=f"Table 3: {best} vs Baseline (scale={scale.name})",
        headers=[
            "system", "workloads", "weighted speedup", "instr throughput",
            "harmonic speedup", "max slowdown reduction",
        ],
        rows=table3_rows,
        raw=table3_raw,
    )
    return out


# -------------------------------------------------------------- Table 3


def run_table3(
    scale: ScaleProfile = DEFAULT_SCALE,
    core_counts: Sequence[int] = (2, 4, 8),
    mechanism: str = "dbi+awb+clb",
    mixes_per_system: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Table 3: performance/fairness of DBI+AWB+CLB vs the Baseline."""
    runner = runner or _serial_runner()
    alone = AloneIpcCache(scale, runner)
    pending = {}
    for cores in core_counts:
        mixes = scale.mixes(cores, count=mixes_per_system)
        pending[cores] = [
            (
                _submit_mix(runner, scale, "baseline", mix, alone),
                _submit_mix(runner, scale, mechanism, mix, alone),
            )
            for mix in mixes
        ]
    rows = []
    raw = {}
    for cores in core_counts:
        improvements = {key: [] for key in (
            "weighted_speedup", "instruction_throughput",
            "harmonic_speedup", "maximum_slowdown",
        )}
        for base_futures, ours_futures in pending[cores]:
            base = base_futures.metrics()
            ours = ours_futures.metrics()
            for key in improvements:
                improvements[key].append(ours[key] / base[key] - 1.0)
        mean = {k: sum(v) / len(v) for k, v in improvements.items()}
        rows.append([
            f"{cores}-core",
            len(pending[cores]),
            f"{mean['weighted_speedup']:+.1%}",
            f"{mean['instruction_throughput']:+.1%}",
            f"{mean['harmonic_speedup']:+.1%}",
            f"{-mean['maximum_slowdown']:+.1%}",  # reduction is good
        ])
        raw[cores] = improvements
    return ExperimentResult(
        experiment_id="table3",
        title=f"Table 3: {mechanism} vs Baseline (scale={scale.name})",
        headers=[
            "system", "workloads", "weighted speedup", "instr throughput",
            "harmonic speedup", "max slowdown reduction",
        ],
        rows=rows,
        raw=raw,
    )


# -------------------------------------------------------------- Table 6


def run_table6(
    scale: ScaleProfile = DEFAULT_SCALE,
    benchmarks: Optional[Iterable[str]] = None,
    alphas: Sequence[Fraction] = (Fraction(1, 4), Fraction(1, 2)),
    granularities: Optional[Sequence[int]] = None,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Table 6: AWB's IPC gain vs DBI size (α) and granularity.

    Granularities sweep the scaled equivalents of the paper's 16/32/64/128
    (the machine, and with it the DRAM row, is shrunk by ``scale.divisor``).
    """
    runner = runner or _serial_runner()
    benchmarks = list(benchmarks or ("lbm", "GemsFDTD", "cactusADM", "stream"))
    if granularities is None:
        granularities = sorted(
            {max(2, g // scale.divisor) for g in (16, 32, 64, 128)}
        )
    traces = {b: scale.benchmark_trace(b) for b in benchmarks}
    baseline_pending = {
        bench: _submit(runner, scale, "baseline", [traces[bench]])
        for bench in benchmarks
    }
    sweep_pending = {
        (alpha, granularity, bench): _submit(
            runner, scale, "dbi+awb", [traces[bench]],
            dbi_alpha=alpha, dbi_granularity=granularity,
        )
        for alpha in alphas
        for granularity in granularities
        for bench in benchmarks
    }
    baseline_ipc = {
        bench: future.result().ipc[0]
        for bench, future in baseline_pending.items()
    }
    rows = []
    raw = {}
    for alpha in alphas:
        row = [f"alpha={alpha}"]
        for granularity in granularities:
            gains = []
            for bench in benchmarks:
                result = sweep_pending[(alpha, granularity, bench)].result()
                gains.append(result.ipc[0] / baseline_ipc[bench] - 1.0)
            mean_gain = sum(gains) / len(gains)
            raw[(alpha, granularity)] = gains
            row.append(f"{mean_gain:+.1%}")
        rows.append(row)
    return ExperimentResult(
        experiment_id="table6",
        title=f"Table 6: DBI+AWB IPC gain vs size x granularity (scale={scale.name})",
        headers=["DBI size"] + [f"g={g}" for g in granularities],
        rows=rows,
        notes=(
            "Granularities are the scaled equivalents of the paper's "
            "16/32/64/128 (divide by the scale divisor)."
        ),
        raw=raw,
    )


# -------------------------------------------------------------- Table 7


def run_table7(
    scale: ScaleProfile = DEFAULT_SCALE,
    core_counts: Sequence[int] = (2, 4, 8),
    mb_per_core_options: Sequence[int] = (2, 4),
    mechanism: str = "dbi+awb+clb",
    mixes_per_system: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Table 7: weighted-speedup gain vs LLC capacity (2 vs 4 MB/core)."""
    runner = runner or _serial_runner()
    alone = AloneIpcCache(scale, runner)
    pending = {}
    for mb in mb_per_core_options:
        for cores in core_counts:
            mixes = scale.mixes(cores, count=mixes_per_system)
            pending[(mb, cores)] = [
                (
                    _submit_mix(runner, scale, "baseline", mix, alone,
                                mb_per_core=mb),
                    _submit_mix(runner, scale, mechanism, mix, alone,
                                mb_per_core=mb),
                )
                for mix in mixes
            ]
    rows = []
    raw = {}
    for mb in mb_per_core_options:
        row = [f"{mb}MB/core"]
        for cores in core_counts:
            gains = []
            for base_futures, ours_futures in pending[(mb, cores)]:
                base = base_futures.metrics()
                ours = ours_futures.metrics()
                gains.append(ours["weighted_speedup"] / base["weighted_speedup"] - 1)
            mean_gain = sum(gains) / len(gains)
            raw[(mb, cores)] = gains
            row.append(f"{mean_gain:+.1%}")
        rows.append(row)
    return ExperimentResult(
        experiment_id="table7",
        title=f"Table 7: {mechanism} gain vs LLC capacity (scale={scale.name})",
        headers=["LLC size"] + [f"{c}-core" for c in core_counts],
        rows=rows,
        raw=raw,
    )


# ------------------------------------------------- Section 6.4/6.5 studies


def run_dbi_replacement_study(
    scale: ScaleProfile = DEFAULT_SCALE,
    benchmarks: Optional[Iterable[str]] = None,
    policies: Sequence[str] = ("lrw", "lrw-bip", "rwip", "max-dirty", "min-dirty"),
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Section 4.3/6.4: LRW is comparable-or-best among DBI policies."""
    runner = runner or _serial_runner()
    benchmarks = list(benchmarks or ("lbm", "GemsFDTD", "mcf", "cactusADM"))
    traces = {b: scale.benchmark_trace(b) for b in benchmarks}
    pending = {
        policy: [
            _submit(runner, scale, "dbi+awb", [traces[b]],
                    dbi_replacement=policy)
            for b in benchmarks
        ]
        for policy in policies
    }
    rows = []
    raw = {}
    for policy in policies:
        ipcs = [future.result().ipc[0] for future in pending[policy]]
        raw[policy] = dict(zip(benchmarks, ipcs))
        rows.append([policy, geometric_mean(ipcs)])
    return ExperimentResult(
        experiment_id="dbi-replacement",
        title=f"DBI replacement policy study (scale={scale.name})",
        headers=["policy", "gmean IPC"],
        rows=rows,
        raw=raw,
    )


def run_drrip_study(
    scale: ScaleProfile = DEFAULT_SCALE,
    core_count: int = 4,
    mixes_per_system: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Section 6.5: DBI's gain survives a better replacement policy (DRRIP)."""
    runner = runner or _serial_runner()
    alone = AloneIpcCache(scale, runner)
    mixes = scale.mixes(core_count, count=mixes_per_system)
    pending = {
        mech: [
            _submit_mix(runner, scale, mech, mix, alone,
                        llc_replacement="drrip")
            for mix in mixes
        ]
        for mech in ("dawb", "dbi+awb+clb")
    }
    rows = []
    raw = {}
    for mech, futures_list in pending.items():
        speedups = [
            futures.metrics()["weighted_speedup"] for futures in futures_list
        ]
        raw[mech] = speedups
        rows.append([f"{mech} (DRRIP LLC)", sum(speedups) / len(speedups)])
    gain = rows[1][1] / rows[0][1] - 1.0
    return ExperimentResult(
        experiment_id="drrip",
        title=f"DRRIP interaction study, {core_count}-core (scale={scale.name})",
        headers=["mechanism", "avg weighted speedup"],
        rows=rows,
        notes=f"dbi+awb+clb over dawb under DRRIP: {gain:+.1%} (paper: +7%).",
        raw=raw,
    )


def run_case_study(
    scale: ScaleProfile = DEFAULT_SCALE,
    mechanisms: Sequence[str] = (
        "baseline", "dawb", "dbi", "dbi+awb", "dbi+awb+clb"
    ),
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Section 6.2 case study: 2-core GemsFDTD + libquantum.

    The paper: DAWB +40% over baseline; plain DBI +83% (DBI evictions give
    row-batched writebacks without DAWB's tag-lookup storm); CLB adds more.
    """
    from repro.workloads.mix import make_mix
    from repro.workloads.spec import SPEC_PROFILES

    runner = runner or _serial_runner()
    mix = make_mix(
        "case_study",
        [SPEC_PROFILES["GemsFDTD"], SPEC_PROFILES["libquantum"]],
        refs_per_core=scale.refs_per_core_multi,
        footprint_divisor=scale.divisor,
    )
    alone = AloneIpcCache(scale, runner)
    pending = [
        (mech, _submit_mix(runner, scale, mech, mix, alone))
        for mech in mechanisms
    ]
    rows = []
    raw = {}
    baseline_ws = None
    for mech, futures in pending:
        ws = futures.metrics()["weighted_speedup"]
        raw[mech] = ws
        if baseline_ws is None:
            baseline_ws = ws
        rows.append([mech, ws, f"{ws / baseline_ws - 1.0:+.1%}"])
    return ExperimentResult(
        experiment_id="case-study",
        title=f"Case study: GemsFDTD + libquantum, 2-core (scale={scale.name})",
        headers=["mechanism", "weighted speedup", "vs baseline"],
        rows=rows,
        raw=raw,
    )
