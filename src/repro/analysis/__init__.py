"""Experiment harness: one runner per paper figure/table.

* :mod:`repro.analysis.scaling` — quick/default/full scale profiles (the
  Python simulator cannot run 500M-instruction SPEC traces, so the hierarchy
  and footprints scale down together, keeping every ratio of Table 1).
* :mod:`repro.analysis.experiments` — ``run_figure6``, ``run_figure7``, ...
  each reproducing one evaluation artifact.
* :mod:`repro.analysis.runner` — the parallel, disk-cached sweep engine the
  experiment runners submit their independent simulations to.
* :mod:`repro.analysis.report` — plain-text table/CSV rendering.
"""

from repro.analysis.experiments import (
    ExperimentResult,
    run_case_study,
    run_dbi_replacement_study,
    run_drrip_study,
    run_figure6,
    run_figure7,
    run_figure8,
    run_table3,
    run_table6,
    run_table7,
)
from repro.analysis.report import format_table, to_csv
from repro.analysis.runner import SweepFuture, SweepJob, SweepRunner, job_key
from repro.analysis.scaling import (
    DEFAULT_SCALE,
    FULL_SCALE,
    QUICK_SCALE,
    SCALES,
    ScaleProfile,
)

__all__ = [
    "ExperimentResult",
    "ScaleProfile",
    "SCALES",
    "QUICK_SCALE",
    "DEFAULT_SCALE",
    "FULL_SCALE",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_table3",
    "run_table6",
    "run_table7",
    "run_case_study",
    "run_dbi_replacement_study",
    "run_drrip_study",
    "format_table",
    "to_csv",
    "SweepRunner",
    "SweepFuture",
    "SweepJob",
    "job_key",
]
