"""Parallel, cached sweep engine.

Every table/figure of the paper decomposes into dozens of *independent*
simulations — (config, traces) pairs that share nothing at runtime. The
:class:`SweepRunner` exploits that: jobs are submitted up front, fanned out
over a :class:`concurrent.futures.ProcessPoolExecutor`, and each completed
:class:`SimulationResult` is memoized in a content-addressed on-disk cache so
interrupted sweeps resume for free and artifacts that share runs (e.g. the
baseline simulations common to Figure 7, Figure 8 and Table 3) compute each
configuration exactly once.

Job identity
    :func:`job_key` hashes the full :class:`SystemConfig` (which embeds the
    scale profile's cache geometries, DRAM shape and run length) together
    with each trace's name, length and record content. Two jobs with the
    same key are the same simulation, byte for byte — the simulator is
    deterministic by construction (see ``repro.utils.rng``) — so a cached
    result is indistinguishable from a fresh run.

Cache layout
    One JSON file per job under ``cache_dir``, named ``<sha256>.json``,
    holding a format version, the key, a human-readable label and the full
    result. Files are written atomically (temp file + ``os.replace``), so a
    killed sweep never leaves a truncated entry; rerunning it skips every
    job that finished.

Execution modes
    ``workers >= 2`` uses a process pool; ``workers in (0, 1)`` runs jobs
    inline at submission, which keeps single-process determinism tests and
    small scripts free of pool overhead. Results are identical either way.
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import sys
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.sim.system import SimulationResult, SystemConfig, run_system
from repro.sim.trace import Trace

#: Default location of the on-disk result cache (relative to the cwd).
DEFAULT_CACHE_DIR = os.path.join("results", "sweep_cache")

#: Bump when the cache entry schema changes; old entries are ignored.
CACHE_FORMAT = 1

#: Trace records hashed per chunk (bounds peak memory for FULL_SCALE traces).
_KEY_CHUNK = 8192


def default_workers() -> int:
    """One process per core, minus one to keep the submitting process live."""
    return max(1, (os.cpu_count() or 2) - 1)


def job_key(
    config: SystemConfig,
    traces: Sequence[Trace],
    max_events: Optional[int] = None,
    check: str = "off",
) -> str:
    """Stable content hash identifying one simulation.

    Covers every field of ``config`` (dataclass repr is deterministic and
    includes the nested cache/DRAM/DBI configs, so the scale profile is
    captured through the geometry it produced) plus each trace's name,
    length and full record stream — the trace generator's seed and footprint
    divisor are functions of the records, so they are covered too.

    ``check`` is hashed only when enabled: checking cannot change results,
    so checked runs may *reuse* entries cached by unchecked sweeps, but a
    result produced under ``--check`` gets its own entry — a pre-existing
    cache must never let a verification sweep silently skip simulating.
    """
    import hashlib

    hasher = hashlib.sha256()
    hasher.update(repr(config).encode())
    for trace in traces:
        hasher.update(f"|trace:{trace.name}:{len(trace.records)}|".encode())
        for start in range(0, len(trace.records), _KEY_CHUNK):
            hasher.update(repr(trace.records[start : start + _KEY_CHUNK]).encode())
    if max_events is not None:
        hasher.update(f"|max_events:{max_events}".encode())
    if str(check).lower() != "off":
        hasher.update(f"|check:{str(check).lower()}".encode())
    return hasher.hexdigest()


@dataclass(frozen=True)
class SweepJob:
    """Picklable spec of one simulation (what a worker process receives)."""

    job_id: int
    key: str
    config: SystemConfig
    traces: Tuple[Trace, ...]
    max_events: Optional[int] = None
    check: str = "off"

    @property
    def label(self) -> str:
        names = ",".join(trace.name for trace in self.traces)
        return f"{self.config.mechanism}[{names}]"


def _execute(job: SweepJob) -> SimulationResult:
    """Run one job (module-level so the process pool can pickle it)."""
    return run_system(
        job.config, list(job.traces), max_events=job.max_events, check=job.check
    )


class SweepFuture:
    """Handle to one submitted job; ``result()`` blocks until it is done."""

    def __init__(
        self,
        job: SweepJob,
        inner: Optional[concurrent.futures.Future] = None,
        value: Optional[SimulationResult] = None,
    ) -> None:
        self.job = job
        self._inner = inner
        self._value = value

    def done(self) -> bool:
        return self._value is not None or (
            self._inner is not None and self._inner.done()
        )

    def result(self, timeout: Optional[float] = None) -> SimulationResult:
        if self._value is None:
            self._value = self._inner.result(timeout)
        return self._value


def stderr_progress(line: str) -> None:
    """Default progress sink: one line per completed job on stderr."""
    print(line, file=sys.stderr, flush=True)


class SweepRunner:
    """Fan (config, traces) jobs over worker processes with result caching.

    Args:
        workers: process count; ``None`` = ``os.cpu_count() - 1``; values
            below 2 run jobs inline in this process (deterministically
            identical results, no pool overhead).
        cache_dir: on-disk cache directory; created on first write.
        use_cache: set False to neither read nor write the disk cache
            (in-memory memoization of repeated submissions still applies).
        progress: callable receiving one formatted line per finished job
            (job id, mechanism/traces, elapsed seconds, hit/miss); ``None``
            is silent, :func:`stderr_progress` prints to stderr.
        check: runtime verification level passed to every job ("off",
            "cheap" or "full"; see :mod:`repro.check`). Non-off levels get
            distinct cache keys so verification sweeps actually simulate.

    Usage::

        with SweepRunner(workers=4) as runner:
            futures = [runner.submit(cfg, [trace]) for cfg in configs]
            results = [f.result() for f in futures]
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
        use_cache: bool = True,
        progress: Optional[Callable[[str], None]] = None,
        check: str = "off",
    ) -> None:
        self.workers = default_workers() if workers is None else max(0, workers)
        self.cache_dir = cache_dir if (use_cache and cache_dir) else None
        self.progress = progress
        self.check = str(check).lower()
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        self._futures: Dict[str, SweepFuture] = {}
        self._next_id = 0
        self._started = time.perf_counter()
        self.jobs_submitted = 0  # distinct jobs seen
        self.memo_hits = 0  # repeated submissions coalesced in-process
        self.cache_hits = 0  # jobs answered from the disk cache
        self.jobs_executed = 0  # jobs actually simulated

    # ------------------------------------------------------------ lifecycle

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (waits for in-flight jobs)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers
            )
        return self._pool

    # ------------------------------------------------------------ interface

    def submit(
        self,
        config: SystemConfig,
        traces: Sequence[Trace],
        max_events: Optional[int] = None,
    ) -> SweepFuture:
        """Schedule one simulation; duplicate submissions share one future."""
        traces = tuple(traces)
        key = job_key(config, traces, max_events, check=self.check)
        with self._lock:
            existing = self._futures.get(key)
            if existing is not None:
                self.memo_hits += 1
                return existing
            job = SweepJob(
                self._next_id, key, config, traces, max_events, self.check
            )
            self._next_id += 1
            self.jobs_submitted += 1
            future = self._dispatch(job)
            self._futures[key] = future
            return future

    def run(
        self,
        config: SystemConfig,
        traces: Sequence[Trace],
        max_events: Optional[int] = None,
    ) -> SimulationResult:
        """Synchronous convenience: submit and wait."""
        return self.submit(config, traces, max_events=max_events).result()

    def summary(self) -> str:
        """One-line account of the sweep (for end-of-run reporting)."""
        elapsed = time.perf_counter() - self._started
        return (
            f"sweep: {self.jobs_submitted} jobs "
            f"({self.jobs_executed} simulated, {self.cache_hits} cache hits, "
            f"{self.memo_hits} coalesced) in {elapsed:.1f}s "
            f"with {self.workers} worker(s)"
        )

    # ------------------------------------------------------------- dispatch

    def _dispatch(self, job: SweepJob) -> SweepFuture:
        cached = self._load_cached(job.key)
        if cached is not None:
            self.cache_hits += 1
            self._emit(job, 0.0, "hit")
            return SweepFuture(job, value=cached)
        started = time.perf_counter()
        if self.workers >= 2:
            inner = self._ensure_pool().submit(_execute, job)
            inner.add_done_callback(
                lambda f, job=job, started=started: self._pool_job_done(
                    job, f, started
                )
            )
            return SweepFuture(job, inner=inner)
        result = _execute(job)
        self.jobs_executed += 1
        self._store_cached(job.key, job.label, result)
        self._emit(job, time.perf_counter() - started, "miss")
        return SweepFuture(job, value=result)

    def _pool_job_done(
        self, job: SweepJob, inner: concurrent.futures.Future, started: float
    ) -> None:
        if inner.cancelled() or inner.exception() is not None:
            self._emit(job, time.perf_counter() - started, "failed")
            return
        with self._lock:
            self.jobs_executed += 1
        self._store_cached(job.key, job.label, inner.result())
        self._emit(job, time.perf_counter() - started, "miss")

    def _emit(self, job: SweepJob, elapsed: float, status: str) -> None:
        if self.progress is not None:
            self.progress(
                f"[sweep {job.job_id:04d}] {job.label:<40s} "
                f"{elapsed:7.2f}s  {status}"
            )

    # ---------------------------------------------------------- disk cache

    def _cache_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")

    def _load_cached(self, key: str) -> Optional[SimulationResult]:
        if self.cache_dir is None:
            return None
        try:
            with open(self._cache_path(key)) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if payload.get("format") != CACHE_FORMAT or payload.get("key") != key:
            return None
        try:
            return SimulationResult.from_dict(payload["result"])
        except (KeyError, TypeError):
            return None

    def _store_cached(self, key: str, label: str, result: SimulationResult) -> None:
        if self.cache_dir is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        path = self._cache_path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        payload = {
            "format": CACHE_FORMAT,
            "key": key,
            "label": label,
            "result": result.to_dict(),
        }
        try:
            with open(tmp, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except OSError:
            # Caching is an optimization; a read-only disk must not kill a
            # sweep whose simulations are succeeding.
            try:
                os.unlink(tmp)
            except OSError:
                pass
