"""Parallel, cached, fault-tolerant sweep engine.

Every table/figure of the paper decomposes into dozens of *independent*
simulations — (config, traces) pairs that share nothing at runtime. The
:class:`SweepRunner` exploits that: jobs are submitted up front, fanned out
over a :class:`concurrent.futures.ProcessPoolExecutor`, and each completed
:class:`SimulationResult` is memoized in a content-addressed on-disk cache so
interrupted sweeps resume for free and artifacts that share runs (e.g. the
baseline simulations common to Figure 7, Figure 8 and Table 3) compute each
configuration exactly once.

Job identity
    :func:`job_key` hashes the full :class:`SystemConfig` (which embeds the
    scale profile's cache geometries, DRAM shape and run length) together
    with each trace's name, length and record content. Two jobs with the
    same key are the same simulation, byte for byte — the simulator is
    deterministic by construction (see ``repro.utils.rng``) — so a cached
    result is indistinguishable from a fresh run.

Cache layout
    One JSON file per job under ``cache_dir``, named ``<sha256>.json``,
    holding a format version, the key, a human-readable label and the full
    result. Files are written atomically (temp file + ``os.replace``), so a
    killed sweep never leaves a truncated entry; rerunning it skips every
    job that finished. Entries that fail to parse or whose embedded key
    disagrees with their filename are *quarantined* (renamed to
    ``<key>.json.corrupt``) and counted in ``cache_corrupt``, so repeated
    corruption shows up in :meth:`SweepRunner.summary` instead of being an
    invisible performance cliff.

Execution modes
    ``workers >= 2`` uses a process pool; ``workers in (0, 1)`` runs jobs
    inline at submission, which keeps single-process determinism tests and
    small scripts free of pool overhead. Results are identical either way.

Fault tolerance
    Pool execution survives the three classic large-sweep failure modes:

    * **worker crashes** (``BrokenProcessPool``) — the pool is respawned and
      the job retried with exponential backoff plus deterministic jitter;
      other in-flight jobs that died with the pool re-dispatch themselves
      onto the fresh pool when collected;
    * **wedged workers** — an optional per-attempt wall-clock timeout
      (:attr:`RetryPolicy.timeout`) classifies the attempt as a hang, hard
      kills the wedged pool and retries the job;
    * **repeated pool deaths** — after :attr:`RetryPolicy.max_pool_deaths`
      teardowns the runner degrades gracefully to inline execution, which
      cannot crash the pool because there no longer is one.

    Deterministic *simulation* exceptions are different: retrying a
    deterministic failure wastes cycles to learn nothing, so they surface
    after exactly one attempt. Either way the job's key is evicted from the
    in-process memo table (a resubmission gets a fresh future rather than
    the poisoned one) and a :class:`JobFailure` is recorded; failures raise
    :class:`SweepJobError` from ``result()`` with the original exception
    chained as ``__cause__``. Under ``keep_going=True`` callers are expected
    to catch that error per job, render partial artifacts, and persist
    :meth:`SweepRunner.write_failure_manifest` — the CLI's ``--keep-going``
    does exactly this.

    The :mod:`repro.analysis.chaos` layer injects all three fault kinds
    deterministically (``REPRO_CHAOS`` env or the ``chaos=`` argument) so
    tests can prove recovered sweeps are byte-identical to fault-free ones.

Checkpoint acceleration
    ``checkpoint_dir=`` turns on fork-from-warm sweeps: each (traces,
    shared-config) group warms once, snapshots at the warmup boundary, and
    every per-mechanism cell forks from the shared image. ``sampled=`` runs
    SMARTS-style detailed windows with functional fast-forward between them.
    Both are documented approximations of cold full-length runs, carry their
    own :func:`job_key` components (their cache entries never collide with
    cold ones), and refuse to compose with ``check`` or ``telemetry``. See
    :mod:`repro.checkpoint` and ``docs/architecture.md`` §11.
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import sys
import threading
import time
import traceback as traceback_module
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.chaos import ChaosConfig, FaultInjector, chaos_from_env
from repro.sim.system import SimulationResult, SystemConfig, run_system
from repro.sim.trace import Trace
from repro.telemetry.sampler import TelemetryConfig
from repro.utils.atomic import atomic_write_json, publish_file
from repro.utils.locks import FileLock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.checkpoint.sampled import SampledConfig
    from repro.checkpoint.shard import ShardSpec

#: Default location of the on-disk result cache (relative to the cwd).
DEFAULT_CACHE_DIR = os.path.join("results", "sweep_cache")

#: Default telemetry artifact directory when the disk cache is disabled.
DEFAULT_TELEMETRY_DIR = os.path.join("results", "telemetry")

#: Default location of the per-sweep failure manifest (``--keep-going``).
DEFAULT_FAILURE_MANIFEST = os.path.join("results", "sweep_failures.json")

#: Bump when the cache entry schema changes; old entries are ignored.
CACHE_FORMAT = 1

#: Bump when the failure-manifest schema changes.
FAILURE_MANIFEST_FORMAT = 1

#: Trace records hashed per chunk (bounds peak memory for FULL_SCALE traces).
_KEY_CHUNK = 8192

#: Heartbeat-staleness horizon for warm-image build locks. Generous — the
#: fast reclaim path is pid death (see :mod:`repro.utils.locks`); the TTL
#: only backstops cross-host builders, and a quick-scale warm build takes
#: seconds, not minutes.
WARM_LOCK_STALE_SECONDS = 600.0


def default_workers() -> int:
    """One process per core, minus one to keep the submitting process live."""
    return max(1, (os.cpu_count() or 2) - 1)


def job_key(
    config: SystemConfig,
    traces: Sequence[Trace],
    max_events: Optional[int] = None,
    check: str = "off",
    fork: Optional[str] = None,
    sampled: Optional[str] = None,
    shard: Optional[str] = None,
) -> str:
    """Stable content hash identifying one simulation.

    Covers every field of ``config`` (dataclass repr is deterministic and
    includes the nested cache/DRAM/DBI configs, so the scale profile is
    captured through the geometry it produced) plus each trace's name,
    length and full record stream — the trace generator's seed and footprint
    divisor are functions of the records, so they are covered too.

    ``check`` is hashed only when enabled: checking cannot change results,
    so checked runs may *reuse* entries cached by unchecked sweeps, but a
    result produced under ``--check`` gets its own entry — a pre-existing
    cache must never let a verification sweep silently skip simulating.

    ``fork`` (the warm-image mechanism of a fork-from-warm job),
    ``sampled`` (a :meth:`SampledConfig.key` spec) and ``shard`` (a
    :meth:`ShardSpec.key` segment) are hashed whenever set: all three modes
    are documented approximations of a cold full-length run, so their
    entries must never collide with — or be served to — cold sweeps.
    """
    import hashlib

    hasher = hashlib.sha256()
    hasher.update(repr(config).encode())
    for trace in traces:
        hasher.update(f"|trace:{trace.name}:{len(trace.records)}|".encode())
        for start in range(0, len(trace.records), _KEY_CHUNK):
            hasher.update(repr(trace.records[start : start + _KEY_CHUNK]).encode())
    if max_events is not None:
        hasher.update(f"|max_events:{max_events}".encode())
    if str(check).lower() != "off":
        hasher.update(f"|check:{str(check).lower()}".encode())
    if fork is not None:
        hasher.update(f"|fork:{fork}".encode())
    if sampled is not None:
        hasher.update(f"|sampled:{sampled}".encode())
    if shard is not None:
        hasher.update(f"|shard:{shard}".encode())
    return hasher.hexdigest()


@dataclass(frozen=True)
class RetryPolicy:
    """How the runner treats a pool job that did not come back clean.

    Attributes:
        max_attempts: total attempts per job (1 = never retry). Applies to
            *retryable* failures — worker crashes, cancellations from a pool
            teardown, and timeouts; deterministic simulation exceptions
            always surface after one attempt regardless.
        timeout: per-attempt wall-clock seconds before an attempt is
            declared hung (None = wait forever). A hung attempt cannot be
            cancelled — its worker is wedged — so the whole pool is hard
            killed and respawned.
        backoff_base: first retry delay, seconds.
        backoff_factor: multiplier per further retry (exponential).
        backoff_max: delay ceiling, seconds.
        jitter: fraction of the delay added as deterministic per-(job,
            attempt) jitter, de-synchronizing retry stampedes.
        max_pool_deaths: pool teardowns tolerated before the runner stops
            trusting process isolation and degrades to inline execution.
    """

    max_attempts: int = 3
    timeout: Optional[float] = None
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 8.0
    jitter: float = 0.5
    max_pool_deaths: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.max_pool_deaths < 1:
            raise ValueError(
                f"max_pool_deaths must be >= 1, got {self.max_pool_deaths}"
            )

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before ``attempt`` (2nd attempt = first retry) in seconds."""
        import hashlib

        base = self.backoff_base * self.backoff_factor ** max(0, attempt - 2)
        base = min(base, self.backoff_max)
        digest = hashlib.sha256(f"jitter:{key}:{attempt}".encode()).digest()
        roll = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return base * (1.0 + self.jitter * roll)


@dataclass(frozen=True)
class JobFailure:
    """Terminal record of one job the sweep could not complete.

    ``kind`` is ``"fatal"`` (deterministic simulation exception), ``"crash"``
    (worker/pool death, retries exhausted) or ``"hang"`` (timeouts, retries
    exhausted).
    """

    job_id: int
    key: str
    label: str
    kind: str
    attempts: int
    error: str
    traceback: str

    def to_dict(self) -> Dict:
        return {
            "job_id": self.job_id,
            "key": self.key,
            "label": self.label,
            "kind": self.kind,
            "attempts": self.attempts,
            "error": self.error,
            "traceback": self.traceback,
        }


class SweepJobError(RuntimeError):
    """A job failed terminally; details in :attr:`failure`.

    The underlying exception (the simulation error, ``BrokenProcessPool``,
    or the final ``TimeoutError``) is chained as ``__cause__``.
    """

    def __init__(self, failure: JobFailure) -> None:
        super().__init__(
            f"sweep job {failure.label!r} failed ({failure.kind}) after "
            f"{failure.attempts} attempt(s): {failure.error}"
        )
        self.failure = failure


@dataclass(frozen=True)
class SweepJob:
    """Picklable spec of one simulation (what a worker process receives).

    ``telemetry``/``telemetry_path`` are observational riders: they are NOT
    part of :func:`job_key` (telemetry cannot change results), so a cache
    hit legitimately skips producing a telemetry artifact.

    ``fork_checkpoint`` points a fork-from-warm job at its group's warm
    image on disk — the worker restores its own private copy of the image
    from the (read-only) file, so any number of cells fork from one snapshot
    concurrently. ``sampled`` switches the job to SMARTS-style sampled
    execution. Both change results, so both are part of :func:`job_key`.
    """

    job_id: int
    key: str
    config: SystemConfig
    traces: Tuple[Trace, ...]
    max_events: Optional[int] = None
    check: str = "off"
    telemetry: Optional[TelemetryConfig] = None
    telemetry_path: Optional[str] = None
    fork_checkpoint: Optional[str] = None
    warm_mechanism: Optional[str] = None
    sampled: Optional["SampledConfig"] = None
    shard: Optional["ShardSpec"] = None

    @property
    def label(self) -> str:
        names = ",".join(trace.name for trace in self.traces)
        tags = ""
        if self.fork_checkpoint is not None:
            tags += "+fork"
        if self.sampled is not None:
            tags += "+sampled"
        if self.shard is not None:
            tags += f"+shard{self.shard.key()}"
        return f"{self.config.mechanism}[{names}]{tags}"


def _telemetry_partial_path(path: str) -> str:
    """Where a job streams epochs while running (see :func:`_execute`)."""
    return f"{path}.partial"


def _execute_checkpoint(job: SweepJob) -> SimulationResult:
    """Run one fork-from-warm and/or sampled job.

    The checkpoint package is imported lazily so plain sweeps never pay for
    it. The runner refuses to construct checkpoint-mode sweeps with check or
    telemetry riders, so this path never streams epochs or audits ledgers.
    """
    from repro.checkpoint import fork_system, load_snapshot, quiesce
    from repro.checkpoint.sampled import run_sampled, run_windows

    if job.fork_checkpoint is None:
        return run_sampled(job.config, list(job.traces), job.sampled).result
    system = load_snapshot(job.fork_checkpoint)
    fork_system(system, job.config)
    if job.sampled is not None:
        # Dirty-state adoption may have queued DBI-eviction writeback probes
        # behind the tag port; drain them (quiesce re-pauses the cores, as
        # run_windows expects) before the first sampled window opens.
        quiesce(system)
        return run_windows(system, job.sampled).result
    return system.resume(max_events=job.max_events)


def _execute(job: SweepJob) -> SimulationResult:
    """Run one job (module-level so the process pool can pickle it).

    Telemetry-enabled jobs stream epochs to ``<telemetry_path>.partial``
    while running and rename to the final path on success, so a crashed or
    hung attempt leaves a ``.partial`` forensic trail of exactly the epochs
    it completed, while finished artifacts are never torn.
    """
    if job.shard is not None:
        from repro.checkpoint.shard import run_shard

        return run_shard(job.config, list(job.traces), job.shard)
    if job.fork_checkpoint is not None or job.sampled is not None:
        return _execute_checkpoint(job)
    if job.telemetry is None or job.telemetry_path is None:
        return run_system(
            job.config,
            list(job.traces),
            max_events=job.max_events,
            check=job.check,
        )
    import dataclasses

    partial = _telemetry_partial_path(job.telemetry_path)
    directory = os.path.dirname(partial)
    if directory:
        os.makedirs(directory, exist_ok=True)
    meta = (
        ("label", job.label),
        ("key", job.key),
        ("mechanism", job.config.mechanism),
        ("traces", ",".join(trace.name for trace in job.traces)),
    )
    telemetry = dataclasses.replace(
        job.telemetry, jsonl_path=partial, meta=meta
    )
    result = run_system(
        job.config,
        list(job.traces),
        max_events=job.max_events,
        check=job.check,
        telemetry=telemetry,
    )
    publish_file(partial, job.telemetry_path)
    return result


def _worker_heartbeat_path(heartbeat_dir: str) -> str:
    """This worker process's beacon file (one per pool process)."""
    return os.path.join(heartbeat_dir, f"worker-{os.getpid()}.json")


def _execute_in_worker(
    job: SweepJob,
    attempt: int,
    chaos: Optional[ChaosConfig],
    heartbeat_dir: Optional[str] = None,
) -> SimulationResult:
    """Pool-side entry point: apply per-attempt chaos, then simulate.

    The chaos config rides along with the job so workers need no environment
    plumbing; decisions are pure functions of (seed, kind, key, attempt).

    With a ``heartbeat_dir``, the worker beats at attempt start and end, so
    the campaign watchdog can see workers that die or wedge *outside* an
    attempt — a window the runner's per-job timeout cannot observe because
    its timer only runs while a future is being awaited.
    """
    if heartbeat_dir is not None:
        from repro.utils.heartbeat import write_heartbeat

        os.makedirs(heartbeat_dir, exist_ok=True)
        beacon = _worker_heartbeat_path(heartbeat_dir)
        write_heartbeat(
            beacon, state="running", job=job.label, key=job.key,
            attempt=attempt,
        )
    if chaos is not None:
        FaultInjector(chaos).apply_in_worker(job.key, attempt)
    result = _execute(job)
    if heartbeat_dir is not None:
        write_heartbeat(beacon, state="idle", job=job.label, key=job.key,
                        attempt=attempt)
    return result


class SweepFuture:
    """Handle to one submitted job; ``result()`` blocks until it is done.

    For pool-backed jobs, ``result()`` drives the runner's retry loop: it is
    where timeouts are detected, crashed attempts are re-dispatched, and the
    completed result is cached and accounted exactly once.
    """

    def __init__(
        self,
        job: SweepJob,
        inner: Optional[concurrent.futures.Future] = None,
        value: Optional[SimulationResult] = None,
        runner: Optional["SweepRunner"] = None,
    ) -> None:
        self.job = job
        self.attempts = 1
        self.started = time.perf_counter()
        self._inner = inner
        self._value = value
        self._runner = runner
        self._failure: Optional[JobFailure] = None
        self._resolve_lock = threading.Lock()

    def done(self) -> bool:
        return (
            self._value is not None
            or self._failure is not None
            or (self._inner is not None and self._inner.done())
        )

    def result(self, timeout: Optional[float] = None) -> SimulationResult:
        """The job's result.

        Raises:
            SweepJobError: the job failed terminally (deterministic
                simulation error, or retries exhausted); the original
                exception is chained as ``__cause__``.
        """
        if self._value is not None:
            return self._value
        if self._failure is not None:
            raise SweepJobError(self._failure)
        if self._runner is not None:
            return self._runner._await(self)
        self._value = self._inner.result(timeout)
        return self._value


@dataclass(frozen=True)
class _StitchedJob:
    """Job-shaped identity of a sharded cell (key + label only)."""

    key: str
    label: str


class ShardedSweepFuture:
    """Handle to one sharded run: N segment futures stitched on collect.

    Quacks like :class:`SweepFuture` where callers care: ``job.key`` is a
    deterministic composite of the segment keys (stable across resumes, so
    campaign journals can record it), and ``result()`` blocks for every
    segment and returns the stitched whole-run result. A failing segment
    raises its :class:`SweepJobError` unchanged.
    """

    def __init__(self, futures: Sequence[SweepFuture]) -> None:
        import hashlib

        if not futures:
            raise ValueError("a sharded future needs at least one segment")
        self.futures = list(futures)
        composite = hashlib.sha256(
            "|".join(future.job.key for future in self.futures).encode()
        ).hexdigest()
        base = self.futures[0].job
        label = base.label.split("+shard")[0]
        self.job = _StitchedJob(
            key=f"stitched:{composite}",
            label=f"{label}+stitched{len(self.futures)}",
        )
        self._value: Optional[SimulationResult] = None

    def done(self) -> bool:
        return self._value is not None or all(
            future.done() for future in self.futures
        )

    def result(self, timeout: Optional[float] = None) -> SimulationResult:
        from repro.checkpoint.shard import stitch_shards

        if self._value is None:
            self._value = stitch_shards(
                [future.result(timeout) for future in self.futures]
            )
        return self._value

    def shard_results(self) -> List[SimulationResult]:
        """The per-segment results (for confidence-interval estimation)."""
        return [future.result() for future in self.futures]


def stderr_progress(line: str) -> None:
    """Default progress sink: one line per completed job on stderr."""
    print(line, file=sys.stderr, flush=True)


class SweepRunner:
    """Fan (config, traces) jobs over worker processes with result caching.

    Args:
        workers: process count; ``None`` = ``os.cpu_count() - 1``; values
            below 2 run jobs inline in this process (deterministically
            identical results, no pool overhead).
        cache_dir: on-disk cache directory; created on first write.
        use_cache: set False to neither read nor write the disk cache
            (in-memory memoization of repeated submissions still applies).
        progress: callable receiving one formatted line per finished job
            (job id, mechanism/traces, elapsed seconds, hit/miss/retry/
            failed); ``None`` is silent, :func:`stderr_progress` prints to
            stderr.
        check: runtime verification level passed to every job ("off",
            "cheap" or "full"; see :mod:`repro.check`). Non-off levels get
            distinct cache keys so verification sweeps actually simulate.
        retry: crash/hang recovery policy (:class:`RetryPolicy`); the
            default retries crashes twice with backoff and never times out.
        keep_going: advisory partial-results mode. The runner itself always
            records failures and keeps scheduling; this flag tells
            *collectors* (``repro.analysis.experiments``) to swallow
            :class:`SweepJobError` per job and render partial artifacts.
        chaos: deterministic fault injection (tests/CI); defaults to the
            ``REPRO_CHAOS`` environment spec, i.e. off.
        telemetry: epoch-sampling config attached to every *simulated* job;
            each produces a ``<key>.telemetry.jsonl`` artifact. Telemetry is
            observational (results are byte-identical with it on or off), so
            it is excluded from :func:`job_key` — which also means cache
            hits skip simulating and therefore produce no artifact; delete
            the cache entry (or disable the cache) to regenerate a trace.
        telemetry_dir: where telemetry artifacts land; defaults to the
            cache directory (so traces sit next to the results they
            describe) or ``results/telemetry`` when the cache is off.
        retain_failed_telemetry: keep the ``.partial`` epoch stream of a
            terminally failed job as a forensic trail instead of deleting
            it (chaos-killed and hung runs show exactly how far they got).
        checkpoint_dir: enables fork-from-warm sweeps. Each (traces,
            shared-config) group warms *once* under its normalized
            mechanism, snapshots at the warmup boundary into
            ``<checkpoint_dir>/warm-<key>.ckpt``, and every cell forks from
            that shared image (see :mod:`repro.checkpoint.fork`). Forked
            results are a documented approximation of cold runs; their
            cache entries carry a distinct key component. Existing warm
            images are digest-verified before reuse; corrupt ones are
            quarantined to ``.ckpt.corrupt`` and rebuilt.
        sampled: switches every job to SMARTS-style sampled execution
            (:mod:`repro.checkpoint.sampled`): detailed measurement windows
            separated by functional fast-forward. Composes with
            ``checkpoint_dir`` (fork, then sample) or stands alone (warm
            under the cell's own mechanism, then sample). Sampled results
            are estimates with confidence intervals; the cached
            :class:`SimulationResult` is synthesized from the window sums
            and keyed separately from full runs.

        Neither checkpoint mode composes with ``check`` or ``telemetry``:
        the mechanism swap and functional fast-forward violate the ledger
        invariants the check engine audits, and sampled epoch streams would
        be full of fast-forward discontinuities. Construction raises
        ``ValueError`` on those combinations rather than producing
        quietly-wrong artifacts.

    Usage::

        with SweepRunner(workers=4) as runner:
            futures = [runner.submit(cfg, [trace]) for cfg in configs]
            results = [f.result() for f in futures]
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
        use_cache: bool = True,
        progress: Optional[Callable[[str], None]] = None,
        check: str = "off",
        retry: Optional[RetryPolicy] = None,
        keep_going: bool = False,
        chaos: Optional[ChaosConfig] = None,
        telemetry: Optional[TelemetryConfig] = None,
        telemetry_dir: Optional[str] = None,
        retain_failed_telemetry: bool = False,
        checkpoint_dir: Optional[str] = None,
        sampled: Optional["SampledConfig"] = None,
        heartbeat_dir: Optional[str] = None,
    ) -> None:
        self.workers = default_workers() if workers is None else max(0, workers)
        self.heartbeat_dir = heartbeat_dir
        self.cache_dir = cache_dir if (use_cache and cache_dir) else None
        self.telemetry = telemetry
        self.telemetry_dir = telemetry_dir or self.cache_dir or DEFAULT_TELEMETRY_DIR
        self.retain_failed_telemetry = retain_failed_telemetry
        self.progress = progress
        self.check = str(check).lower()
        self.checkpoint_dir = checkpoint_dir
        self.sampled = sampled
        if checkpoint_dir is not None or sampled is not None:
            mode = "fork-from-warm" if checkpoint_dir is not None else "sampled"
            if self.check != "off":
                raise ValueError(
                    f"{mode} sweeps do not compose with --check: the "
                    "mechanism swap / functional fast-forward violates the "
                    "writeback-ledger invariants the check engine audits"
                )
            if telemetry is not None:
                raise ValueError(
                    f"{mode} sweeps do not compose with telemetry riders: "
                    "epoch streams would be full of fast-forward and "
                    "mechanism-swap discontinuities"
                )
        self.retry = retry or RetryPolicy()
        self.keep_going = keep_going
        self.chaos = chaos if chaos is not None else chaos_from_env()
        self._injector = FaultInjector(self.chaos) if self.chaos else None
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._lock = threading.RLock()
        self._futures: Dict[str, SweepFuture] = {}
        self._next_id = 0
        self._started = time.perf_counter()
        self.jobs_submitted = 0  # distinct jobs seen
        self.memo_hits = 0  # repeated submissions coalesced in-process
        self.cache_hits = 0  # jobs answered from the disk cache
        self.jobs_executed = 0  # jobs actually simulated
        self.jobs_failed = 0  # jobs that failed terminally
        self.jobs_retried = 0  # attempts beyond the first, across all jobs
        self.cache_corrupt = 0  # cache entries quarantined on load
        self.pool_deaths = 0  # pools torn down after a crash or hang
        self.degraded_inline = False  # too many pool deaths: running inline
        self.warm_images_built = 0  # fork groups whose image was produced
        self.checkpoints_quarantined = 0  # corrupt warm images set aside
        self.failures: List[JobFailure] = []
        self.warm_locks_reclaimed = 0  # stale build locks displaced
        self._warm_lock = threading.Lock()
        self._warm_verified: set = set()  # warm-image paths already vetted
        #: Test/chaos hook called (with the image path) while the build lock
        #: is held, right before a warm image is written — the campaign
        #: chaos layer uses it to die mid-checkpoint-build on schedule.
        self.warm_build_hook: Optional[Callable[[str], None]] = None

    # ------------------------------------------------------------ lifecycle

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        # On an exception (including KeyboardInterrupt) drop queued work
        # instead of blocking on it — a Ctrl-C'd sweep should die promptly.
        self.close(cancel=exc_type is not None)

    def close(self, cancel: bool = False) -> None:
        """Shut the worker pool down.

        Args:
            cancel: False waits for in-flight jobs; True cancels queued jobs
                and returns without waiting.
        """
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            if cancel:
                pool.shutdown(wait=False, cancel_futures=True)
            else:
                pool.shutdown(wait=True)

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers
            )
        return self._pool

    # ------------------------------------------------------------ interface

    def submit(
        self,
        config: SystemConfig,
        traces: Sequence[Trace],
        max_events: Optional[int] = None,
        shard: Optional["ShardSpec"] = None,
    ) -> SweepFuture:
        """Schedule one simulation; duplicate submissions share one future.

        A job that previously failed is *not* memoized: resubmitting it
        schedules a fresh future instead of returning the poisoned one.
        """
        traces = tuple(traces)
        if self.sampled is not None and max_events is not None:
            raise ValueError(
                "sampled mode schedules its own detailed windows; "
                "max_events is not supported"
            )
        if shard is not None:
            self._check_shardable(max_events)
        fork_checkpoint = None
        warm_mechanism = None
        if self.checkpoint_dir is not None:
            warm_mechanism, fork_checkpoint = self._ensure_warm_image(
                config, traces
            )
        key = job_key(
            config,
            traces,
            max_events,
            check=self.check,
            fork=warm_mechanism,
            sampled=self.sampled.key() if self.sampled is not None else None,
            shard=shard.key() if shard is not None else None,
        )
        with self._lock:
            existing = self._futures.get(key)
            if existing is not None:
                self.memo_hits += 1
                return existing
            telemetry_path = (
                os.path.join(self.telemetry_dir, f"{key}.telemetry.jsonl")
                if self.telemetry is not None
                else None
            )
            job = SweepJob(
                self._next_id,
                key,
                config,
                traces,
                max_events,
                self.check,
                telemetry=self.telemetry,
                telemetry_path=telemetry_path,
                fork_checkpoint=fork_checkpoint,
                warm_mechanism=warm_mechanism,
                sampled=self.sampled,
                shard=shard,
            )
            self._next_id += 1
            self.jobs_submitted += 1
            future = self._dispatch(job)
            if future._failure is None:
                self._futures[key] = future
            return future

    def _check_shardable(self, max_events: Optional[int]) -> None:
        if self.check != "off":
            raise ValueError(
                "sharded runs do not compose with --check: the functional "
                "fast-forward between segments violates the writeback-"
                "ledger invariants the check engine audits"
            )
        if self.telemetry is not None:
            raise ValueError(
                "sharded runs do not compose with telemetry riders: each "
                "segment's epoch stream would restart mid-run"
            )
        if self.checkpoint_dir is not None or self.sampled is not None:
            raise ValueError(
                "sharded runs already warm and fast-forward per segment; "
                "they do not compose with fork-from-warm or sampled mode"
            )
        if max_events is not None:
            raise ValueError(
                "sharded runs schedule their own segments; max_events is "
                "not supported"
            )

    def submit_sharded(
        self,
        config: SystemConfig,
        traces: Sequence[Trace],
        shards: int,
    ) -> "ShardedSweepFuture":
        """Split one run into ``shards`` stitched segments (one job each).

        Each segment is an independent, individually cached job
        (:mod:`repro.checkpoint.shard`), so segments fan out across the
        worker pool and a resumed campaign re-answers completed segments
        from the cache. ``result()`` stitches the segments into one
        whole-run :class:`SimulationResult`.
        """
        from repro.checkpoint.shard import ShardSpec

        traces = tuple(traces)
        futures = [
            self.submit(config, traces, shard=ShardSpec(index, shards))
            for index in range(shards)
        ]
        return ShardedSweepFuture(futures)

    def run(
        self,
        config: SystemConfig,
        traces: Sequence[Trace],
        max_events: Optional[int] = None,
    ) -> SimulationResult:
        """Synchronous convenience: submit and wait."""
        return self.submit(config, traces, max_events=max_events).result()

    def summary(self) -> str:
        """One-line account of the sweep (for end-of-run reporting)."""
        elapsed = time.perf_counter() - self._started
        extra = ""
        if self.jobs_failed:
            extra += f", {self.jobs_failed} failed"
        if self.jobs_retried:
            extra += f", {self.jobs_retried} retried"
        if self.cache_corrupt:
            extra += f", {self.cache_corrupt} corrupt cache entries quarantined"
        if self.warm_images_built:
            extra += f", {self.warm_images_built} warm image(s) built"
        if self.checkpoints_quarantined:
            extra += (
                f", {self.checkpoints_quarantined} corrupt warm image(s) "
                "quarantined"
            )
        if self.degraded_inline:
            extra += f", degraded to inline after {self.pool_deaths} pool deaths"
        return (
            f"sweep: {self.jobs_submitted} jobs "
            f"({self.jobs_executed} simulated, {self.cache_hits} cache hits, "
            f"{self.memo_hits} coalesced{extra}) in {elapsed:.1f}s "
            f"with {self.workers} worker(s)"
        )

    def write_failure_manifest(self, path: Optional[str] = None) -> str:
        """Persist the failure record for this sweep; returns the path.

        Written atomically so a crash mid-write never leaves a torn
        manifest. An empty-failure sweep writes a manifest too (an explicit
        "nothing failed" beats a stale file from last week's broken run).
        """
        path = path or DEFAULT_FAILURE_MANIFEST
        with self._lock:
            payload = {
                "format": FAILURE_MANIFEST_FORMAT,
                "jobs_submitted": self.jobs_submitted,
                "jobs_failed": self.jobs_failed,
                "failures": [failure.to_dict() for failure in self.failures],
            }
        atomic_write_json(path, payload, indent=2)
        return path

    # ---------------------------------------------------------- warm images

    def _ensure_warm_image(
        self, config: SystemConfig, traces: Tuple[Trace, ...]
    ) -> Tuple[str, str]:
        """The (mechanism, path) of ``config``'s fork-group warm image.

        The image is content-addressed by the *warm* config — mechanism
        normalized away, LLC resolution pinned (see
        :func:`~repro.checkpoint.warm.warm_config_for`) — so every cell of a
        (traces, shared-config) group resolves to the same file and the
        0.4 × run warmup cost is paid once per group. Pre-existing files are
        digest-verified before reuse; a corrupt image is quarantined to
        ``.ckpt.corrupt`` and rebuilt.

        Builds are serialized by a crash-reclaimable ``warm-<key>.ckpt.lock``
        (pid + heartbeat, see :class:`~repro.utils.locks.FileLock`): campaign
        workers racing on a group build it exactly once, and a builder
        SIGKILLed mid-build leaves a lock the next builder *reclaims* by pid
        death instead of deadlocking behind it forever. Reclaims are counted
        in ``warm_locks_reclaimed``. The simulator is deterministic, so even
        a (TTL-window) double build produces identical bytes.
        """
        from repro.checkpoint import (
            CheckpointError,
            make_warm_system,
            save_snapshot,
            verify_snapshot,
            warm_config_for,
        )

        warm_config = warm_config_for(config)
        key = job_key(warm_config, traces)
        path = os.path.join(self.checkpoint_dir, f"warm-{key}.ckpt")
        with self._warm_lock:
            if path in self._warm_verified:
                return warm_config.mechanism, path
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        build_lock = FileLock(
            f"{path}.lock", stale_seconds=WARM_LOCK_STALE_SECONDS
        )
        with build_lock:
            # Re-check under the cross-process lock: another builder (or
            # another thread of this runner) may have finished the image
            # while this one waited.
            if os.path.exists(path):
                try:
                    verify_snapshot(path)
                except CheckpointError:
                    self._quarantine_checkpoint(path)
            if not os.path.exists(path):
                # A builder SIGKILLed mid-write leaves `<image>.tmp.<pid>`
                # staging litter; under the build lock it is provably
                # abandoned, so sweep it before rebuilding.
                import glob as glob_module

                for stale in glob_module.glob(f"{path}.tmp.*"):
                    try:
                        os.unlink(stale)
                    except OSError:
                        pass
                system = make_warm_system(warm_config, list(traces))
                build_lock.beat()  # warming can outlive a TTL; prove life
                if self.warm_build_hook is not None:
                    self.warm_build_hook(path)
                save_snapshot(system, path)
                with self._lock:
                    self.warm_images_built += 1
        with self._lock:
            self.warm_locks_reclaimed += build_lock.reclaimed
        with self._warm_lock:
            self._warm_verified.add(path)
        return warm_config.mechanism, path

    def _quarantine_checkpoint(self, path: str) -> None:
        """Set a corrupt warm image aside (evidence kept) and count it."""
        with self._lock:
            self.checkpoints_quarantined += 1
        try:
            os.replace(path, f"{path}.corrupt")
        except OSError:
            pass

    # ------------------------------------------------------------- dispatch

    def _dispatch(self, job: SweepJob) -> SweepFuture:
        cached = self._load_cached(job.key)
        if cached is not None:
            self.cache_hits += 1
            self._emit(job, 0.0, "hit")
            return SweepFuture(job, value=cached)
        future = SweepFuture(job, runner=self)
        if self.workers >= 2 and not self.degraded_inline:
            future._inner = self._submit_attempt(job, future.attempts)
            return future
        # Inline mode executes at submission (callers may rely on
        # jobs_executed being current); failures surface from result().
        try:
            self._await(future)
        except SweepJobError:
            pass
        return future

    def _submit_attempt(
        self, job: SweepJob, attempt: int
    ) -> concurrent.futures.Future:
        """One execution attempt: pool submission, or inline when degraded."""
        while self.workers >= 2 and not self.degraded_inline:
            try:
                return self._ensure_pool().submit(
                    _execute_in_worker, job, attempt, self.chaos,
                    self.heartbeat_dir,
                )
            except concurrent.futures.BrokenExecutor:
                # The pool broke under another job and nobody has collected
                # that job yet; tear it down and submit to a fresh one.
                self._pool_died(wedged=False)
        # Inline execution shares the future-based error path with the pool
        # so _await classifies both identically. Crash/hang chaos is never
        # applied inline — it would take down the submitting process.
        inline: concurrent.futures.Future = concurrent.futures.Future()
        try:
            inline.set_result(_execute(job))
        except Exception as exc:  # classified fatal by _await
            inline.set_exception(exc)
        return inline

    def _await(self, future: SweepFuture) -> SimulationResult:
        """Drive one job to completion or terminal failure (retry loop)."""
        with future._resolve_lock:
            if future._value is not None:
                return future._value
            if future._failure is not None:
                raise SweepJobError(future._failure)
            job = future.job
            while True:
                if future._inner is None:
                    future._inner = self._submit_attempt(job, future.attempts)
                pool_died = False
                try:
                    result = future._inner.result(timeout=self.retry.timeout)
                except concurrent.futures.TimeoutError as exc:
                    # The worker is wedged: the attempt cannot be cancelled,
                    # only the pool can be killed out from under it.
                    kind, error, pool_died = "hang", exc, True
                except concurrent.futures.CancelledError as exc:
                    # Collateral of another job's pool teardown.
                    kind, error = "crash", exc
                except concurrent.futures.BrokenExecutor as exc:
                    kind, error, pool_died = "crash", exc, True
                except Exception as exc:
                    # A deterministic simulation error: a retry would fail
                    # identically, so surface it after this one attempt.
                    self._fail(future, "fatal", exc)
                else:
                    return self._complete(future, result)
                future._inner = None
                if pool_died:
                    self._pool_died(wedged=(kind == "hang"))
                if future.attempts >= self.retry.max_attempts:
                    self._fail(future, kind, error)
                future.attempts += 1
                with self._lock:
                    self.jobs_retried += 1
                self._emit(
                    job,
                    time.perf_counter() - future.started,
                    f"retry {future.attempts}/{self.retry.max_attempts} ({kind})",
                )
                time.sleep(self.retry.delay(job.key, future.attempts))

    def _complete(
        self, future: SweepFuture, result: SimulationResult
    ) -> SimulationResult:
        job = future.job
        with self._lock:
            self.jobs_executed += 1
        self._store_cached(job.key, job.label, result)
        if self._injector is not None and self.cache_dir is not None:
            if self._injector.should_corrupt(job.key):
                self._injector.corrupt_file(self._cache_path(job.key))
        self._emit(job, time.perf_counter() - future.started, "miss")
        future._value = result
        return result

    def _fail(self, future: SweepFuture, kind: str, exc: Exception) -> None:
        job = future.job
        failure = JobFailure(
            job_id=job.job_id,
            key=job.key,
            label=job.label,
            kind=kind,
            attempts=future.attempts,
            error=f"{type(exc).__name__}: {exc}",
            traceback="".join(
                traceback_module.format_exception(type(exc), exc, exc.__traceback__)
            ),
        )
        with self._lock:
            self.jobs_failed += 1
            self.failures.append(failure)
            # Evict the poisoned key: accounting must reflect the failure
            # and a resubmission must get a fresh future, not this one.
            if self._futures.get(job.key) is future:
                del self._futures[job.key]
        future._failure = failure
        if job.telemetry_path is not None and not self.retain_failed_telemetry:
            # Without retention, a dead job's half-written epoch stream is
            # just litter; with it, the .partial is the forensic record of
            # exactly where the run died.
            try:
                os.unlink(_telemetry_partial_path(job.telemetry_path))
            except OSError:
                pass
        self._emit(
            job,
            time.perf_counter() - future.started,
            f"failed ({kind}, {future.attempts} attempt(s))",
        )
        raise SweepJobError(failure) from exc

    def _pool_died(self, wedged: bool) -> None:
        """Tear down a broken/wedged pool; degrade to inline past the limit."""
        with self._lock:
            pool, self._pool = self._pool, None
            if pool is None:
                return  # another job's recovery already handled this death
            self.pool_deaths += 1
            if self.pool_deaths >= self.retry.max_pool_deaths:
                self.degraded_inline = True
        if wedged:
            # shutdown() would join the wedged worker forever; kill first.
            for process in list(getattr(pool, "_processes", {}).values()):
                try:
                    process.kill()
                except OSError:
                    pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _emit(self, job: SweepJob, elapsed: float, status: str) -> None:
        if self.progress is not None:
            self.progress(
                f"[sweep {job.job_id:04d}] {job.label:<40s} "
                f"{elapsed:7.2f}s  {status}"
            )

    # ---------------------------------------------------------- disk cache

    def _cache_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")

    def _load_cached(self, key: str) -> Optional[SimulationResult]:
        if self.cache_dir is None:
            return None
        path = self._cache_path(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except OSError:
            return None  # a missing entry is a normal cache miss
        except ValueError:
            return self._quarantine(key, path)
        if payload.get("format") != CACHE_FORMAT or payload.get("key") != key:
            return self._quarantine(key, path)
        try:
            return SimulationResult.from_dict(payload["result"])
        except (KeyError, TypeError):
            return self._quarantine(key, path)

    def _quarantine(self, key: str, path: str) -> None:
        """Move a corrupt/mismatched entry aside and make the damage visible.

        Renaming (rather than deleting) preserves the evidence for a
        post-mortem; counting it means a disk that corrupts every entry
        shows up in ``summary()`` instead of silently resimulating forever.
        """
        with self._lock:
            self.cache_corrupt += 1
        try:
            os.replace(path, f"{path}.corrupt")
        except OSError:
            pass
        return None

    def _store_cached(self, key: str, label: str, result: SimulationResult) -> None:
        if self.cache_dir is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        path = self._cache_path(key)
        existing = self._read_result_dict(path)
        if existing is not None:
            # A retried (or concurrently executed) job must reproduce the
            # stored result exactly — the simulator is deterministic, so a
            # divergence means an attempt double-counted a writeback or stat.
            from repro.check.invariants import check_retry_consistency

            check_retry_consistency(label, existing, result.to_dict())
        payload = {
            "format": CACHE_FORMAT,
            "key": key,
            "label": label,
            "result": result.to_dict(),
        }
        try:
            atomic_write_json(path, payload)
        except OSError:
            # Caching is an optimization; a read-only disk must not kill a
            # sweep whose simulations are succeeding.
            pass

    def _read_result_dict(self, path: str) -> Optional[Dict]:
        """The stored result dict at ``path``, or None if absent/unreadable."""
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        result = payload.get("result")
        return result if isinstance(result, dict) else None
