"""Deterministic fault injection for the sweep engine.

Large sweeps die in three characteristic ways: a worker process crashes
(OOM killer, segfaulting native code), a worker wedges forever (NFS stall,
scheduler pathologies), or an on-disk cache entry is corrupted (torn write,
bad disk). The :class:`FaultInjector` reproduces all three **on purpose and
deterministically**, so tests can prove the
:class:`~repro.analysis.runner.SweepRunner`'s recovery machinery works: a
sweep under fault rate *p* must produce byte-identical
:class:`~repro.sim.system.SimulationResult`s to a fault-free run.

Determinism
    Every decision is a pure function of ``(seed, fault kind, job key,
    attempt)`` hashed through SHA-256 — independent of scheduling, worker
    identity and wall-clock. The same chaos spec against the same job set
    injects the same faults, every run, on every machine.

Enablement
    * programmatically: pass a :class:`ChaosConfig` to ``SweepRunner``;
    * end to end: set the ``REPRO_CHAOS`` environment variable (or the
      ``--chaos`` test hook on ``python -m repro experiment``) to a spec
      like ``seed=7,crash=0.3,hang=0.3,corrupt=0.3,hang_seconds=20``.

Crash and hang injection happen *inside pool worker processes* (the config
travels with the job, so workers need no environment plumbing); they are
never applied to inline execution, where a crash would take down the
submitting process itself. Cache corruption is applied by the parent right
after an entry is written, modelling a torn write discovered on a later
resume.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass, fields
from typing import Optional

#: Environment variable holding a chaos spec (empty/"off"/"0" disables).
CHAOS_ENV = "REPRO_CHAOS"

#: Environment variable holding a campaign-level chaos spec (see
#: :func:`parse_campaign_chaos_spec`).
CAMPAIGN_CHAOS_ENV = "REPRO_CAMPAIGN_CHAOS"

#: Exit code used for injected worker crashes (visible in pool diagnostics).
CRASH_EXIT_CODE = 13


@dataclass(frozen=True)
class ChaosConfig:
    """Picklable fault-injection knobs (travels to pool workers with jobs).

    Attributes:
        seed: decision-hash seed; same seed = same injected faults.
        crash: probability a worker attempt dies via ``os._exit``.
        hang: probability a worker attempt sleeps ``hang_seconds`` first.
        corrupt: probability a freshly written cache entry is garbled.
        hang_seconds: artificial hang length (must exceed the runner's
            per-job timeout to actually trigger hang recovery).
        crash_attempts: only attempts ``<= crash_attempts`` are eligible to
            crash (None = every attempt); lets tests force "first attempt
            crashes, retry succeeds" deterministically.
        hang_attempts: same, for hangs.
    """

    seed: int = 0xC4A05
    crash: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    hang_seconds: float = 30.0
    crash_attempts: Optional[int] = None
    hang_attempts: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("crash", "hang", "corrupt"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1], got {value}")

    @property
    def enabled(self) -> bool:
        return self.crash > 0 or self.hang > 0 or self.corrupt > 0


def parse_chaos_spec(spec: Optional[str]) -> Optional[ChaosConfig]:
    """Parse ``key=value,key=value`` into a :class:`ChaosConfig`.

    Returns None for empty/disabled specs (``""``, ``"off"``, ``"0"``).

    Example:
        >>> parse_chaos_spec("crash=0.5,seed=7").crash
        0.5
    """
    if spec is None:
        return None
    spec = spec.strip()
    if not spec or spec.lower() in ("off", "none", "0", "false"):
        return None
    known = {f.name: f for f in fields(ChaosConfig)}
    kwargs = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        name, sep, value = item.partition("=")
        name = name.strip()
        if not sep or name not in known:
            raise ValueError(
                f"bad chaos spec item {item!r}; known keys: {sorted(known)}"
            )
        if name in ("seed", "crash_attempts", "hang_attempts"):
            kwargs[name] = int(value, 0)
        else:
            kwargs[name] = float(value)
    return ChaosConfig(**kwargs)


def chaos_from_env() -> Optional[ChaosConfig]:
    """The :data:`CHAOS_ENV` spec, or None when unset/disabled."""
    return parse_chaos_spec(os.environ.get(CHAOS_ENV))


class FaultInjector:
    """Applies a :class:`ChaosConfig`'s faults, deterministically per job.

    Example:
        >>> injector = FaultInjector(ChaosConfig(crash=1.0))
        >>> injector.should_crash("somejobkey", attempt=1)
        True
    """

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config

    # ------------------------------------------------------------ decisions

    def _roll(self, kind: str, key: str, attempt: int) -> float:
        """Uniform [0, 1) from (seed, kind, key, attempt) — schedule-free."""
        digest = hashlib.sha256(
            f"{self.config.seed}:{kind}:{key}:{attempt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def should_crash(self, key: str, attempt: int) -> bool:
        limit = self.config.crash_attempts
        if limit is not None and attempt > limit:
            return False
        return self._roll("crash", key, attempt) < self.config.crash

    def should_hang(self, key: str, attempt: int) -> bool:
        limit = self.config.hang_attempts
        if limit is not None and attempt > limit:
            return False
        return self._roll("hang", key, attempt) < self.config.hang

    def should_corrupt(self, key: str) -> bool:
        return self._roll("corrupt", key, 0) < self.config.corrupt

    # ---------------------------------------------------------- application

    def apply_in_worker(self, key: str, attempt: int) -> None:
        """Run one attempt's worth of chaos inside a pool worker.

        Crash wins over hang when both roll true. ``os._exit`` (not
        ``sys.exit``) so the process dies without unwinding — exactly what a
        segfault or OOM kill looks like to the parent's process pool.
        """
        if self.should_crash(key, attempt):
            os._exit(CRASH_EXIT_CODE)
        if self.should_hang(key, attempt):
            time.sleep(self.config.hang_seconds)

    def corrupt_file(self, path: str) -> bool:
        """Garble a cache entry in place (torn-write model).

        Keeps the first half of the file and appends junk, producing the
        unparseable-JSON shape a killed writer leaves behind. Returns False
        if the file does not exist.
        """
        try:
            with open(path, "rb") as handle:
                data = handle.read()
            with open(path, "wb") as handle:
                handle.write(data[: len(data) // 2])
                handle.write(b"\x00CHAOS-TORN-WRITE")
        except OSError:
            return False
        return True


# ----------------------------------------------------------- campaign level


@dataclass(frozen=True)
class CampaignChaosConfig:
    """Orchestrator-level fault schedule (kill-and-resume proofs).

    Unlike job-level chaos (probabilistic per attempt), campaign chaos is
    *scheduled*: faults fire at exact journal offsets or build ordinals, so
    the proof harness can place a SIGKILL mid-journal-append or
    mid-checkpoint-build deterministically.

    Attributes:
        kill_seq: journal sequence number at which to act (None = never).
        mode: what happens at ``kill_seq``:
            * ``"kill"`` — SIGKILL immediately *after* the record is
              durable (crash between a decision and the action it covers);
            * ``"torn"`` — write only the first half of the record, fsync
              the fragment, then SIGKILL: a crash *mid-append*, leaving the
              torn tail recovery must quarantine;
            * ``"term"`` — SIGTERM the orchestrator after the append; the
              signal-safe drain path runs instead of a hard death.
        warm_kill: 1-based ordinal of the warm-checkpoint build to die in
            (SIGKILL while the build lock is held, with partial temp-file
            litter left behind), independent of ``kill_seq``.
    """

    kill_seq: Optional[int] = None
    mode: str = "kill"
    warm_kill: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in ("kill", "torn", "term"):
            raise ValueError(
                f"campaign chaos mode must be kill/torn/term, got {self.mode!r}"
            )
        if self.warm_kill is not None and self.warm_kill < 1:
            raise ValueError(f"warm_kill must be >= 1, got {self.warm_kill}")

    @property
    def enabled(self) -> bool:
        return self.kill_seq is not None or self.warm_kill is not None


def parse_campaign_chaos_spec(
    spec: Optional[str],
) -> Optional[CampaignChaosConfig]:
    """Parse ``key=value,...`` into a :class:`CampaignChaosConfig`.

    Keys: ``kill`` (journal seq), ``mode`` (kill/torn/term), ``warm_kill``
    (build ordinal). Returns None for empty/disabled specs.

    Example:
        >>> parse_campaign_chaos_spec("kill=7,mode=torn").mode
        'torn'
    """
    if spec is None:
        return None
    spec = spec.strip()
    if not spec or spec.lower() in ("off", "none", "0", "false"):
        return None
    kwargs = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        name, sep, value = item.partition("=")
        name = name.strip()
        if not sep or name not in ("kill", "mode", "warm_kill"):
            raise ValueError(
                f"bad campaign chaos item {item!r}; known keys: "
                "kill, mode, warm_kill"
            )
        if name == "kill":
            kwargs["kill_seq"] = int(value, 0)
        elif name == "warm_kill":
            kwargs["warm_kill"] = int(value, 0)
        else:
            kwargs["mode"] = value.strip()
    return CampaignChaosConfig(**kwargs)


def campaign_chaos_from_env() -> Optional[CampaignChaosConfig]:
    """The :data:`CAMPAIGN_CHAOS_ENV` spec, or None when unset/disabled."""
    return parse_campaign_chaos_spec(os.environ.get(CAMPAIGN_CHAOS_ENV))


class CampaignFaultInjector:
    """Applies a :class:`CampaignChaosConfig` at its scheduled points.

    Wired by the orchestrator into :class:`~repro.campaign.journal.
    CampaignJournal` (``before``/``after`` each durable append) and into
    ``SweepRunner.warm_build_hook`` (called while the warm-image build lock
    is held). SIGKILL is delivered to the *own* process group leader — the
    orchestrator — so no cleanup handler runs, exactly like the OOM killer.
    """

    def __init__(self, config: CampaignChaosConfig) -> None:
        self.config = config
        self.warm_builds_seen = 0

    # ------------------------------------------------------------ journal

    def before_journal_append(self, handle, seq: int, data: bytes) -> None:
        """Possibly die *mid-append*, leaving a durable half record."""
        if self.config.mode != "torn" or seq != self.config.kill_seq:
            return
        fragment = data[: max(1, len(data) // 2)]
        handle.write(fragment)
        handle.flush()
        os.fsync(handle.fileno())
        os.kill(os.getpid(), signal.SIGKILL)

    def after_journal_append(self, seq: int) -> None:
        """Possibly die (or request drain) right after a durable append."""
        if seq != self.config.kill_seq:
            return
        if self.config.mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.config.mode == "term":
            os.kill(os.getpid(), signal.SIGTERM)

    # ------------------------------------------------------- warm builds

    def on_warm_build(self, image_path: str) -> None:
        """Possibly die mid-checkpoint-build (build lock held).

        Leaves the litter a real torn builder would: a partial temp file
        next to the image. The lock file survives the SIGKILL; the resumed
        campaign must reclaim it by pid death, rebuild, and converge.
        """
        self.warm_builds_seen += 1
        if self.config.warm_kill is None:
            return
        if self.warm_builds_seen != self.config.warm_kill:
            return
        with open(f"{image_path}.tmp.{os.getpid()}", "wb") as handle:
            handle.write(b"DBICKPT\x00partial-chaos-litter")
            handle.flush()
            os.fsync(handle.fileno())
        os.kill(os.getpid(), signal.SIGKILL)
