"""Shared infrastructure: event queue, deterministic RNG, bit utilities, stats.

These modules are deliberately dependency-free so every other subpackage
(`repro.dram`, `repro.cache`, `repro.core`, ...) can build on them without
import cycles.
"""

from repro.utils.bits import (
    bit_length_of,
    ceil_div,
    ilog2,
    is_power_of_two,
    iter_set_bits,
    mask,
    popcount,
)
from repro.utils.events import Event, EventQueue
from repro.utils.rng import DeterministicRng
from repro.utils.stats import Counter, Distribution, RateStat, StatGroup
from repro.utils.validation import check_positive, check_power_of_two, check_range

__all__ = [
    "Event",
    "EventQueue",
    "DeterministicRng",
    "Counter",
    "Distribution",
    "RateStat",
    "StatGroup",
    "bit_length_of",
    "ceil_div",
    "ilog2",
    "is_power_of_two",
    "iter_set_bits",
    "mask",
    "popcount",
    "check_positive",
    "check_power_of_two",
    "check_range",
]
