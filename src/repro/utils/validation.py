"""Configuration validation helpers.

Every config dataclass in the project validates its fields in ``__post_init__``
through these helpers, so a misconfigured simulation fails loudly at
construction time instead of producing silently wrong numbers.
"""

from __future__ import annotations

from repro.utils.bits import is_power_of_two


def check_positive(name: str, value) -> None:
    """Raise ValueError unless ``value`` > 0."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_non_negative(name: str, value) -> None:
    """Raise ValueError unless ``value`` >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise ValueError unless ``value`` is a positive power of two."""
    if not isinstance(value, int) or not is_power_of_two(value):
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")


def check_range(name: str, value, low, high) -> None:
    """Raise ValueError unless low <= value <= high."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")


def check_divides(name_a: str, a: int, name_b: str, b: int) -> None:
    """Raise ValueError unless ``a`` divides ``b`` exactly."""
    if a <= 0 or b % a != 0:
        raise ValueError(f"{name_a} ({a}) must evenly divide {name_b} ({b})")
