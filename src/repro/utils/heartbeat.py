"""Heartbeat files: tiny liveness beacons for workers and orchestrators.

A heartbeat is a small JSON file rewritten atomically (but *not* durably —
a heartbeat is worthless after a reboot anyway) whose mtime is the liveness
signal and whose body records who is beating and what they were doing. Two
independent staleness signals, mirroring :mod:`repro.utils.locks`:

* **pid death** — the recorded pid (same host) no longer exists: the owner
  is dead *now*, regardless of how fresh the file looks;
* **age** — the mtime is older than the caller's TTL: the owner may be
  alive but has stopped making progress (wedged before any per-job timer
  started), or is on another host where pids cannot be probed.

The sweep runner's pool workers beat at attempt start and end, so a worker
that dies *between* jobs — invisible to the per-attempt timeout, which only
times attempts that were actually submitted — still leaves a detectable
corpse. The campaign orchestrator beats once per scheduling round; its
heartbeat going stale while cells remain pending is the watchdog's signal
that a campaign needs ``repro campaign resume``.
"""

from __future__ import annotations

import os
import socket
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.utils.atomic import atomic_write_json
from repro.utils.locks import pid_alive

#: Bump when the heartbeat body schema changes.
HEARTBEAT_FORMAT = 1


def write_heartbeat(path: str, **fields) -> None:
    """(Re)write the heartbeat at ``path``; mtime becomes the beat time.

    Extra ``fields`` (job label, state, attempt...) are carried in the body
    for post-mortems. Atomic against readers, deliberately not fsync'd.
    """
    payload = {
        "format": HEARTBEAT_FORMAT,
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "time": time.time(),
    }
    payload.update(fields)
    atomic_write_json(path, payload, sort_keys=True, durable=False)


@dataclass(frozen=True)
class HeartbeatStatus:
    """One heartbeat file, interpreted."""

    path: str
    body: Dict
    age_seconds: float
    pid_dead: bool

    def stale(self, ttl_seconds: float) -> bool:
        return self.pid_dead or self.age_seconds > ttl_seconds


def read_heartbeat(path: str) -> Optional[HeartbeatStatus]:
    """Interpret the heartbeat at ``path``; None when absent or torn.

    A torn heartbeat (crashed mid-rewrite) is indistinguishable from noise
    and simply reads as absent — the *next* beat replaces it atomically, and
    an owner that never beats again is caught by whoever tracks the set of
    expected beacons.
    """
    import json

    try:
        mtime = os.stat(path).st_mtime
        with open(path) as handle:
            body = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(body, dict):
        return None
    pid = body.get("pid")
    same_host = body.get("host") == socket.gethostname()
    pid_dead = (
        same_host and isinstance(pid, int) and not pid_alive(pid)
    )
    return HeartbeatStatus(
        path=path,
        body=body,
        age_seconds=max(0.0, time.time() - mtime),
        pid_dead=pid_dead,
    )
