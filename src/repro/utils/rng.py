"""Deterministic random number generation.

Every stochastic element in the reproduction (synthetic workload generators,
BIP/BRRIP insertion coin flips, set sampling) draws from a
:class:`DeterministicRng` seeded from an explicit stream name, so the same
configuration always produces bit-identical simulations.
"""

from __future__ import annotations

import hashlib
import math


class DeterministicRng:
    """A small, fast xorshift64* generator with named-substream derivation.

    The Python stdlib Mersenne Twister would also be deterministic, but this
    generator is cheaper per draw and makes substream derivation explicit:
    ``rng.derive("bench:mcf")`` yields an independent stream whose seed depends
    only on the parent seed and the label.
    """

    _MULTIPLIER = 0x2545F4914F6CDD1D
    _MASK64 = (1 << 64) - 1

    def __init__(self, seed: int = 0xDB1) -> None:
        # xorshift state must be non-zero; fold the seed to 64 bits.
        self._state = (seed & self._MASK64) or 0x9E3779B97F4A7C15
        self.seed = seed

    def derive(self, label: str) -> "DeterministicRng":
        """Create an independent substream keyed by ``label``."""
        digest = hashlib.sha256(f"{self.seed}:{label}".encode()).digest()
        return DeterministicRng(int.from_bytes(digest[:8], "little"))

    def next_u64(self) -> int:
        """Next raw 64-bit value."""
        x = self._state
        x ^= (x >> 12)
        x ^= (x << 25) & self._MASK64
        x ^= (x >> 27)
        self._state = x
        return (x * self._MULTIPLIER) & self._MASK64

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self.next_u64() / float(1 << 64)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self.next_u64() % span

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        return self.random() < probability

    def choice(self, items):
        """Uniformly pick one element from a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.randint(0, len(items) - 1)]

    def shuffle(self, items) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def geometric(self, mean: float) -> int:
        """Geometric-ish non-negative integer with the given mean (>= 0).

        Used for instruction-gap distributions in workload generators.
        """
        if mean < 0:
            raise ValueError(f"mean must be non-negative, got {mean}")
        if mean == 0:
            return 0
        # Inverse-CDF sampling of a geometric distribution on {0, 1, 2, ...}.
        p = 1.0 / (mean + 1.0)
        u = self.random()
        # Guard u == 0 (log undefined) by resampling the largest representable.
        if u <= 0.0:
            u = 2.0 ** -64
        return int(math.log(u) / math.log(1.0 - p))
