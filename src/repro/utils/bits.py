"""Small integer/bit-manipulation helpers used across the simulator.

Addresses, set indices, DRAM row ids and DBI bit vectors are all plain Python
integers; these helpers keep the bit twiddling in one audited place.
"""

from __future__ import annotations

from typing import Iterator


def is_power_of_two(value: int) -> bool:
    """Return True iff ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Integer log2 of a power of two.

    Raises:
        ValueError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValueError(f"ilog2 requires a positive power of two, got {value!r}")
    return value.bit_length() - 1


def mask(num_bits: int) -> int:
    """Return an integer with the low ``num_bits`` bits set."""
    if num_bits < 0:
        raise ValueError(f"mask width must be non-negative, got {num_bits}")
    return (1 << num_bits) - 1


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError(f"popcount requires a non-negative value, got {value}")
    return bin(value).count("1")


def iter_set_bits(value: int) -> Iterator[int]:
    """Yield the positions of set bits in ``value``, lowest first.

    This is the hot path used to enumerate dirty blocks in a DBI entry's bit
    vector, so it strips one bit at a time with ``value & -value``.
    """
    if value < 0:
        raise ValueError(f"iter_set_bits requires a non-negative value, got {value}")
    while value:
        low = value & -value
        yield low.bit_length() - 1
        value ^= low


def ceil_div(numerator: int, denominator: int) -> int:
    """Ceiling integer division for non-negative numerators."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def bit_length_of(num_values: int) -> int:
    """Bits needed to address ``num_values`` distinct values (at least 1)."""
    if num_values <= 0:
        raise ValueError(f"num_values must be positive, got {num_values}")
    if num_values == 1:
        return 1
    return (num_values - 1).bit_length()
