"""Discrete-event simulation kernel.

A single :class:`EventQueue` drives the whole system: cores, caches and the
DRAM controller all schedule callbacks on it. Events at the same timestamp
fire in scheduling order (FIFO), which keeps runs deterministic.

The queue is a *calendar* structure: events land in a per-timestamp bucket
(a plain list, so same-cycle FIFO order is the append order) and a small
heap orders only the **distinct** timestamps. A simulated cycle typically
carries several events (a port grant, a bank wake, a core advance), so the
heap shrinks by the per-cycle fan-out factor and — unlike a heap of events —
needs no per-event comparisons at all. The previous implementation heapified
every event and spent a measurable share of the whole simulation inside the
generated ``Event.__lt__``.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional


class Event:
    """A scheduled callback, handed back to the caller for cancellation."""

    __slots__ = ("time", "callback", "cancelled", "audit")

    def __init__(
        self, time: int, callback: Callable[[], None], audit: bool = False
    ) -> None:
        self.time = time
        self.callback = callback
        self.cancelled = False
        #: Audit events observe without being accounted: they are excluded
        #: from ``events_processed`` and consume none of ``run()``'s
        #: ``max_events`` budget, so an attached checker cannot change what
        #: an unchecked run reports or does. A spent budget stops them too —
        #: a truncated run fires no further callbacks of any kind.
        self.audit = audit

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped."""
        self.cancelled = True

    def __repr__(self) -> str:
        flags = "cancelled" if self.cancelled else "pending"
        if self.audit:
            flags += ",audit"
        return f"Event(t={self.time}, {flags})"


class EventQueue:
    """Calendar queue of timed callbacks with a monotonically advancing clock.

    Example:
        >>> q = EventQueue()
        >>> fired = []
        >>> _ = q.schedule(5, lambda: fired.append(q.now))
        >>> q.run()
        >>> fired
        [5]
    """

    def __init__(self) -> None:
        self._buckets: Dict[int, List[Event]] = {}
        self._times: List[int] = []  # heap of distinct bucket timestamps
        # Fired prefix of one bucket, valid only for the bucket at
        # ``_pos_time``: an early-stopped run() can leave a partially fired
        # head bucket, and a later schedule() may then push an *earlier*
        # timestamp to the heap head, so the cursor must not be applied to
        # whatever bucket happens to be the head when execution resumes.
        self._pos = 0
        self._pos_time: Optional[int] = None
        self.now = 0
        self._events_processed = 0
        #: Optional per-event timing hook (see :mod:`repro.sim.profiler`).
        #: When set, every callback runs as ``profiler(callback)`` instead of
        #: ``callback()``; when None the hot loop pays one attribute read.
        self.profiler: Optional[Callable[[Callable[[], None]], None]] = None
        #: Optional epoch sampler (see :mod:`repro.telemetry`). Consulted
        #: once per *distinct timestamp*, not per event: when the clock is
        #: about to advance to a bucket at or past ``telemetry.next_cycle``,
        #: the kernel calls ``telemetry.sample(time)`` *before* firing that
        #: bucket's callbacks. The sampler only reads component state, so a
        #: sampled run is byte-identical to an unsampled one; when None the
        #: loop pays one attribute read per bucket.
        self.telemetry: Optional["TelemetrySampler"] = None

    def __len__(self) -> int:
        total = 0
        for time, bucket in self._buckets.items():
            start = self._pos if time == self._pos_time else 0
            for index in range(start, len(bucket)):
                if not bucket[index].cancelled:
                    total += 1
        return total

    @property
    def events_processed(self) -> int:
        """Total number of callbacks fired so far."""
        return self._events_processed

    def schedule(
        self, time: int, callback: Callable[[], None], audit: bool = False
    ) -> Event:
        """Schedule ``callback`` to fire at absolute ``time``.

        Raises:
            ValueError: if ``time`` is in the past.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule at t={time} before now={self.now}")
        event = Event(time, callback, audit)
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [event]
            heapq.heappush(self._times, time)
        else:
            bucket.append(event)
        return event

    def schedule_after(
        self, delay: int, callback: Callable[[], None], audit: bool = False
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, callback, audit=audit)

    def _next_event(self) -> Optional[Event]:
        """The next live event, discarding cancelled ones and dry buckets."""
        times = self._times
        buckets = self._buckets
        while times:
            head = times[0]
            bucket = buckets[head]
            pos = self._pos if head == self._pos_time else 0
            size = len(bucket)
            while pos < size:
                event = bucket[pos]
                if not event.cancelled:
                    self._pos = pos
                    self._pos_time = head
                    return event
                pos += 1
            # Bucket drained. A callback may still append to it at the
            # current cycle before the next step, so only now is it safe to
            # retire the timestamp.
            self._pos = 0
            self._pos_time = None
            heapq.heappop(times)
            del buckets[head]
        return None

    def step(self) -> bool:
        """Fire the next non-cancelled event. Returns False if queue is empty."""
        event = self._next_event()
        if event is None:
            return False
        self._pos += 1
        self.now = event.time
        telemetry = self.telemetry
        if telemetry is not None and event.time >= telemetry.next_cycle:
            telemetry.sample(event.time)
        if not event.audit:
            self._events_processed += 1
        profiler = self.profiler
        if profiler is None:
            event.callback()
        else:
            profiler(event.callback)
        return True

    def run(self, until: int = None, max_events: int = None) -> None:
        """Run until the queue drains, ``until`` is reached, or event budget ends.

        Args:
            until: stop once the clock would pass this timestamp (inclusive).
            max_events: safety valve against runaway simulations.
        """
        # The hot loop of the whole simulator: the queue stays resident in
        # one bucket until it drains, so per-event work is an index, a flag
        # test and the callback — no heap traffic, no dict lookups.
        times = self._times
        buckets = self._buckets
        heappop = heapq.heappop
        bounded = max_events is not None
        fired = 0
        while times:
            head = times[0]
            bucket = buckets[head]
            pos = self._pos if head == self._pos_time else 0
            size = len(bucket)
            while pos < size and bucket[pos].cancelled:
                pos += 1
            if pos == size:
                self._pos = 0
                self._pos_time = None
                heappop(times)
                del buckets[head]
                continue
            # The budget is spent before the clock moves: a run truncated by
            # max_events fires nothing further — not even an audit event —
            # matching the original heap implementation, which checked the
            # budget before popping anything.
            if bounded and fired >= max_events:
                self._pos = pos
                self._pos_time = head
                return
            if until is not None and head > until:
                self._pos = pos
                self._pos_time = head
                self.now = until
                return
            self.now = head
            self._pos_time = head
            telemetry = self.telemetry
            if telemetry is not None and head >= telemetry.next_cycle:
                # Sampled before the bucket fires: an epoch covers every
                # event strictly below its closing boundary.
                telemetry.sample(head)
            # Fire through the bucket. Callbacks may append same-cycle events
            # to it, so the size is re-read every iteration; they never
            # remove (cancel only flags), so positions are stable.
            while pos < len(bucket):
                event = bucket[pos]
                if event.cancelled:
                    pos += 1
                    continue
                if bounded and fired >= max_events:
                    self._pos = pos
                    return
                pos += 1
                self._pos = pos
                profiler = self.profiler
                if event.audit:
                    if profiler is None:
                        event.callback()
                    else:
                        profiler(event.callback)
                    continue
                self._events_processed += 1
                fired += 1
                if profiler is None:
                    event.callback()
                else:
                    profiler(event.callback)
            # Drained; a later callback scheduling at this same cycle simply
            # recreates the bucket (the timestamp re-enters the heap).
            self._pos = 0
            self._pos_time = None
            heappop(times)
            del buckets[head]
