"""Discrete-event simulation kernel.

A single :class:`EventQueue` drives the whole system: cores, caches and the
DRAM controller all schedule callbacks on it. Events at the same timestamp
fire in scheduling order (FIFO), which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List


@dataclass(order=True)
class Event:
    """A scheduled callback. Ordered by (time, sequence number)."""

    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Audit events observe without being accounted: they are excluded from
    #: ``events_processed`` and from ``run()``'s ``max_events`` budget, so an
    #: attached checker cannot change what an unchecked run reports or does.
    audit: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped."""
        self.cancelled = True


class EventQueue:
    """Priority queue of timed callbacks with a monotonically advancing clock.

    Example:
        >>> q = EventQueue()
        >>> fired = []
        >>> _ = q.schedule(5, lambda: fired.append(q.now))
        >>> q.run()
        >>> fired
        [5]
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self.now = 0
        self._events_processed = 0

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def events_processed(self) -> int:
        """Total number of callbacks fired so far."""
        return self._events_processed

    def schedule(
        self, time: int, callback: Callable[[], None], audit: bool = False
    ) -> Event:
        """Schedule ``callback`` to fire at absolute ``time``.

        Raises:
            ValueError: if ``time`` is in the past.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule at t={time} before now={self.now}")
        event = Event(time, self._seq, callback, audit=audit)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(
        self, delay: int, callback: Callable[[], None], audit: bool = False
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, callback, audit=audit)

    def step(self) -> bool:
        """Fire the next non-cancelled event. Returns False if queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            if not event.audit:
                self._events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: int = None, max_events: int = None) -> None:
        """Run until the queue drains, ``until`` is reached, or event budget ends.

        Args:
            until: stop once the clock would pass this timestamp (inclusive).
            max_events: safety valve against runaway simulations.
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                return
            next_event = self._heap[0]
            if next_event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and next_event.time > until:
                self.now = until
                return
            if not self.step():
                return
            if not next_event.audit:
                fired += 1
