"""Lightweight statistics primitives.

Components expose a :class:`StatGroup` of named counters/rates/distributions;
the experiment harness flattens them into report rows. Keeping the stat
machinery trivial (plain attribute access, no magic) keeps the hot paths fast.
"""

from __future__ import annotations

from typing import Dict, List


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class RateStat:
    """A numerator/denominator pair reported as a ratio (e.g. row hit rate)."""

    __slots__ = ("name", "hits", "total")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = 0
        self.total = 0

    def record(self, hit: bool) -> None:
        self.total += 1
        if hit:
            self.hits += 1

    @property
    def rate(self) -> float:
        """Hit fraction; 0.0 when nothing has been recorded."""
        return self.hits / self.total if self.total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.total = 0

    def __repr__(self) -> str:
        return f"RateStat({self.name}={self.rate:.3f} over {self.total})"


class Distribution:
    """Streaming mean/min/max/sum over observed samples."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.minimum = None
        self.maximum = None

    def record(self, sample) -> None:
        self.count += 1
        self.total += sample
        if self.minimum is None or sample < self.minimum:
            self.minimum = sample
        if self.maximum is None or sample > self.maximum:
            self.maximum = sample

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0
        self.minimum = None
        self.maximum = None

    def __repr__(self) -> str:
        return f"Distribution({self.name}: n={self.count}, mean={self.mean:.2f})"


class StatGroup:
    """A named collection of statistics with a flat dict export.

    Example:
        >>> stats = StatGroup("llc")
        >>> lookups = stats.counter("tag_lookups")
        >>> lookups.increment()
        >>> stats.as_dict()["llc.tag_lookups"]
        1
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._rates: Dict[str, RateStat] = {}
        self._distributions: Dict[str, Distribution] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def rate(self, name: str) -> RateStat:
        if name not in self._rates:
            self._rates[name] = RateStat(name)
        return self._rates[name]

    def distribution(self, name: str) -> Distribution:
        if name not in self._distributions:
            self._distributions[name] = Distribution(name)
        return self._distributions[name]

    def reset(self) -> None:
        for stat in self._all_stats():
            stat.reset()

    def _all_stats(self) -> List:
        return (
            list(self._counters.values())
            + list(self._rates.values())
            + list(self._distributions.values())
        )

    def as_dict(self) -> Dict[str, float]:
        """Flatten to ``{"group.stat": value}``; rates export hits/total too."""
        out: Dict[str, float] = {}
        for counter in self._counters.values():
            out[f"{self.name}.{counter.name}"] = counter.value
        for rate in self._rates.values():
            out[f"{self.name}.{rate.name}"] = rate.rate
            out[f"{self.name}.{rate.name}.hits"] = rate.hits
            out[f"{self.name}.{rate.name}.total"] = rate.total
        for dist in self._distributions.values():
            out[f"{self.name}.{dist.name}.mean"] = dist.mean
            out[f"{self.name}.{dist.name}.count"] = dist.count
        return out
