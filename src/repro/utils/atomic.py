"""The one atomic-write helper: temp file, fsync, rename.

Every durable artifact in this repo — sweep-cache entries, failure
manifests, ``.ckpt`` snapshot containers, telemetry streams published from
their ``.partial`` staging names, campaign manifests and reports — goes
through this module. The pattern is always the same:

1. write the full payload to a pid-suffixed temp file *next to* the target
   (same filesystem, so the rename cannot degrade to a copy);
2. ``fsync`` the temp file, so the rename can never be reordered ahead of
   the data reaching disk (the classic torn-write window: metadata says the
   file exists, blocks say garbage);
3. ``os.replace`` onto the final name — atomic on POSIX, so readers observe
   either the old complete file or the new complete file, never a prefix;
4. best-effort ``fsync`` of the containing directory, so the rename itself
   survives a power cut.

A reader that finds a ``*.tmp.<pid>`` file is looking at a crashed writer's
litter; it is never the real artifact and is safe to ignore or delete.

``durable=False`` skips both fsyncs for callers that only need atomicity
against concurrent readers, not against power loss (worker heartbeats, for
example, are rewritten every few seconds and worthless after a reboot).
"""

from __future__ import annotations

import json
import os
from typing import Optional


def _tmp_name(path: str) -> str:
    """The staging name for ``path`` (pid-suffixed: no cross-process races)."""
    return f"{path}.tmp.{os.getpid()}"


def fsync_directory(directory: str) -> None:
    """Best-effort fsync of a directory (persists renames within it).

    Silently a no-op where directories cannot be opened for reading
    (some filesystems and platforms); the rename is still atomic, only its
    power-cut durability is weakened — the same guarantee the repo had
    before this helper existed.
    """
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes, durable: bool = True) -> None:
    """Atomically replace ``path`` with ``data`` (see module docstring)."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = _tmp_name(path)
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        # Leave no staging litter behind a failed or interrupted write; the
        # target is untouched either way.
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if durable:
        fsync_directory(directory)


def atomic_write_text(path: str, text: str, durable: bool = True) -> None:
    """Atomically replace ``path`` with UTF-8 ``text``."""
    atomic_write_bytes(path, text.encode("utf-8"), durable=durable)


def atomic_write_json(
    path: str,
    payload,
    indent: Optional[int] = None,
    sort_keys: bool = False,
    durable: bool = True,
) -> None:
    """Atomically replace ``path`` with ``payload`` rendered as JSON.

    ``sort_keys=True`` makes the bytes a pure function of the payload —
    required for every artifact the chaos harnesses compare byte-for-byte.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    atomic_write_text(path, text + "\n" if indent is not None else text,
                      durable=durable)


def publish_file(staging_path: str, final_path: str, durable: bool = True) -> None:
    """Atomically promote a fully written staging file to its final name.

    For artifacts that are *streamed* while being produced (telemetry
    ``.partial`` epoch streams) rather than written in one shot: the caller
    streams to ``staging_path``, and on success this fsyncs the staged bytes
    and renames them into place. A crash mid-stream leaves only the staging
    file — the final name either does not exist or is complete.
    """
    if durable:
        fd = os.open(staging_path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
    os.replace(staging_path, final_path)
    if durable:
        fsync_directory(os.path.dirname(final_path))
