"""Crash-safe advisory file locks: pid + heartbeat, stale-owner reclaim.

A plain ``O_CREAT | O_EXCL`` lock file is crash-*unsafe*: kill the owner
with SIGKILL and the file survives forever, deadlocking every later process
that honours it. The locks here record who owns them (pid + hostname) and
prove liveness through the lock file's mtime (the owner touches it with
:meth:`FileLock.beat`), so a waiter can distinguish "busy" from "dead":

* **dead pid** — the owner recorded a pid on this host and that pid no
  longer exists: reclaim immediately (the common case after a SIGKILL or
  OOM kill);
* **stale heartbeat** — the lock's mtime is older than ``stale_seconds``:
  reclaim even when the pid cannot be probed (another host, pid reuse);
* **unreadable lock body** — the owner died *inside* the ~100-byte body
  write: reclaim (no live owner leaves a torn lock behind for long).

Reclaim is race-free without any extra coordination: the waiter atomically
renames the stale lock aside before deleting it, and ``os.replace`` has
exactly one winner — the losers observe the path gone and go back to normal
acquisition. A reclaimed lock's body is preserved as evidence under
``<path>.stale.<reclaimer-pid>`` until the unlink.

Used by the sweep runner's warm-checkpoint image builds
(``warm-<key>.ckpt.lock``) and the campaign orchestrator's directory lock;
see ``docs/architecture.md`` §13.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass
from typing import Optional

#: Bump when the lock body schema changes.
LOCK_FORMAT = 1

#: Default heartbeat-staleness horizon, seconds. Deliberately generous: the
#: fast path for same-host crashes is pid death, which is detected on the
#: very next acquisition attempt; the TTL only backstops foreign hosts and
#: pid reuse, where a false reclaim is the greater evil.
DEFAULT_STALE_SECONDS = 600.0


class LockError(RuntimeError):
    """A lock could not be acquired or released."""


class LockHeldError(LockError):
    """Acquisition timed out while a live owner held the lock."""

    def __init__(self, path: str, owner: Optional["LockOwner"]) -> None:
        described = (
            f"pid {owner.pid} on {owner.host}" if owner is not None
            else "an unreadable owner"
        )
        super().__init__(f"{path}: lock held by {described}")
        self.owner = owner


@dataclass(frozen=True)
class LockOwner:
    """Who holds (or held) a lock, as recorded in its body."""

    pid: int
    host: str
    created: float


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process on *this* host.

    ``EPERM`` counts as alive (the process exists, we just may not signal
    it); only ``ESRCH`` proves death.
    """
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


class FileLock:
    """An exclusive, crash-reclaimable lock on ``path``.

    Usage::

        with FileLock(image_path + ".lock") as lock:
            ...  # long build
            lock.beat()  # refresh the heartbeat between build phases

    The context manager acquires with the configured ``timeout`` and always
    releases; ``beat()`` refreshes the heartbeat mtime so a slow-but-alive
    owner is never mistaken for a dead one by TTL-only observers.
    """

    def __init__(
        self,
        path: str,
        stale_seconds: float = DEFAULT_STALE_SECONDS,
        timeout: Optional[float] = None,
        poll_seconds: float = 0.05,
    ) -> None:
        if stale_seconds <= 0:
            raise ValueError(f"stale_seconds must be positive, got {stale_seconds}")
        self.path = path
        self.stale_seconds = stale_seconds
        self.timeout = timeout
        self.poll_seconds = poll_seconds
        self.reclaimed = 0  # stale owners displaced by this instance
        self._held = False

    # ------------------------------------------------------------- acquire

    def acquire(self, timeout: Optional[float] = None) -> "FileLock":
        """Take the lock, reclaiming a stale owner if one is found.

        Raises:
            LockHeldError: ``timeout`` (or the constructor's) elapsed while
                a live owner held the lock. ``None`` waits forever.
        """
        if self._held:
            return self
        timeout = self.timeout if timeout is None else timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self._reclaim_if_stale():
                    continue
                if deadline is not None and time.monotonic() >= deadline:
                    raise LockHeldError(self.path, self.read_owner())
                time.sleep(self.poll_seconds)
                continue
            body = json.dumps(
                {
                    "format": LOCK_FORMAT,
                    "pid": os.getpid(),
                    "host": socket.gethostname(),
                    "created": time.time(),
                },
                sort_keys=True,
            )
            try:
                os.write(fd, body.encode("utf-8"))
            finally:
                os.close(fd)
            self._held = True
            return self

    def read_owner(self) -> Optional[LockOwner]:
        """The recorded owner of the lock file, or None if absent/torn."""
        try:
            with open(self.path) as handle:
                body = json.load(handle)
            return LockOwner(
                pid=int(body["pid"]),
                host=str(body["host"]),
                created=float(body["created"]),
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _reclaim_if_stale(self) -> bool:
        """Displace the current lock if its owner is provably gone.

        Returns True when the path was cleared (by us or by the owner's own
        release racing with the check) and acquisition should be retried
        immediately.
        """
        try:
            mtime = os.stat(self.path).st_mtime
        except OSError:
            return True  # released (or reclaimed) under us; just retry
        owner = self.read_owner()
        if owner is not None:
            same_host = owner.host == socket.gethostname()
            if same_host and pid_alive(owner.pid):
                return False  # live owner on this host: genuinely busy
            if not same_host or pid_alive(owner.pid):
                # Foreign host, or pid probing unavailable: trust only the
                # heartbeat TTL.
                if time.time() - mtime <= self.stale_seconds:
                    return False
        else:
            # Torn body: give a just-starting owner one heartbeat interval
            # to finish writing before declaring the lock dead. The body is
            # ~100 bytes, so a live writer finishes in microseconds; a torn
            # body older than the poll interval means a crashed writer.
            if time.time() - mtime <= max(self.poll_seconds, 1.0):
                return False
        # Atomically move the stale lock aside: exactly one waiter wins the
        # rename; everyone else sees the path vanish and retries normally.
        aside = f"{self.path}.stale.{os.getpid()}"
        try:
            os.replace(self.path, aside)
        except OSError:
            return True  # another waiter won the reclaim; retry
        try:
            os.unlink(aside)
        except OSError:
            pass
        self.reclaimed += 1
        return True

    # ------------------------------------------------------------ lifetime

    def beat(self) -> None:
        """Refresh the heartbeat (the lock file's mtime). Owner only."""
        if not self._held:
            raise LockError(f"{self.path}: beat() without holding the lock")
        try:
            os.utime(self.path, None)
        except OSError:
            pass  # lock stolen by an (over-aggressive) reclaimer; release will cope

    def release(self) -> None:
        """Drop the lock; idempotent."""
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.path)
        except OSError:
            pass  # already reclaimed from us — nothing left to release

    @property
    def held(self) -> bool:
        return self._held

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *_exc) -> None:
        self.release()
