"""Campaign planning: the deterministic grid of cells to simulate.

A *cell* is one (mechanism, workload) simulation — the unit the journal
tracks and the result cache addresses. Plans are pure functions of the
campaign configuration: planning the same config twice yields the same
cells in the same order, and :func:`plan_fingerprint` hashes that identity
so a resume against a journal written by a *different* plan (edited config,
drifted code) is refused instead of quietly simulating the wrong grid.

Workloads are reconstructed, not stored: single-core cells name a
benchmark, multi-core cells name an index into the scale profile's
deterministic mix generator (:meth:`ScaleProfile.mixes`). The recorded mix
*name* is cross-checked at reconstruction time, so a generator change
between plan and resume is caught rather than silently swapping traces.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.scaling import ScaleProfile
from repro.sim.system import SystemConfig
from repro.sim.trace import Trace

#: Default campaign mechanisms: the paper's Figure 7 lineup (baseline
#: included, so speedups are computable straight from the results file).
DEFAULT_MECHANISMS = (
    "baseline", "tadip", "dawb", "dbi", "dbi+awb", "dbi+clb", "dbi+awb+clb",
)


@dataclass(frozen=True)
class CampaignCell:
    """One planned simulation.

    Exactly one of ``benchmark`` (single-core) or ``mix_index``/``mix_name``
    (multi-core) identifies the workload.
    """

    cell_id: str
    mechanism: str
    num_cores: int
    benchmark: Optional[str] = None
    mix_index: Optional[int] = None
    mix_name: Optional[str] = None

    def to_dict(self) -> Dict:
        return {
            "cell_id": self.cell_id,
            "mechanism": self.mechanism,
            "num_cores": self.num_cores,
            "benchmark": self.benchmark,
            "mix_index": self.mix_index,
            "mix_name": self.mix_name,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignCell":
        return cls(
            cell_id=data["cell_id"],
            mechanism=data["mechanism"],
            num_cores=data["num_cores"],
            benchmark=data.get("benchmark"),
            mix_index=data.get("mix_index"),
            mix_name=data.get("mix_name"),
        )

    @property
    def workload(self) -> str:
        return self.benchmark if self.num_cores == 1 else (self.mix_name or "?")


def plan_cells(
    scale: ScaleProfile,
    benchmarks: Sequence[str],
    mechanisms: Sequence[str] = DEFAULT_MECHANISMS,
    core_counts: Sequence[int] = (1,),
) -> List[CampaignCell]:
    """The campaign grid, in deterministic dispatch order.

    Single-core cells cover ``benchmarks`` × ``mechanisms``; each
    multi-core count covers the scale profile's category-balanced mixes ×
    ``mechanisms``. Workload-major order keeps all mechanisms of one
    workload adjacent, so fork-from-warm campaigns build each group's warm
    image once and reuse it immediately.
    """
    cells: List[CampaignCell] = []
    for cores in core_counts:
        if cores == 1:
            for benchmark in benchmarks:
                for mechanism in mechanisms:
                    cells.append(
                        CampaignCell(
                            cell_id=f"1c/{benchmark}/{mechanism}",
                            mechanism=mechanism,
                            num_cores=1,
                            benchmark=benchmark,
                        )
                    )
            continue
        for index, mix in enumerate(scale.mixes(cores)):
            for mechanism in mechanisms:
                cells.append(
                    CampaignCell(
                        cell_id=f"{cores}c/{mix.name}/{mechanism}",
                        mechanism=mechanism,
                        num_cores=cores,
                        mix_index=index,
                        mix_name=mix.name,
                    )
                )
    seen = set()
    for cell in cells:
        if cell.cell_id in seen:
            raise ValueError(f"duplicate cell id {cell.cell_id!r} in plan")
        seen.add(cell.cell_id)
    return cells


def cell_traces(
    scale: ScaleProfile, cell: CampaignCell, refs: Optional[int] = None
) -> List[Trace]:
    """Reconstruct the cell's workload traces (deterministic generators).

    Raises:
        ValueError: the recorded mix name no longer matches what the
            generator produces at the recorded index — the plan and the
            code have diverged, and resuming would simulate the wrong mix.
    """
    if cell.num_cores == 1:
        if cell.benchmark is None:
            raise ValueError(f"cell {cell.cell_id!r} has no benchmark")
        return [scale.benchmark_trace(cell.benchmark, refs=refs)]
    if cell.mix_index is None:
        raise ValueError(f"cell {cell.cell_id!r} has no mix index")
    mixes = scale.mixes(cell.num_cores)
    if not 0 <= cell.mix_index < len(mixes):
        raise ValueError(
            f"cell {cell.cell_id!r}: mix index {cell.mix_index} out of "
            f"range ({len(mixes)} mixes at {cell.num_cores} cores)"
        )
    mix = mixes[cell.mix_index]
    if cell.mix_name is not None and mix.name != cell.mix_name:
        raise ValueError(
            f"cell {cell.cell_id!r}: mix generator drift — planned "
            f"{cell.mix_name!r}, generator now yields {mix.name!r}"
        )
    return list(mix.traces)


def cell_config(scale: ScaleProfile, cell: CampaignCell) -> SystemConfig:
    """The cell's system configuration at this scale."""
    return scale.system_config(cell.mechanism, num_cores=cell.num_cores)


def plan_fingerprint(plan_identity: Dict, cells: Sequence[CampaignCell]) -> str:
    """Content hash binding a journal to the plan that wrote it.

    Covers everything that determines *what gets simulated and how it is
    keyed*: the plan-relevant configuration fields plus every cell. Runtime
    knobs (worker count, progress) are deliberately excluded — a resume may
    change them freely.
    """
    payload = {
        "identity": plan_identity,
        "cells": [cell.to_dict() for cell in cells],
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
