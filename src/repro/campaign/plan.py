"""Campaign planning: the deterministic grid of cells to simulate.

A *cell* is one (mechanism, workload) simulation — the unit the journal
tracks and the result cache addresses. Plans are pure functions of the
campaign configuration: planning the same config twice yields the same
cells in the same order, and :func:`plan_fingerprint` hashes that identity
so a resume against a journal written by a *different* plan (edited config,
drifted code) is refused instead of quietly simulating the wrong grid.

Workloads are reconstructed, not stored: single-core cells name a
benchmark, multi-core cells name an index into the scale profile's
deterministic mix generator (:meth:`ScaleProfile.mixes`). The recorded mix
*name* is cross-checked at reconstruction time, so a generator change
between plan and resume is caught rather than silently swapping traces.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.scaling import ScaleProfile
from repro.sim.system import SystemConfig
from repro.sim.trace import Trace
from repro.workloads.mix import paper_mix_count

#: Default campaign mechanisms: the paper's Figure 7 lineup (baseline
#: included, so speedups are computable straight from the results file).
DEFAULT_MECHANISMS = (
    "baseline", "tadip", "dawb", "dbi", "dbi+awb", "dbi+clb", "dbi+awb+clb",
)

#: Dirty-tracking backends the stacked-bandwidth sensitivity sweep compares.
SENSITIVITY_BACKENDS = ("tag", "dbi")

# Sensitivity cells need traces long enough to build reuse in the stacked
# level — below this, the sweep measures nothing (zero hits, write path
# never pressured), so short-trace tiers would publish a flat table. The
# handful of sens cells run at least this many refs regardless of the
# campaign-wide budget.
SENSITIVITY_REFS_FLOOR = 24000


@dataclass(frozen=True)
class CampaignCell:
    """One planned simulation.

    ``kind`` distinguishes the cell families (``None`` covers the legacy
    pair, derived from the other fields — see :attr:`category`):

    * ``bench`` — single-core benchmark × mechanism (Figure 6 surface);
    * ``mix``   — multi-core mix × mechanism (Figure 7/8 surfaces),
      identified by ``mix_index``/``mix_name``;
    * ``alone`` — single-benchmark run on the whole ``num_cores``-sized
      shared LLC; the alone-IPC normalizer for weighted speedup. Here
      ``num_cores`` records the *context* core count, the simulated system
      has one core;
    * ``trace`` — an externally ingested trace (``trace_name``) pinned to
      its registered sha256 (``trace_sha``);
    * ``sens``  — stacked-bandwidth sensitivity point: the dramcache level
      with dirty ``backend`` and its burst time stretched by ``bandwidth``.
    """

    cell_id: str
    mechanism: str
    num_cores: int
    benchmark: Optional[str] = None
    mix_index: Optional[int] = None
    mix_name: Optional[str] = None
    kind: Optional[str] = None
    trace_name: Optional[str] = None
    trace_sha: Optional[str] = None
    backend: Optional[str] = None
    bandwidth: Optional[int] = None

    def to_dict(self) -> Dict:
        data = {
            "cell_id": self.cell_id,
            "mechanism": self.mechanism,
            "num_cores": self.num_cores,
            "benchmark": self.benchmark,
            "mix_index": self.mix_index,
            "mix_name": self.mix_name,
        }
        # New-kind fields appear only when set, so legacy journals (and
        # their fingerprints) round-trip byte-identically. ``kind``
        # serializes as ``cell_kind``: journal records already spend the
        # bare name on the record type.
        if self.kind is not None:
            data["cell_kind"] = self.kind
        for key in ("trace_name", "trace_sha", "backend", "bandwidth"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignCell":
        return cls(
            cell_id=data["cell_id"],
            mechanism=data["mechanism"],
            num_cores=data["num_cores"],
            benchmark=data.get("benchmark"),
            mix_index=data.get("mix_index"),
            mix_name=data.get("mix_name"),
            kind=data.get("cell_kind"),
            trace_name=data.get("trace_name"),
            trace_sha=data.get("trace_sha"),
            backend=data.get("backend"),
            bandwidth=data.get("bandwidth"),
        )

    @property
    def category(self) -> str:
        """The cell family, with legacy cells classified by shape."""
        if self.kind is not None:
            return self.kind
        return "bench" if self.num_cores == 1 else "mix"

    @property
    def workload(self) -> str:
        if self.category == "trace":
            return self.trace_name or "?"
        if self.category == "mix":
            return self.mix_name or "?"
        return self.benchmark or "?"


def plan_cells(
    scale: ScaleProfile,
    benchmarks: Sequence[str],
    mechanisms: Sequence[str] = DEFAULT_MECHANISMS,
    core_counts: Sequence[int] = (1,),
    full_width: bool = False,
    ingested: Sequence[Tuple[str, str]] = (),
    sensitivity: Sequence[int] = (),
    sensitivity_benchmarks: Sequence[str] = (),
) -> List[CampaignCell]:
    """The campaign grid, in deterministic dispatch order.

    Single-core cells cover ``benchmarks`` × ``mechanisms``; each
    multi-core count covers the scale profile's category-balanced mixes ×
    ``mechanisms`` — the paper's complete 102/259/120 tables when
    ``full_width`` is set. Workload-major order keeps all mechanisms of one
    workload adjacent, so fork-from-warm campaigns build each group's warm
    image once and reuse it immediately.

    Full-width plans also schedule one ``alone`` normalizer per distinct
    benchmark per multi-core count (the weighted-speedup denominator);
    ``ingested`` (name, sha256) pairs add externally captured traces as
    single-core cells; ``sensitivity`` bandwidth divisors add the stacked
    DRAM-cache sweep over ``sensitivity_benchmarks`` × both dirty backends.
    """
    cells: List[CampaignCell] = []
    for cores in core_counts:
        if cores == 1:
            for benchmark in benchmarks:
                for mechanism in mechanisms:
                    cells.append(
                        CampaignCell(
                            cell_id=f"1c/{benchmark}/{mechanism}",
                            mechanism=mechanism,
                            num_cores=1,
                            benchmark=benchmark,
                        )
                    )
            continue
        count = paper_mix_count(cores) if full_width else None
        specs = scale.mix_specs(cores, count)
        if full_width:
            for benchmark in sorted(
                {name for spec in specs for name in spec.benchmark_names}
            ):
                cells.append(
                    CampaignCell(
                        cell_id=f"alone/{cores}c/{benchmark}",
                        mechanism="baseline",
                        num_cores=cores,
                        benchmark=benchmark,
                        kind="alone",
                    )
                )
        for index, spec in enumerate(specs):
            for mechanism in mechanisms:
                cells.append(
                    CampaignCell(
                        cell_id=f"{cores}c/{spec.name}/{mechanism}",
                        mechanism=mechanism,
                        num_cores=cores,
                        mix_index=index,
                        mix_name=spec.name,
                    )
                )
    for name, sha in ingested:
        for mechanism in mechanisms:
            cells.append(
                CampaignCell(
                    cell_id=f"trace/{name}/{mechanism}",
                    mechanism=mechanism,
                    num_cores=1,
                    kind="trace",
                    trace_name=name,
                    trace_sha=sha,
                )
            )
    if sensitivity and not sensitivity_benchmarks:
        raise ValueError(
            "sensitivity sweep requested without sensitivity_benchmarks"
        )
    for benchmark in sensitivity_benchmarks:
        for backend in SENSITIVITY_BACKENDS:
            for divisor in sensitivity:
                cells.append(
                    CampaignCell(
                        cell_id=f"sens/{benchmark}/{backend}/bw{divisor}",
                        mechanism="baseline",
                        num_cores=1,
                        benchmark=benchmark,
                        kind="sens",
                        backend=backend,
                        bandwidth=divisor,
                    )
                )
    seen = set()
    for cell in cells:
        if cell.cell_id in seen:
            raise ValueError(f"duplicate cell id {cell.cell_id!r} in plan")
        seen.add(cell.cell_id)
    return cells


def cell_traces(
    scale: ScaleProfile,
    cell: CampaignCell,
    refs: Optional[int] = None,
    full_width: bool = False,
    ingest_dir: Optional[str] = None,
) -> List[Trace]:
    """Reconstruct the cell's workload traces (deterministic generators).

    ``refs`` caps the single-core trace length and the per-core length of
    mix and alone cells; sensitivity cells are floored at
    ``SENSITIVITY_REFS_FLOOR`` (see its rationale). Ingested traces load
    from ``ingest_dir``'s registry and are verified against the sha
    pinned at plan time.

    Raises:
        ValueError: the recorded mix name no longer matches what the
            generator produces at the recorded index, or an ingested
            trace's bytes drifted — resuming would simulate the wrong
            workload.
    """
    category = cell.category
    if category == "trace":
        if cell.trace_name is None:
            raise ValueError(f"cell {cell.cell_id!r} has no trace name")
        if ingest_dir is None:
            raise ValueError(
                f"cell {cell.cell_id!r} needs an ingested trace but the "
                "campaign has no ingest directory (pass --ingest-dir)"
            )
        from repro.sim.ingest import registered_trace

        return [registered_trace(ingest_dir, cell.trace_name,
                                 expect_sha=cell.trace_sha)]
    if category in ("bench", "sens"):
        if cell.benchmark is None:
            raise ValueError(f"cell {cell.cell_id!r} has no benchmark")
        if category == "sens" and refs is not None:
            refs = max(refs, SENSITIVITY_REFS_FLOOR)
        return [scale.benchmark_trace(cell.benchmark, refs=refs)]
    if category == "alone":
        if cell.benchmark is None:
            raise ValueError(f"cell {cell.cell_id!r} has no benchmark")
        return [
            scale.benchmark_trace(
                cell.benchmark, refs=refs or scale.refs_per_core_multi
            )
        ]
    if cell.mix_index is None:
        raise ValueError(f"cell {cell.cell_id!r} has no mix index")
    count = paper_mix_count(cell.num_cores) if full_width else None
    specs = scale.mix_specs(cell.num_cores, count)
    if not 0 <= cell.mix_index < len(specs):
        raise ValueError(
            f"cell {cell.cell_id!r}: mix index {cell.mix_index} out of "
            f"range ({len(specs)} mixes at {cell.num_cores} cores)"
        )
    spec = specs[cell.mix_index]
    if cell.mix_name is not None and spec.name != cell.mix_name:
        raise ValueError(
            f"cell {cell.cell_id!r}: mix generator drift — planned "
            f"{cell.mix_name!r}, generator now yields {spec.name!r}"
        )
    mix = scale.mix_for(spec, refs_per_core=refs)
    return list(mix.traces)


def sensitivity_cache_config(
    scale: ScaleProfile, backend: str, bandwidth_divisor: int
):
    """The stacked level for one bandwidth point of the sensitivity sweep.

    Starts from the trade-off study's shrunken level (÷8 on top of the
    profile divisor, so short traces actually pressure it) and stretches
    the stacked channel's burst occupancy by ``bandwidth_divisor`` — half
    the pin bandwidth doubles ``t_burst``, which is exactly how the
    TDRAM/Gemini hit-latency-vs-bandwidth curves are swept.
    """
    if bandwidth_divisor is None or bandwidth_divisor < 1:
        raise ValueError(
            f"bandwidth divisor must be >= 1, got {bandwidth_divisor!r}"
        )
    config = scale.dram_cache_config(dirty_backend=backend)
    config = dataclasses.replace(
        config, num_blocks=max(256, (1 << 17) // (scale.divisor * 8))
    )
    stacked = dataclasses.replace(
        config.stacked, t_burst=config.stacked.t_burst * bandwidth_divisor
    )
    return dataclasses.replace(config, stacked=stacked)


def cell_config(scale: ScaleProfile, cell: CampaignCell) -> SystemConfig:
    """The cell's system configuration at this scale."""
    category = cell.category
    if category == "alone":
        # One core owning the whole context-sized shared LLC: the paper's
        # alone-run normalizer for weighted speedup.
        return scale.system_config(
            "baseline", num_cores=1, mb_per_core=2 * cell.num_cores
        )
    if category == "sens":
        return scale.system_config(
            cell.mechanism,
            num_cores=1,
            dram_cache=sensitivity_cache_config(
                scale, cell.backend, cell.bandwidth
            ),
        )
    return scale.system_config(cell.mechanism, num_cores=cell.num_cores)


def plan_fingerprint(plan_identity: Dict, cells: Sequence[CampaignCell]) -> str:
    """Content hash binding a journal to the plan that wrote it.

    Covers everything that determines *what gets simulated and how it is
    keyed*: the plan-relevant configuration fields plus every cell. Runtime
    knobs (worker count, progress) are deliberately excluded — a resume may
    change them freely.
    """
    payload = {
        "identity": plan_identity,
        "cells": [cell.to_dict() for cell in cells],
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
